//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's non-poisoning API (`lock()`
//! returning the guard directly). Performance characteristics are
//! std's, which is fine for the simulated-runtime use in this
//! workspace.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error: a panicked holder
/// simply passes the data on, matching parking_lot semantics closely
/// enough for this workspace.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Non-blocking read: `None` when a writer holds (or is queued on)
    /// the lock, matching parking_lot's `try_read`.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Non-blocking write: `None` when any reader or writer holds the
    /// lock, matching parking_lot's `try_write`.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }

    #[test]
    fn try_lock_refuses_instead_of_blocking() {
        let l = RwLock::new(1u32);
        let r = l.read();
        assert!(l.try_read().is_some(), "readers share");
        assert!(l.try_write().is_none(), "a reader blocks writers");
        drop(r);
        let w = l.try_write().expect("uncontended try_write");
        assert!(l.try_read().is_none(), "a writer blocks readers");
        drop(w);
        assert_eq!(*l.read(), 1);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Mutex::new(0u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison attempt");
        }));
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 1);
    }
}
