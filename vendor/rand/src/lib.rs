//! Offline stand-in for `rand`, providing the subset this workspace
//! uses: [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256** seeded through splitmix64 — a solid
//! general-purpose generator (not cryptographic, which nothing here
//! needs). Sequences differ from upstream `rand`'s `StdRng` (ChaCha12);
//! all in-repo uses derive data from explicit seeds, so only
//! determinism matters, not the exact stream.

use std::ops::{Range, RangeInclusive};

/// Conversion from raw generator output to a sampled value (the stand-in
/// for rand's `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly (the stand-in for rand's
/// `SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the simpler scheme is irrelevant at the
                // spans used here, but this is just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The random-generator trait: raw 64-bit output plus derived samplers.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the subset of rand's `SeedableRng` used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v = rng.gen_range(0usize..=4);
            assert!(v <= 4);
        }
    }

    #[test]
    fn works_through_mut_ref() {
        fn sample(rng: &mut impl Rng) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample(&mut rng);
    }
}
