//! Offline stand-in for `serde_json`: string (de)serialization for the
//! vendored `serde` traits. Output is JSON, except that non-finite
//! floats (which JSON cannot express) are encoded as the tagged strings
//! `"inf"` / `"-inf"` / `"nan"`.

pub use serde::Error;

/// Serializes `value` to a JSON string. Infallible for the types in
/// this workspace; returns `Result` for serde_json API compatibility.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to a JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("input is not UTF-8"))?;
    from_str(s)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = serde::Parser::new(s);
    let v = T::deserialize_json(&mut p)?;
    if !p.at_end() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_roundtrip() {
        let v = vec![1.5f64, -2.0, 0.0];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1.5,-2,0]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.0 x").is_err());
    }
}
