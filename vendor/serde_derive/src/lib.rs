//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports the shapes this workspace derives on: structs with named
//! fields (optionally generic over plain type parameters) and fieldless
//! enums. Anything else is a compile error, which is the honest failure
//! mode for a vendored subset.
//!
//! Implemented with direct `proc_macro` token inspection (no syn/quote —
//! the build environment has no registry access), generating code as a
//! string and re-parsing it into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
struct Input {
    name: String,
    /// Type-parameter identifiers, e.g. `["P", "Y"]`.
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variants, in declaration order.
    Enum(Vec<String>),
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind_kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    // Generics: collect top-level parameter idents between < and >.
    let mut generics = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut expecting_param = true;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    expecting_param = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    return Err("lifetime parameters are not supported".into());
                }
                TokenTree::Ident(id) if depth == 1 && expecting_param => {
                    if id.to_string() == "const" {
                        return Err("const generics are not supported".into());
                    }
                    generics.push(id.to_string());
                    expecting_param = false;
                }
                _ => {}
            }
        }
    }

    // Body.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                return Err("where clauses are not supported".into());
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("tuple structs are not supported".into());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("unit structs are not supported".into());
            }
            Some(_) => continue,
            None => return Err("missing body".into()),
        }
    };

    let kind = match kind_kw.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body.stream())?),
        "enum" => Kind::Enum(parse_unit_variants(body.stream())?),
        other => return Err(format!("cannot derive for `{other}`")),
    };
    Ok(Input {
        name,
        generics,
        kind,
    })
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field, got {other:?}")),
        }
        fields.push(field);
        // Skip the type: everything until a top-level ','. Only `<...>`
        // nesting matters; bracket/paren/brace types arrive as groups.
        let mut depth = 0usize;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) => {
                return Err("enum variants with data are not supported".into())
            }
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
    }
    Ok(variants)
}

/// `impl<P: serde::Trait, ...> serde::Trait for Name<P, ...>` header.
fn impl_header(input: &Input, trait_name: &str) -> String {
    if input.generics.is_empty() {
        format!("impl serde::{trait_name} for {} ", input.name)
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect();
        let plain = input.generics.join(", ");
        format!(
            "impl<{}> serde::{trait_name} for {}<{}> ",
            bounded.join(", "),
            input.name,
            plain
        )
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let mut body = String::new();
    match &input.kind {
        Kind::Struct(fields) => {
            body.push_str("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\nserde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');\n");
        }
        Kind::Enum(variants) => {
            body.push_str("let __name = match self {\n");
            for v in variants {
                body.push_str(&format!("{}::{v} => \"{v}\",\n", input.name));
            }
            body.push_str("};\nserde::write_escaped_str(__name, out);\n");
        }
    }
    let code = format!(
        "{}{{\nfn serialize_json(&self, out: &mut String) {{\n{body}}}\n}}",
        impl_header(&input, "Serialize")
    );
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let mut body = String::new();
    match &input.kind {
        Kind::Struct(fields) => {
            body.push_str("__p.expect(b'{')?;\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("__p.expect(b',')?;\n");
                }
                body.push_str(&format!(
                    "let __key = __p.parse_key()?;\nif __key != \"{f}\" {{ return Err(serde::Error::custom(format!(\"expected field `{f}`, found `{{__key}}`\"))); }}\nlet __f{i} = serde::Deserialize::deserialize_json(__p)?;\n"
                ));
            }
            body.push_str("__p.expect(b'}')?;\n");
            let ctor: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(i, f)| format!("{f}: __f{i}"))
                .collect();
            body.push_str(&format!("Ok({} {{ {} }})\n", input.name, ctor.join(", ")));
        }
        Kind::Enum(variants) => {
            body.push_str("let __s = __p.parse_string()?;\nmatch __s.as_str() {\n");
            for v in variants {
                body.push_str(&format!("\"{v}\" => Ok({}::{v}),\n", input.name));
            }
            body.push_str(&format!(
                "other => Err(serde::Error::custom(format!(\"unknown {} variant `{{other}}`\"))),\n}}\n",
                input.name
            ));
        }
    }
    let code = format!(
        "{}{{\nfn deserialize_json(__p: &mut serde::Parser<'_>) -> Result<Self, serde::Error> {{\n{body}}}\n}}",
        impl_header(&input, "Deserialize")
    );
    code.parse().expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}
