//! Offline stand-in for `criterion`: the API subset the workspace's
//! microbenchmarks use (`criterion_group!` / `criterion_main!`,
//! benchmark groups, `Bencher::iter`, `black_box`, `BenchmarkId`),
//! backed by a simple warm-up + fixed-budget timing loop instead of
//! criterion's statistical machinery. Results print as
//! `group/name: median ns/iter` lines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs closures under timing.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`: a short warm-up sizes the batch, then several
    /// batches run within a fixed budget and the median batch is
    /// reported.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: find how many iterations fit ~2ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(2) || batch >= 1 << 24 {
                break;
            }
            batch *= 4;
        }
        // Measurement: up to 15 batches or ~120ms, whichever first.
        let mut samples: Vec<f64> = Vec::with_capacity(15);
        let budget = Instant::now();
        while samples.len() < 15 && budget.elapsed() < Duration::from_millis(120) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&self.name, &id.into_id(), b.ns_per_iter);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&self.name, &id.into_id(), b.ns_per_iter);
        self
    }

    pub fn finish(&mut self) {}

    /// Accepted and ignored (the stand-in sizes its own sampling).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

fn report(group: &str, id: &str, ns: f64) {
    let formatted = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("{group}/{id}: {formatted}/iter");
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report("bench", &id.into_id(), b.ns_per_iter);
        self
    }

    /// Accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
