//! Offline stand-in for `proptest`, vendored because this build
//! environment has no crate-registry access.
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, simple `[a-z]{m,n}`-style string
//! patterns, and the `prop_assert!` / `prop_assert_eq!` /
//! [`prop_assume!`] macros. Differences from upstream: generation is
//! seeded deterministically from the test name (reproducible CI), and
//! failing cases are reported without shrinking.

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG (self-contained xoshiro256**)
// ---------------------------------------------------------------------------

/// Deterministic generator driving test-case generation.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — generate another.
    Reject(String),
    /// An assertion failed — the test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Execution configuration (the `cases` knob is all this workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drives one property test: generates cases until `config.cases` have
/// been accepted, panicking on the first failure. Called by the
/// [`proptest!`] expansion; not part of the public proptest API.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(fnv1a(name));
    let mut accepted: u32 = 0;
    let mut rejected: u32 = 0;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.cases.saturating_mul(32).max(1024) {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected} rejects for {accepted} accepts)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed on case {accepted}: {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String patterns: `&str` is a strategy generating strings matching a
/// small regex subset — literal characters, `[a-c]`-style classes, and
/// `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers (`*`/`+` capped at 8).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal char.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed character class")
                + i;
            let mut alpha = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        alpha.push(char::from_u32(c).expect("valid class range"));
                    }
                    j += 3;
                } else {
                    alpha.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            alpha
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };

        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("bad quantifier"),
                    b.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && matches!(chars[i], '?' | '*' | '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };

        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

/// Collection-size specification: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// `prop::collection::vec` and friends.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` module path used by `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fails the current test case with a formatted message if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Rejects the current test case (a new one is generated) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __strategy = ($($strat),*);
            $crate::run_proptest(
                &__cfg,
                stringify!($name),
                |__rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError>
                {
                    #[allow(unused_parens)]
                    let ($($pat),*) = $crate::Strategy::generate(&__strategy, __rng);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_matches_class() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5.0..5.0f64, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn tuple_pattern((a, b) in (0usize..4, 0usize..4)) {
            prop_assert!(a < 4 && b < 4);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn early_return_accepts(x in 0usize..10) {
            if x > 100 { return Ok(()); }
            prop_assert!(x < 10);
        }
    }
}
