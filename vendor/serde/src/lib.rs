//! Offline stand-in for `serde`, vendored because this build environment
//! has no access to a crate registry.
//!
//! It provides the subset of the serde surface this workspace actually
//! uses: the [`Serialize`] / [`Deserialize`] traits, derive macros for
//! plain structs and fieldless enums, and impls for the primitive and
//! container types that appear in checkpointable state. The data model
//! is deliberately simple — values serialize directly to a JSON string
//! builder and deserialize from a JSON token parser (see the sibling
//! `serde_json` crate) — rather than reproducing serde's
//! serializer/visitor indirection, which nothing here needs.

pub use serde_derive::{Deserialize, Serialize};

/// Error raised when deserialization meets malformed or mismatched input.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can write itself into a JSON string.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// A type that can reconstruct itself from a JSON token stream.
pub trait Deserialize: Sized {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// JSON string escaping
// ---------------------------------------------------------------------------

pub fn write_escaped_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A minimal recursive-descent JSON reader.
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    pub fn skip_ws(&mut self) {
        while self
            .input
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    pub fn expect(&mut self, byte: u8) -> Result<(), Error> {
        self.skip_ws();
        if self.input.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    /// Consumes `byte` if it is next; returns whether it was consumed.
    pub fn eat(&mut self, byte: u8) -> bool {
        self.skip_ws();
        if self.input.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.input.len()
    }

    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .input
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .input
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .input
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => s.push(b as char),
                _ => {
                    // Multi-byte UTF-8: back up and decode one char from
                    // a bounded 4-byte window. (Validating from here to
                    // the end of the input — as this arm once did — made
                    // every string char O(remaining input), turning any
                    // key-heavy document parse quadratic; large engine
                    // checkpoints hit that wall hard.)
                    self.pos -= 1;
                    let end = (self.pos + 4).min(self.input.len());
                    let window = &self.input[self.pos..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(valid) => valid.chars().next(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                        }
                        Err(_) => None,
                    }
                    .ok_or_else(|| self.err("invalid utf-8"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the raw text of a number token.
    fn number_token(&mut self) -> Result<&'a str, Error> {
        self.skip_ws();
        let start = self.pos;
        while self
            .input
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| self.err("invalid utf-8"))
    }

    pub fn parse_f64(&mut self) -> Result<f64, Error> {
        // Non-finite values are serialized as strings.
        if self.peek() == Some(b'"') {
            let s = self.parse_string()?;
            return match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                other => Err(Error::custom(format!("bad f64 literal {other:?}"))),
            };
        }
        let tok = self.number_token()?;
        tok.parse::<f64>()
            .map_err(|_| Error::custom(format!("bad f64 {tok:?}")))
    }

    pub fn parse_u64(&mut self) -> Result<u64, Error> {
        let tok = self.number_token()?;
        tok.parse::<u64>()
            .map_err(|_| Error::custom(format!("bad integer {tok:?}")))
    }

    pub fn parse_i64(&mut self) -> Result<i64, Error> {
        let tok = self.number_token()?;
        tok.parse::<i64>()
            .map_err(|_| Error::custom(format!("bad integer {tok:?}")))
    }

    pub fn parse_bool(&mut self) -> Result<bool, Error> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.input[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(self.err("expected bool"))
        }
    }

    /// Consumes `null` if it is next; returns whether it was consumed.
    pub fn eat_null(&mut self) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(b"null") {
            self.pos += 4;
            true
        } else {
            false
        }
    }

    /// Reads one object key (a string followed by ':').
    pub fn parse_key(&mut self) -> Result<String, Error> {
        let key = self.parse_string()?;
        self.expect(b':')?;
        Ok(key)
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for primitives and containers
// ---------------------------------------------------------------------------

/// Writes an f64 so that it round-trips exactly (shortest representation;
/// non-finite values become tagged strings, which plain JSON lacks).
fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Keep integral floats distinguishable from integers on re-read
        // is unnecessary here: the target type drives parsing.
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        write_f64(*self, out);
    }
}

impl Deserialize for f64 {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.parse_f64()
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        write_f64(*self as f64, out);
    }
}

impl Deserialize for f32 {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(p.parse_f64()? as f32)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                let v = p.parse_u64()?;
                <$t>::try_from(v).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                let v = p.parse_i64()?;
                <$t>::try_from(v).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.parse_bool()
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.parse_string()
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.expect(b'[')?;
        let mut v = Vec::new();
        if p.eat(b']') {
            return Ok(v);
        }
        loop {
            v.push(T::deserialize_json(p)?);
            if p.eat(b']') {
                return Ok(v);
            }
            p.expect(b',')?;
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        if p.eat_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize_json(p)?))
        }
    }
}

impl Serialize for () {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl Deserialize for () {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        if p.eat_null() {
            Ok(())
        } else {
            Err(Error::custom("expected null"))
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.expect(b'[')?;
        let a = A::deserialize_json(p)?;
        p.expect(b',')?;
        let b = B::deserialize_json(p)?;
        p.expect(b']')?;
        Ok((a, b))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize_json(p)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let mut s = String::new();
        v.serialize_json(&mut s);
        let mut p = Parser::new(&s);
        let back = T::deserialize_json(&mut p).expect("deserialize");
        assert!(p.at_end(), "trailing input after {s}");
        assert_eq!(v, back, "via {s}");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(42usize);
        roundtrip(-7i64);
        roundtrip(std::f64::consts::PI);
        roundtrip(1e-300f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(String::from("he\"llo\n\\world"));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1.0f64, 2.5, -3.25]);
        roundtrip(Option::<f64>::None);
        roundtrip(Some(9usize));
        roundtrip((1usize, vec![2.0f64]));
        roundtrip(Vec::<u32>::new());
    }

    #[test]
    fn nan_roundtrips_as_nan() {
        let mut s = String::new();
        f64::NAN.serialize_json(&mut s);
        let mut p = Parser::new(&s);
        assert!(f64::deserialize_json(&mut p).unwrap().is_nan());
    }

    #[test]
    fn multibyte_strings_roundtrip() {
        // The bounded-window UTF-8 decode must handle every char width,
        // adjacent multibyte runs, and multibyte followed by ASCII.
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::from("日本語テキスト"));
        roundtrip(String::from("🦀🦀 crab"));
        roundtrip(String::from("mix: aé日🦀z"));
        // A multibyte char as the very last input byte(s).
        roundtrip(String::from("末"));
    }

    #[test]
    fn ascii_and_multibyte_mix_in_keys() {
        // The windowed decode must not over-consume when a multibyte
        // char is followed immediately by structural bytes.
        let json = "{\"kéy\":7}";
        let mut p = Parser::new(json);
        p.expect(b'{').unwrap();
        assert_eq!(p.parse_key().unwrap(), "kéy");
        assert_eq!(u32::deserialize_json(&mut p).unwrap(), 7);
        p.expect(b'}').unwrap();
        assert!(p.at_end());
    }

    #[test]
    fn string_parse_is_linear_in_practice() {
        // Guard against the quadratic regression this module once had
        // (whole-remaining-input UTF-8 validation per char): a document
        // with many keyed objects must parse in far less time than the
        // quadratic behaviour produced (~100ms at this size).
        let n = 8_000;
        let mut json = String::from("[");
        for i in 0..n {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("{{\"k\":[{i},0.5]}}"));
        }
        json.push(']');
        let start = std::time::Instant::now();
        let mut p = Parser::new(&json);
        let mut count = 0usize;
        p.expect(b'[').unwrap();
        loop {
            p.expect(b'{').unwrap();
            assert_eq!(p.parse_key().unwrap(), "k");
            let _coords: Vec<f64> = Deserialize::deserialize_json(&mut p).unwrap();
            p.expect(b'}').unwrap();
            count += 1;
            if p.eat(b']') {
                break;
            }
            p.expect(b',').unwrap();
        }
        assert_eq!(count, n);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "keyed-object parse took {:?} — quadratic again?",
            start.elapsed()
        );
    }
}
