//! Structured observability end to end: install a recorder, run every
//! backend through the unified [`Task`] front door plus a warm
//! serving pool, then read the telemetry back three ways —
//!
//! 1. from the [`Report::telemetry`] snapshot each run carries,
//! 2. as the rendered table `divmax-stats` prints,
//! 3. as the JSON-lines export (`DIVMAX_OBS=path` wires it into any
//!    process without code changes).
//!
//! Nothing here costs anything until [`obs::install`] runs: every
//! instrumented hot path guards its reporting behind one relaxed
//! atomic load, so the same binary with no recorder runs at full
//! speed.
//!
//! Run with: `cargo run --release --example observability`
//! (set `DIVMAX_OBS=/tmp/divmax.jsonl` to also get the JSONL export,
//! then inspect it with `cargo run -p diversity-obs --bin divmax-stats
//! -- /tmp/divmax.jsonl`).

use diversity::obs;
use diversity::prelude::*;
use diversity_serve::{Serve, ShardPool};
use std::sync::Arc;

fn main() -> Result<(), DivError> {
    let k = 6;
    let (points, _) = datasets::sphere_shell(6_000, k, 3, 17);

    // One thread-safe registry for the whole process. Per-thread
    // `obs::LocalRecorder`s merging into one Snapshot are the
    // contention-free alternative for hot multi-threaded writers.
    let registry = Arc::new(obs::Registry::new());
    obs::install(registry.clone());

    // Every backend reports into the same namespace.
    let task = Task::new(Problem::RemoteEdge, k).budget(Budget::KPrime(8 * k));
    let seq = task.run_seq(&points, &Euclidean)?;
    let stream = task.run_stream(points.iter().cloned(), &Euclidean)?;
    let parts = mapreduce::partition::split_random(points.clone(), 4, 3);
    let rt = mapreduce::MapReduceRuntime::with_threads(4);
    let mr = task.run_mapreduce(&parts, &Euclidean, &rt, Strategy::TwoRound)?;
    let mut engine = dynamic::DynamicDiversity::new(Euclidean);
    for p in &points {
        engine.insert(p.clone());
    }
    let dyn_report = task.run_dynamic(&engine)?;

    // ...including the warm serving path.
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 4)?;
    let ids = pool.extend(points.iter().cloned())?;
    for id in ids.iter().step_by(5) {
        pool.delete(*id)?;
    }
    let warm = pool.query(&task)?;

    println!(
        "values: seq={:.3} stream={:.3} mr={:.3} dynamic={:.3} warm={:.3}\n",
        seq.value, stream.value, mr.value, dyn_report.value, warm.value
    );

    // 1. Every Report carries the snapshot taken as it finished.
    let snap = warm.telemetry.as_ref().expect("recorder is installed");
    println!(
        "warm query e2e p99: {} ns over {} queries",
        snap.histogram("serve.query.e2e_ns").unwrap().p99(),
        snap.histogram("serve.query.e2e_ns").unwrap().count,
    );
    println!(
        "gmm ran {} rounds; kernels computed {} distances",
        snap.counter("gmm.rounds").unwrap_or(0),
        snap.counter("kernel.distances").unwrap_or(0),
    );
    let prefix = pool.gauge_prefix();
    assert_eq!(
        snap.gauge_prefix_sum(&prefix),
        pool.len() as i64,
        "occupancy gauges sum to the live point count"
    );

    // 2. The human-readable table (what `divmax-stats` prints).
    println!("\n{}", registry.snapshot_now().render());

    // 3. The JSONL export, honoring DIVMAX_OBS when set.
    match obs::export_to_env_path(&registry.snapshot_now()) {
        Ok(true) => println!("exported snapshot to ${}", obs::ENV_VAR),
        Ok(false) => println!("set {}=path to export the snapshot as JSONL", obs::ENV_VAR),
        Err(e) => eprintln!("export failed: {e}"),
    }

    obs::uninstall();
    Ok(())
}
