//! Diversity maximization over *strings* — no vectors, no embeddings,
//! just the Levenshtein metric. Demonstrates that the whole stack —
//! including the `Task` front door — is generic over any `Metric<P>`:
//! here we pick a panel of maximally dissimilar product names from a
//! noisy catalog of near-duplicates.
//!
//! Run with: `cargo run --release --example diverse_strings`

use diversity::prelude::*;
use metric::Levenshtein;

/// A catalog of product names: a few families of near-duplicates
/// (brand + size/color variants), the worst case for naive top-N
/// listings.
fn catalog() -> Vec<String> {
    let families = [
        "acme wireless mouse",
        "contoso mechanical keyboard",
        "globex usb-c hub",
        "initech 27in monitor",
        "umbrella hepa air purifier",
        "stark induction kettle",
    ];
    let variants = [
        "",
        " v2",
        " pro",
        " (black)",
        " (white)",
        " 2024 edition",
        " XL",
        " mini",
        " - refurbished",
        " bundle",
    ];
    let mut out = Vec::new();
    for f in families {
        for v in variants {
            out.push(format!("{f}{v}"));
        }
    }
    out
}

fn main() -> Result<(), DivError> {
    let names = catalog();
    let k = 6;
    println!("catalog: {} product names, {} families\n", names.len(), 6);

    // Streaming front end over strings with edit distance — the report
    // carries both the names and their arrival positions.
    let panel = Task::new(Problem::RemoteClique, k)
        .budget(Budget::KPrime(4 * k))
        .run_stream(names.iter().cloned(), &Levenshtein)?;
    println!(
        "diverse panel (remote-clique, edit distance, value {}):",
        panel.value
    );
    for (name, pos) in panel.points.iter().zip(&panel.indices) {
        println!("  - {name}  (arrival #{pos})");
    }

    // Each family should be represented at most ~once: check pairwise
    // edit distances of the panel.
    let dm = DistanceMatrix::build(&panel.points, &Levenshtein);
    println!(
        "\npanel min pairwise edit distance: {} (near-duplicates differ by <= {})",
        dm.min_pairwise(),
        " - refurbished".len()
    );

    // Exact check on a brute-forceable subset: the α=2 guarantee.
    let subset: Vec<String> = names.iter().step_by(3).cloned().collect();
    let k_small = 4;
    let seq_sol = seq::solve(Problem::RemoteEdge, &subset, &Levenshtein, k_small);
    let exact = exact::divk_exact(Problem::RemoteEdge, &subset, &Levenshtein, k_small);
    println!(
        "\nremote-edge on a {}-name subset: sequential {} vs exact {} \
         (α-bound 2.0, actual ratio {:.3})",
        subset.len(),
        seq_sol.value,
        exact.value,
        exact.value / seq_sol.value
    );
    Ok(())
}
