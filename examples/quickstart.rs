//! Quickstart: pick `k` maximally diverse points three ways —
//! single-machine core-set pipeline, one-pass streaming, and simulated
//! MapReduce — on the paper's sphere-shell workload.
//!
//! Run with: `cargo run --release --example quickstart`

use diversity::prelude::*;

fn main() {
    let n = 20_000;
    let k = 8;
    let k_prime = 4 * k;

    // The paper's challenging synthetic distribution: k planted points
    // on the unit sphere, the rest uniform in a 0.8-radius ball.
    let (points, planted) = datasets::sphere_shell(n, k, 3, 42);
    println!("dataset: {n} points in R^3, {k} planted on the unit sphere");

    // The planted far-away points give a sanity reference for
    // remote-edge (their pairwise min distance) — note the algorithms
    // may legitimately *beat* it by mixing sphere and ball points.
    let planted_value = eval::evaluate_subset(Problem::RemoteEdge, &points, &Euclidean, &planted);
    println!("planted remote-edge value: {planted_value:.4}\n");

    // --- 1. Single machine: core-set -> sequential algorithm ---------
    let sol = pipeline::coreset_then_solve(Problem::RemoteEdge, &points, &Euclidean, k, k_prime);

    // --- 2. Streaming: one pass, memory independent of n -------------
    let stream_sol = streaming::pipeline::one_pass(
        Problem::RemoteEdge,
        Euclidean,
        k,
        k_prime,
        points.iter().cloned(),
    );

    // --- 3. MapReduce: 2 rounds over 8 simulated reducers ------------
    let parts = mapreduce::partition::split_random(points.clone(), 8, 7);
    let rt = mapreduce::MapReduceRuntime::with_threads(8);
    let mr =
        mapreduce::two_round::two_round(Problem::RemoteEdge, &parts, &Euclidean, k, k_prime, &rt);

    // Approximation ratios relative to the best value found (the
    // paper's normalization).
    let best = planted_value
        .max(sol.value)
        .max(stream_sol.value)
        .max(mr.solution.value);
    println!(
        "single-machine  value {:.4}  (ratio {:.3})",
        sol.value,
        best / sol.value
    );
    println!(
        "streaming       value {:.4}  (ratio {:.3})",
        stream_sol.value,
        best / stream_sol.value
    );
    println!(
        "mapreduce       value {:.4}  (ratio {:.3})",
        mr.solution.value,
        best / mr.solution.value
    );
    for round in &mr.stats.rounds {
        println!(
            "  {:<16} reducers={:<3} M_L={:<6} shuffle={:<6} wall={:?}",
            round.name, round.reducers, round.max_local_points, round.emitted_points, round.wall
        );
    }

    println!("\nselected indices (mapreduce): {:?}", mr.solution.indices);
}
