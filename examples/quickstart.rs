//! Quickstart: pick `k` maximally diverse points three ways —
//! single-machine core-set pipeline, one-pass streaming, and simulated
//! MapReduce — on the paper's sphere-shell workload, all through the
//! one `Task` front door.
//!
//! Run with: `cargo run --release --example quickstart`

use diversity::prelude::*;

fn main() -> Result<(), DivError> {
    let n = 20_000;
    let k = 8;

    // The paper's challenging synthetic distribution: k planted points
    // on the unit sphere, the rest uniform in a 0.8-radius ball.
    let (points, planted) = datasets::sphere_shell(n, k, 3, 42);
    println!("dataset: {n} points in R^3, {k} planted on the unit sphere");

    // The planted far-away points give a sanity reference for
    // remote-edge (their pairwise min distance) — note the algorithms
    // may legitimately *beat* it by mixing sphere and ball points.
    let planted_value = eval::evaluate_subset(Problem::RemoteEdge, &points, &Euclidean, &planted);
    println!("planted remote-edge value: {planted_value:.4}\n");

    // One job description: remote-edge, k = 8, kernel budget k' = 4k.
    let task = Task::new(Problem::RemoteEdge, k).budget(Budget::KPrime(4 * k));

    // --- 1. Single machine: core-set -> sequential algorithm ---------
    let seq = task.run_seq(&points, &Euclidean)?;

    // --- 2. Streaming: one pass, memory independent of n -------------
    let stream = task.run_stream(points.iter().cloned(), &Euclidean)?;

    // --- 3. MapReduce: 2 rounds over 8 simulated reducers ------------
    let parts = mapreduce::partition::split_random(points.clone(), 8, 7);
    let rt = mapreduce::MapReduceRuntime::with_threads(8);
    let mr = task.run_mapreduce(&parts, &Euclidean, &rt, Strategy::TwoRound)?;

    // One report shape everywhere. Approximation ratios are relative to
    // the best value found (the paper's normalization).
    let best = planted_value.max(seq.value).max(stream.value).max(mr.value);
    for report in [&seq, &stream, &mr] {
        println!(
            "{:<12?} value {:.4}  (ratio {:.3})  core-set {:>3} pts  {:.1} ms",
            report.backend,
            report.value,
            report.value / best,
            report.coreset_size,
            report.total_secs() * 1e3,
        );
    }

    // Reports carry provenance: indices into the backend's index space
    // plus the owned points themselves.
    println!(
        "\nsequential picked indices {:?} — the same subset re-evaluates to {:.4}",
        seq.indices,
        eval::evaluate_subset(Problem::RemoteEdge, &points, &Euclidean, &seq.indices)
    );
    Ok(())
}
