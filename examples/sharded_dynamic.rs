//! The sharded-dynamic composition: per-shard fully dynamic engines
//! whose extracted `Coreset` artifacts merge through the 2-round
//! MapReduce combiner — the paper's composable-core-set glue turned
//! into a fifth backend.
//!
//! The scenario: a serving fleet holds the dataset sharded across
//! machines, each shard maintained by a dynamic engine under live
//! inserts/deletes. A diversity query then costs one core-set
//! extraction per shard (no shard rescans its raw points), one merge
//! (radius = max of shards, by Definition 2's composition law), and
//! one sequential solve on the small union.
//!
//! Run with: `cargo run --release --example sharded_dynamic`

use diversity::prelude::*;

fn main() -> Result<(), DivError> {
    let k = 8;
    let shards = 6;
    let (points, _) = datasets::sphere_shell(60_000, k, 3, 97);

    let task = Task::new(Problem::RemoteEdge, k).budget(Budget::KPrime(16 * k));
    let parts = mapreduce::partition::split_random(points.clone(), shards, 11);
    let rt = mapreduce::MapReduceRuntime::with_threads(shards);

    // One call: engines per shard, extraction, merge, combine.
    let sharded = task.run_sharded(&parts, &Euclidean, &rt)?;

    // The same task on the plain substrates, for comparison.
    let seq = task.run_seq(&points, &Euclidean)?;
    let mr = task.run_mapreduce(&parts, &Euclidean, &rt, Strategy::TwoRound)?;

    println!(
        "{:<16} {:>12} {:>10} {:>12} {:>10}",
        "backend", "value", "core-set", "radius cert", "time"
    );
    for report in [&sharded, &seq, &mr] {
        println!(
            "{:<16} {:>12.4} {:>10} {:>12.4} {:>9.1}ms",
            format!("{:?}", report.backend),
            report.value,
            report.coreset_size,
            report.coreset_radius.unwrap_or(f64::NAN),
            report.total_secs() * 1e3,
        );
    }

    // The memory accounting the Report now carries: per-round resident
    // and shipped points — the paper's M_L / M_T quantities.
    println!("\nper-round memory (sharded run):");
    for m in &sharded.memory {
        println!(
            "  {:<24} reducers={:<3} M_L={:<8} total={:<8} shipped={}",
            m.stage, m.reducers, m.max_local_points, m.total_points, m.emitted_points
        );
    }

    // What the composition means: the per-shard engines never shipped
    // their raw points — only `coreset_size` points crossed the wire,
    // with a covering-radius certificate composed as the max of the
    // per-shard radii (Lemmas 3–4 / Definition 2).
    let shipped = sharded.coreset_size;
    println!(
        "\n{} points held across {shards} shards; {shipped} shipped to the combiner \
         ({:.2}% of the data), certificate radius {:.4}",
        points.len(),
        100.0 * shipped as f64 / points.len() as f64,
        sharded.coreset_radius.unwrap_or(f64::NAN),
    );

    // The low-level artifact API the backend is built from — what a
    // real serving layer would run inside each shard process:
    let mut engine = DynamicDiversity::new(Euclidean);
    for p in &parts.parts[0] {
        engine.insert(p.clone());
    }
    let artifact: Coreset<VecPoint> = engine.extract_coreset(Problem::RemoteEdge, k, 16 * k);
    let wire = serde_json::to_string(&artifact).expect("artifacts are wire types");
    println!(
        "shard 0 artifact: {} points, radius {:.4}, {} bytes on the wire",
        artifact.len(),
        artifact.radius(),
        wire.len()
    );

    Ok(())
}
