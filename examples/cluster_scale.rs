//! Simulated-cluster scale demo: one `Task`, every MapReduce strategy —
//! deterministic 2-round vs randomized 2-round vs 3-round generalized
//! core-sets vs multi-round recursive — on the same larger input, with
//! the per-round timings and core-set (= shuffle) sizes the reports
//! carry. (The low-level `mapreduce::*` drivers additionally expose the
//! full `MrStats` memory accounting of Table 3.)
//!
//! Run with: `cargo run --release --example cluster_scale`

use diversity::prelude::*;

fn main() -> Result<(), DivError> {
    let n = 200_000;
    let k = 16;
    let k_prime = 32;
    let ell = 8;
    let problem = Problem::RemoteClique;

    let (points, _) = datasets::sphere_shell(n, k, 3, 7);
    println!("dataset: {n} points in R^3; problem {problem}, k={k}, k'={k_prime}, l={ell}");

    let rt = mapreduce::MapReduceRuntime::default();
    let parts = mapreduce::partition::split_random(points, ell, 11);
    let task = Task::new(problem, k).budget(Budget::KPrime(k_prime));

    let strategies = [
        ("deterministic 2-round (Theorem 6)", Strategy::TwoRound),
        (
            "randomized 2-round (Theorem 7)",
            Strategy::Randomized { seed: 11 },
        ),
        (
            "3-round generalized core-sets (Theorem 10)",
            Strategy::ThreeRound,
        ),
        (
            "multi-round recursive, M_L=20k pts (Theorem 8)",
            Strategy::Recursive {
                memory_limit: 20_000,
            },
        ),
    ];

    let mut summary = Vec::new();
    for (label, strategy) in strategies {
        let report = task.run_mapreduce(&parts, &Euclidean, &rt, strategy)?;
        println!("\n=== {label} (value {:.4}) ===", report.value);
        for stage in &report.timings {
            println!("  {:<28} {:>9.1} ms", stage.stage, stage.secs * 1e3);
        }
        println!(
            "  solve-stage core-set: {} points (of {n} total)",
            report.coreset_size
        );
        summary.push((label, report));
    }

    println!("\nsummary: same task, same report shape, very different profiles:");
    for (label, report) in &summary {
        println!(
            "  {:<46} value {:>9.4}  core-set {:>6}  total {:>7.1} ms",
            label,
            report.value,
            report.coreset_size,
            report.total_secs() * 1e3
        );
    }
    Ok(())
}
