//! Simulated-cluster scale demo: the MapReduce algorithms side by side
//! on a larger input, with the paper's memory/shuffle accounting
//! (Table 3) made visible.
//!
//! Shows: deterministic 2-round vs randomized 2-round vs 3-round
//! generalized core-sets vs multi-round recursive — same dataset, same
//! `k`, very different `M_L` / shuffle profiles.
//!
//! Run with: `cargo run --release --example cluster_scale`

use diversity::mapreduce::{randomized, recursive, three_round, two_round, MapReduceRuntime};
use diversity::prelude::*;

fn print_stats(label: &str, value: f64, stats: &diversity::mapreduce::MrStats) {
    println!("\n=== {label} (value {value:.4}) ===");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "round", "reducers", "M_L(pts)", "shuffle", "wall", "critical"
    );
    for r in &stats.rounds {
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10.1?} {:>10.1?}",
            r.name, r.reducers, r.max_local_points, r.emitted_points, r.wall, r.critical_path
        );
    }
    println!(
        "simulated parallel time (sum of critical paths): {:.1?}",
        stats.simulated_wall()
    );
}

fn main() {
    let n = 200_000;
    let k = 16;
    let k_prime = 32;
    let ell = 8;
    let problem = Problem::RemoteClique;

    let (points, _) = datasets::sphere_shell(n, k, 3, 7);
    println!("dataset: {n} points in R^3; problem {problem}, k={k}, k'={k_prime}, l={ell}");

    let rt = MapReduceRuntime::default();
    let parts = mapreduce::partition::split_random(points.clone(), ell, 11);

    let det = two_round::two_round(problem, &parts, &Euclidean, k, k_prime, &rt);
    print_stats(
        "deterministic 2-round (Theorem 6)",
        det.solution.value,
        &det.stats,
    );

    let rand = randomized::randomized_two_round(problem, &parts, &Euclidean, k, k_prime, &rt);
    print_stats(
        "randomized 2-round (Theorem 7)",
        rand.solution.value,
        &rand.stats,
    );

    let gen = three_round::three_round(problem, &parts, &Euclidean, k, k_prime, &rt);
    print_stats(
        "3-round generalized core-sets (Theorem 10)",
        gen.solution.value,
        &gen.stats,
    );

    let rec = recursive::recursive(problem, &points, &Euclidean, k, k_prime, 20_000, &rt);
    print_stats(
        "multi-round recursive, M_L=20k pts (Theorem 8)",
        rec.solution.value,
        &rec.stats,
    );

    println!(
        "\nsummary: det-2r shuffles {} pts; rand-2r {}; 3-round {} pairs — \
         the Table 3 memory hierarchy in action",
        det.stats.rounds[0].emitted_points,
        rand.stats.rounds[0].emitted_points,
        gen.stats.rounds[0].emitted_points,
    );
}
