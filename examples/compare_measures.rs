//! The six diversity measures disagree — as the paper stresses, "an
//! optimal solution with respect to one measure is not necessarily
//! optimal with respect to another". This example makes that concrete
//! on a small instance where exact optima are computable, then checks
//! each `Task`'s α-guarantee against the exact optimum (with `k' = n`
//! the core-set is lossless and the task reduces to the sequential
//! α-approximation).
//!
//! Run with: `cargo run --release --example compare_measures`

use diversity::prelude::*;

fn main() -> Result<(), DivError> {
    // A 14-point configuration with structure: two tight clusters, a
    // loose arc, and two outliers.
    let coords: [[f64; 2]; 14] = [
        [0.0, 0.0],
        [0.2, 0.1],
        [0.1, 0.3],
        [5.0, 5.0],
        [5.2, 5.1],
        [5.1, 4.8],
        [2.5, 8.0],
        [4.0, 9.0],
        [6.0, 9.2],
        [8.0, 8.0],
        [10.0, 0.0],
        [-3.0, 6.0],
        [1.0, 5.0],
        [9.0, 4.0],
    ];
    let points: Vec<VecPoint> = coords.iter().map(|&c| VecPoint::from(c)).collect();
    let k = 5;

    println!(
        "exact optima (n={}, k={k}) and the α-approximations:\n",
        points.len()
    );
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>9}  optimal subset",
        "objective", "exact", "approx", "ratio", "α-bound"
    );
    let mut optima: Vec<(Problem, Vec<usize>)> = Vec::new();
    for problem in Problem::ALL {
        let best = exact::divk_exact(problem, &points, &Euclidean, k);
        let approx = Task::new(problem, k)
            .budget(Budget::KPrime(points.len()))
            .run_seq(&points, &Euclidean)?;
        let ratio = best.value / approx.value;
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>7.3} {:>9.1}  {:?}",
            problem.to_string(),
            best.value,
            approx.value,
            ratio,
            problem.alpha(),
            best.indices
        );
        assert!(
            ratio <= problem.alpha() + 1e-9,
            "α-guarantee violated for {problem}"
        );
        optima.push((problem, best.indices));
    }

    // How different are the optimal subsets across measures?
    println!("\npairwise overlap of optimal subsets (|A∩B| out of {k}):");
    print!("{:<16}", "");
    for (p, _) in &optima {
        print!("{:>9}", p.short_name().trim_start_matches("r-"));
    }
    println!();
    for (pa, a) in &optima {
        print!("{:<16}", pa.to_string());
        for (_, b) in &optima {
            let overlap = a.iter().filter(|i| b.contains(i)).count();
            print!("{overlap:>9}");
        }
        println!();
    }
    println!("\n(diagonal = {k}; off-diagonal < {k} shows the measures genuinely disagree)");
    Ok(())
}
