//! A news feed with expiring items: the fully dynamic engine keeps an
//! ε-coreset through the churn, so picking k diverse headlines costs
//! microseconds instead of a from-scratch rebuild per refresh.
//!
//! Run with `cargo run --release --example dynamic_window`.

use diversity::prelude::*;
use diversity_dynamic::{DynamicDiversity, PointId};
use std::collections::VecDeque;
use std::time::Instant;

fn main() {
    let k = 8; // headlines on the front page
    let window = 2_000; // stories stay live for 2k arrivals
    let total = 10_000;
    let budget = 64;

    // Embeddings of incoming stories: drifting topic clusters.
    let stream = datasets::gaussian_clusters(total, 12, 3, 30.0, 2024);

    let mut engine = DynamicDiversity::new(Euclidean);
    let mut live: VecDeque<(PointId, VecPoint)> = VecDeque::new();
    let mut dynamic_total = 0.0f64;
    let mut rebuild_total = 0.0f64;
    let mut refreshes = 0usize;

    println!("news window: {window} live stories, k = {k} diverse headlines\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}  {:>12}",
        "arrival", "dyn value", "dyn solve", "rebuild", "speedup"
    );

    let churn_start = Instant::now();
    for (t, story) in stream.into_iter().enumerate() {
        let id = engine.insert(story.clone());
        live.push_back((id, story));
        if live.len() > window {
            let (expired, _) = live.pop_front().expect("window non-empty");
            engine.delete(expired);
        }

        // Refresh the front page every 1000 arrivals.
        if t >= window && t % 1_000 == 0 {
            let t0 = Instant::now();
            let sol = engine.solve_with_budget(Problem::RemoteEdge, k, budget);
            let dyn_secs = t0.elapsed().as_secs_f64();

            let snapshot: Vec<VecPoint> = live.iter().map(|(_, p)| p.clone()).collect();
            let t1 = Instant::now();
            let rebuilt =
                pipeline::coreset_then_solve(Problem::RemoteEdge, &snapshot, &Euclidean, k, budget);
            let rebuild_secs = t1.elapsed().as_secs_f64();

            dynamic_total += dyn_secs;
            rebuild_total += rebuild_secs;
            refreshes += 1;
            println!(
                "{:>8}  {:>12.3}  {:>11.2}µs  {:>11.2}µs  {:>11.1}x",
                t,
                sol.value / rebuilt.value,
                dyn_secs * 1e6,
                rebuild_secs * 1e6,
                rebuild_secs / dyn_secs
            );
        }
    }
    let churn_secs = churn_start.elapsed().as_secs_f64();

    let stats = engine.stats();
    println!(
        "\nprocessed {total} arrivals (+{} expirations) in {churn_secs:.2}s",
        total - window.min(total)
    );
    println!(
        "per-update work: {:.0} distance evals (structure-bounded, window = {window})",
        stats.distance_evals_per_update()
    );
    println!(
        "front-page refresh: dynamic {:.1}µs vs rebuild {:.1}µs — {:.0}x faster",
        dynamic_total / refreshes as f64 * 1e6,
        rebuild_total / refreshes as f64 * 1e6,
        rebuild_total / dynamic_total
    );
}
