//! A news feed with expiring items: the fully dynamic engine keeps an
//! ε-coreset through the churn, so picking k diverse headlines costs
//! microseconds instead of a from-scratch rebuild per refresh. The
//! *same* `Task` answers from the dynamic engine and from the rebuild —
//! the unified API's point: substrates change, the job doesn't.
//!
//! Run with `cargo run --release --example dynamic_window`.

use diversity::prelude::*;
use std::collections::VecDeque;

fn main() -> Result<(), DivError> {
    let k = 8; // headlines on the front page
    let window = 2_000; // stories stay live for 2k arrivals
    let total = 10_000;
    let budget = 64;

    // Embeddings of incoming stories: drifting topic clusters.
    let stream = datasets::gaussian_clusters(total, 12, 3, 30.0, 2024);

    let task = Task::new(Problem::RemoteEdge, k).budget(Budget::KPrime(budget));
    let mut engine = DynamicDiversity::new(Euclidean);
    let mut live: VecDeque<(PointId, VecPoint)> = VecDeque::new();
    let mut dynamic_total = 0.0f64;
    let mut rebuild_total = 0.0f64;
    let mut refreshes = 0usize;

    println!("news window: {window} live stories, k = {k} diverse headlines\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}  {:>12}",
        "arrival", "dyn value", "dyn solve", "rebuild", "speedup"
    );

    let churn_start = std::time::Instant::now();
    for (t, story) in stream.into_iter().enumerate() {
        let id = engine.insert(story.clone());
        live.push_back((id, story));
        if live.len() > window {
            let (expired, _) = live.pop_front().expect("window non-empty");
            engine.delete(expired);
        }

        // Refresh the front page every 1000 arrivals: the same task,
        // answered by two backends.
        if t >= window && t % 1_000 == 0 {
            let dynamic = task.run_dynamic(&engine)?;
            let dyn_secs = dynamic.total_secs();

            let snapshot: Vec<VecPoint> = live.iter().map(|(_, p)| p.clone()).collect();
            let rebuilt = task.run_seq(&snapshot, &Euclidean)?;
            let rebuild_secs = rebuilt.total_secs();

            dynamic_total += dyn_secs;
            rebuild_total += rebuild_secs;
            refreshes += 1;
            println!(
                "{:>8}  {:>12.3}  {:>11.2}µs  {:>11.2}µs  {:>11.1}x",
                t,
                dynamic.value / rebuilt.value,
                dyn_secs * 1e6,
                rebuild_secs * 1e6,
                rebuild_secs / dyn_secs
            );
        }
    }
    let churn_secs = churn_start.elapsed().as_secs_f64();

    let stats = engine.stats();
    println!(
        "\nprocessed {total} arrivals (+{} expirations) in {churn_secs:.2}s",
        total - window.min(total)
    );
    println!(
        "per-update work: {:.0} distance evals (structure-bounded, window = {window})",
        stats.distance_evals_per_update()
    );
    println!(
        "front-page refresh: dynamic {:.1}µs vs rebuild {:.1}µs — {:.0}x faster",
        dynamic_total / refreshes as f64 * 1e6,
        rebuild_total / refreshes as f64 * 1e6,
        rebuild_total / dynamic_total
    );
    Ok(())
}
