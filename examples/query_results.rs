//! Query-result diversification — the e-commerce / web-search scenario
//! from the paper's introduction: after relevance filtering, the result
//! set is still too large to show, so present a subset that covers the
//! variety of options.
//!
//! Products are feature vectors (price tier, brand embedding, category
//! signals); the example contrasts what the *six* different diversity
//! objectives consider the "most diverse" 6 products — one `Task` per
//! objective, same dataset, same report shape — and refines the
//! remote-clique panel with the low-level swap local search.
//!
//! Run with: `cargo run --release --example query_results`

use diversity::core::local_search::{local_search_clique, LocalSearchOptions};
use diversity::prelude::*;

/// A fake catalog: `n` products in a 4-d feature space with a few
/// dense clusters (popular product families) plus scattered niche
/// items — the shape that makes naive top-N result lists redundant.
fn catalog(n: usize, seed: u64) -> Vec<VecPoint> {
    let clustered = datasets::gaussian_clusters(n * 4 / 5, 6, 4, 0.03, seed);
    let niche = datasets::uniform_cube(n / 5, 4, seed ^ 0xBEEF);
    clustered.into_iter().chain(niche).collect()
}

fn main() -> Result<(), DivError> {
    let products = catalog(5_000, 99);
    let k = 6;
    let k_prime = 48;
    println!(
        "catalog: {} products, 4 features; presenting {k} diverse results\n",
        products.len()
    );

    println!("{:<16} {:>10}  selected product ids", "objective", "value");
    for problem in Problem::ALL {
        let report = Task::new(problem, k)
            .budget(Budget::KPrime(k_prime))
            .run_seq(&products, &Euclidean)?;
        let mut ids = report.indices.clone();
        ids.sort_unstable();
        println!(
            "{:<16} {:>10.4}  {:?}",
            problem.to_string(),
            report.value,
            ids
        );
    }

    // Optional refinement: the paper's remote-clique solution can be
    // polished by the (more expensive) swap local search — a low-level
    // tool, fed directly from the report's indices.
    let base = Task::new(Problem::RemoteClique, k)
        .budget(Budget::KPrime(k_prime))
        .run_seq(&products, &Euclidean)?;
    let refined = local_search_clique(
        &products,
        &Euclidean,
        &base.indices,
        &LocalSearchOptions::default(),
    );
    println!(
        "\nremote-clique refinement: {:.4} -> {:.4} ({} swaps, converged: {})",
        base.value, refined.solution.value, refined.swaps, refined.converged
    );

    // Show that diversification actually spreads across clusters: the
    // min pairwise distance of the panel vs. of a naive prefix.
    let naive: Vec<usize> = (0..k).collect();
    let naive_val = eval::evaluate_subset(Problem::RemoteEdge, &products, &Euclidean, &naive);
    let panel_val =
        eval::evaluate_subset(Problem::RemoteEdge, &products, &Euclidean, &base.indices);
    println!("min pairwise distance: naive top-{k} = {naive_val:.4}, diversified = {panel_val:.4}");
    Ok(())
}
