//! The warm-path serving layer: a long-lived [`ShardPool`] absorbing
//! live traffic (inserts + deletes) and answering diversity queries
//! from the maintained shard structures — no engine rebuilds, no data
//! rescans.
//!
//! The scenario: a news-feed service keeps the last few hours of
//! stories in a 4-shard pool. Stories arrive continuously, old ones
//! expire, and every dashboard refresh asks for the `k` most diverse
//! stories *right now*. The cold alternative (`Task::run_sharded`)
//! rebuilds every shard engine per refresh; the pool amortizes that
//! into the update stream and serves each refresh extraction-only —
//! then snapshots itself so a restart resumes with bit-identical
//! answers.
//!
//! Run with: `cargo run --release --example serving`

use diversity::prelude::*;
use diversity_serve::{Serve, ShardPool};
use std::time::Instant;

fn main() -> Result<(), DivError> {
    let k = 8;
    let (stories, _) = datasets::sphere_shell(40_000, k, 3, 23);
    let task = Task::new(Problem::RemoteEdge, k).budget(Budget::KPrime(16 * k));

    // Opt into the persistent handle behind Strategy::ShardedDynamic.
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 4)?;

    // Live traffic: insert the backlog, then churn — every third new
    // story replaces an old one (a sliding window in miniature).
    let ids = pool.extend(stories[..30_000].iter().cloned())?;
    let mut expired = ids.into_iter();
    for (i, story) in stories[30_000..].iter().enumerate() {
        pool.insert(story.clone())?;
        if i % 3 == 0 {
            if let Some(old) = expired.next() {
                pool.delete(old)?;
            }
        }
    }
    println!(
        "pool: {} stories across {} shards after churn",
        pool.len(),
        pool.num_shards()
    );

    // Dashboard refreshes: warm-path queries from maintained state.
    let t = Instant::now();
    let report = pool.query(&task)?;
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "warm query: value {:.4}, core-set {} pts, composed radius {:.4}, {:.1}ms",
        report.value,
        report.coreset_size,
        report.coreset_radius.unwrap_or(f64::NAN),
        warm_ms,
    );

    // The cold path answers the same question by rebuilding everything.
    let parts = mapreduce::partition::split_round_robin(
        pool.alive().into_iter().map(|(_, p)| p).collect(),
        4,
    );
    let rt = mapreduce::MapReduceRuntime::with_threads(4);
    let t = Instant::now();
    let cold = task.run_sharded(&parts, &Euclidean, &rt)?;
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "cold rebuild: value {:.4}, {:.1}ms  ({:.0}x the warm query)",
        cold.value,
        cold_ms,
        cold_ms / warm_ms.max(1e-6),
    );

    // Snapshot → restore: the restarted service answers identically.
    let snapshot = pool.checkpoint()?;
    let restored: ShardPool<VecPoint, _> = ShardPool::restore(Euclidean, snapshot)?;
    let replay = restored.query(&task)?;
    assert_eq!(replay.value.to_bits(), report.value.to_bits());
    assert_eq!(replay.indices, report.indices);
    println!("checkpoint/restore: bit-identical answer reproduced");
    Ok(())
}
