//! Serving over the network: the same warm-path [`ShardPool`] as the
//! `serving` example, but behind the `diversity-net` socket front —
//! real TCP, the binary wire protocol, typed statuses, and a
//! snapshot-consistent checkpoint pulled over the wire.
//!
//! The walkthrough:
//!
//! 1. seed a pool and start a [`Server`] on an ephemeral localhost
//!    port (in production this is the `divmax-serve` binary);
//! 2. connect a [`NetClient`], run a query, route an insert, and watch
//!    the answer change;
//! 3. quarantine a shard to see the **degraded-answer contract cross
//!    the wire**: a `Degraded` status carrying the full report and its
//!    `Degradation` block — not a dropped connection;
//! 4. pull a binary checkpoint over the wire and restore it into a
//!    second, local pool that answers bit-identically;
//! 5. drain the server with the Shutdown opcode.
//!
//! Run with: `cargo run --release --example network_serving`

use diversity::prelude::*;
use diversity_net::{NetClient, Server, ServerConfig};
use diversity_serve::ShardPool;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 8;
    let (stories, _) = datasets::sphere_shell(10_000, k, 3, 23);
    let task = Task::new(Problem::RemoteEdge, k).budget(Budget::KPrime(8 * k));

    // 1. A seeded pool behind a socket server.
    let pool = ShardPool::new(Euclidean, 4);
    pool.extend(stories)?;
    let server = Server::start(pool, ServerConfig::default())?;
    println!("serving on {}", server.addr());

    // 2. A client query, then a routed insert that must change it.
    let mut client = NetClient::<VecPoint>::connect(server.addr())?;
    let before = client.query(&task)?;
    println!(
        "remote answer: k={} value={:.4} (radius certificate {:.4})",
        before.len(),
        before.value,
        before.coreset_radius.unwrap_or(f64::NAN),
    );
    let far = VecPoint::from([50.0, 50.0, 50.0]);
    let id = client.insert(&far)?;
    let after = client.query(&task)?;
    assert!(after.value >= before.value);
    println!(
        "after inserting an outlier (id {id}): value={:.4}",
        after.value
    );

    // 3. The degraded-answer contract over the wire.
    server.pool().quarantine(2);
    let degraded = client.query(&task)?;
    let block = degraded.degradation.as_ref().expect("degraded answer");
    println!(
        "with shard 2 quarantined: value={:.4}, {}/{} shards answered, coverage {:.2}",
        degraded.value, block.shards_answered, block.shards_total, block.coverage,
    );
    server.pool().recover_all()?;
    assert!(client.query(&task)?.degradation.is_none());

    // 4. A snapshot-consistent checkpoint over the wire, restored
    //    locally: bit-identical answers.
    let state = client.checkpoint()?;
    let restored = ShardPool::restore(Euclidean, state)?;
    let live = client.query(&task)?;
    let replay = restored.query(&task)?;
    assert_eq!(replay.indices, live.indices);
    assert_eq!(replay.value.to_bits(), live.value.to_bits());
    println!("checkpoint restored locally: bit-identical answer ✓");

    // 5. Drain.
    let stats = client.stats()?;
    println!(
        "server counters: {} queries, {} mutates, {} coalesced",
        stats.queries, stats.mutates, stats.coalesced
    );
    client.shutdown_server()?;
    server.join();
    Ok(())
}
