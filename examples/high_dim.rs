//! The high-dimensional fast path end to end: a 768-dimensional
//! embedding-style dataset, the runtime-detected SIMD kernels, and a
//! seeded Johnson–Lindenstrauss projection configured on the `Task`
//! itself. The projected run solves in `O(ε⁻² · ln k)` dimensions but
//! reports points, value, and certificate in the ORIGINAL space — the
//! α-guarantee widens by the JL distortion `(1+ε)/(1−ε)` and still
//! certifies against the unprojected baseline.
//!
//! Run with: `cargo run --release --example high_dim`

use diversity::prelude::*;

fn main() -> Result<(), DivError> {
    let (n, dim, k) = (4_000, 768, 16);
    let store = datasets::embedding_clusters_dense(n, 24, dim, 0.02, 42);
    println!(
        "dataset: {n} unit-norm points in R^{dim} (24 topics); SIMD dispatch: {}",
        metric::simd::dispatch_label()
    );

    let task = Task::new(Problem::RemoteEdge, k).budget(Budget::Eps { eps: 0.4, dim: 1 });

    // Baseline: solve in the full 768-dimensional space. The SIMD
    // kernels are already in play here (DIVMAX_SIMD=off to compare).
    let rows = store.rows();
    let t0 = std::time::Instant::now();
    let baseline = task.run_seq(&rows, &Euclidean)?;
    let base_secs = t0.elapsed().as_secs_f64();

    // Projected: same task, plus a JL spec. ε = 0.5 sends 768 dims to
    // target_dim(k, ε) = ⌈8·ln k / ε²⌉ dims; the certificate accounts
    // for the distortion.
    let projected_task = task.project(0.5, 7);
    let t0 = std::time::Instant::now();
    let projected = projected_task.run_projected(&store)?;
    let proj_secs = t0.elapsed().as_secs_f64();

    println!(
        "\nbaseline : value {:.4}  in {:>6.1} ms  (certificate factor {:.3})",
        baseline.value,
        base_secs * 1e3,
        baseline.certificate.as_ref().map_or(f64::NAN, |c| c.factor),
    );
    println!(
        "projected: value {:.4}  in {:>6.1} ms  (solved in {} dims, factor {:.3})",
        projected.value,
        proj_secs * 1e3,
        JlProjection::target_dim(k, 0.5).min(dim),
        projected
            .certificate
            .as_ref()
            .map_or(f64::NAN, |c| c.factor),
    );
    for stage in &projected.timings {
        println!("  {:<28} {:>9.1} ms", stage.stage, stage.secs * 1e3);
    }

    // The projected certificate is a claim about the ORIGINAL points:
    // value · factor bounds OPT. The baseline value is a feasible
    // solution, hence a lower bound on OPT the claim must cover.
    match projected.certifies(baseline.value) {
        Some(true) => println!(
            "\ncertificate holds: {:.4} x {:.3} >= {:.4} (baseline is a valid OPT lower bound)",
            projected.value,
            projected.certificate.as_ref().unwrap().factor,
            baseline.value
        ),
        other => println!("\ncertificate check: {other:?}"),
    }
    println!(
        "speedup: {:.2}x end-to-end, value ratio {:.4}",
        base_secs / proj_secs,
        projected.value / baseline.value
    );
    Ok(())
}
