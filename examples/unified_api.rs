//! The unified front door end to end: one serde-able `Task` job spec,
//! four execution substrates, one `Report` shape, typed errors.
//!
//! Run with: `cargo run --release --example unified_api`

use diversity::prelude::*;

fn main() -> Result<(), DivError> {
    let k = 6;
    let (points, _) = datasets::sphere_shell(30_000, k, 3, 1234);

    // A task is a job description. `Budget::Auto` estimates the data's
    // doubling dimension from a sample and sizes the kernel from it,
    // capped at 32k (the paper finds small multiples of k excellent).
    let task = Task::new(Problem::RemoteClique, k).budget(Budget::Auto {
        eps: 0.5,
        cap: None,
    });

    // Tasks are wire-format job specs: what a serving layer would
    // accept over HTTP and hand to a scheduler.
    let spec = serde_json::to_string(&task).expect("tasks serialize");
    println!("job spec: {spec}");
    let task: Task = serde_json::from_str(&spec).expect("round-trips");

    // --- the same task on all four substrates -------------------------
    let seq = task.run_seq(&points, &Euclidean)?;

    let stream = task.run_stream(points.iter().cloned(), &Euclidean)?;

    let parts = mapreduce::partition::split_random(points.clone(), 8, 7);
    let rt = mapreduce::MapReduceRuntime::with_threads(8);
    let mr = task.run_mapreduce(&parts, &Euclidean, &rt, Strategy::TwoRound)?;

    let mut engine = DynamicDiversity::new(Euclidean);
    for p in &points {
        engine.insert(p.clone());
    }
    let dynamic = task.run_dynamic(&engine)?;

    println!(
        "\n{:<12} {:>12} {:>8} {:>10} {:>10}",
        "backend", "value", "k'", "core-set", "time"
    );
    for report in [&seq, &stream, &mr, &dynamic] {
        println!(
            "{:<12} {:>12.4} {:>8} {:>10} {:>9.1}ms",
            format!("{:?}", report.backend),
            report.value,
            report.k_prime,
            report.coreset_size,
            report.total_secs() * 1e3
        );
    }

    // --- accuracy budgets carry certificates --------------------------
    // `Budget::Eps` sizes the kernel purely from the theory (Theorems
    // 4-5; constants are pessimistic, hence the small instance) and
    // attaches the (alpha + eps) guarantee to the report.
    let (small, _) = datasets::sphere_shell(2_000, k, 2, 99);
    let certified = Task::new(Problem::RemoteClique, k)
        .budget(Budget::Eps { eps: 1.0, dim: 2 })
        .run_seq(&small, &Euclidean)?;
    let cert = certified.certificate.expect("Eps budget certifies");
    println!(
        "\ncertified run: value {:.4} with k' = {} — on doubling-dimension <= 2 \
         inputs, value >= OPT / {:.1} (alpha = {}, eps = {})",
        certified.value, certified.k_prime, cert.factor, cert.alpha, cert.eps
    );

    // --- typed errors instead of panics -------------------------------
    // The low-level free functions panic on degenerate input (their
    // documented harness contract); the front door returns DivError.
    let empty: Vec<VecPoint> = Vec::new();
    match task.run_seq(&empty, &Euclidean) {
        Err(DivError::EmptyInput) => println!("\nempty input    -> DivError::EmptyInput"),
        other => unreachable!("{other:?}"),
    }
    match Task::new(Problem::RemoteClique, 5)
        .budget(Budget::KPrime(3))
        .run_seq(&points, &Euclidean)
    {
        Err(e @ DivError::BudgetTooSmall { .. }) => println!("k' = 3 < k = 5 -> {e}"),
        other => unreachable!("{other:?}"),
    }
    match Task::new(Problem::RemoteEdge, k).run_mapreduce(
        &parts,
        &Euclidean,
        &rt,
        Strategy::ThreeRound,
    ) {
        Err(e @ DivError::UnsupportedStrategy { .. }) => println!("3-round r-edge -> {e}"),
        other => unreachable!("{other:?}"),
    }
    Ok(())
}
