//! Streaming news diversification — the paper's motivating scenario of
//! presenting a *diverse* subset of documents to a user, at
//! Twitter-firehose rates (Section 7.1 compares the streaming kernel's
//! throughput against tweet rates).
//!
//! Articles are bag-of-words vectors under the angular cosine distance
//! (exactly the musiXmatch setup); one `Task::run_stream` call
//! summarizes the unbounded stream into a small core-set and selects
//! the final remote-clique panel, reporting per-stage timings.
//!
//! Run with: `cargo run --release --example news_stream`

use diversity::prelude::*;

fn main() -> Result<(), DivError> {
    let k = 10; // articles shown to the user
    let k_prime = 40; // streaming center budget

    // A synthetic day of news: 50,000 articles over a 5,000-word
    // vocabulary, Zipf word frequencies (see DESIGN.md §2 for why this
    // is a faithful stand-in for real bag-of-words corpora).
    let cfg = datasets::BagOfWordsConfig::default();
    let articles = datasets::musixmatch_like(50_000, 2024, &cfg);
    println!(
        "stream: {} articles, vocabulary {}",
        articles.len(),
        cfg.vocabulary
    );

    // Throughput of the raw streaming kernel alone (Figure 3's metric;
    // the zero-overhead low-level path).
    let t = diversity::streaming::throughput::measure(
        Problem::RemoteClique,
        CosineDistance,
        k,
        k_prime,
        &articles,
    );
    println!(
        "kernel throughput: {:.0} articles/s ({} articles in {:.2}s)",
        t.points_per_sec, t.points, t.seconds
    );

    // The actual pipeline: one pass builds the core-set, remote-clique
    // on the core-set picks the panel — one call, one report.
    let panel = Task::new(Problem::RemoteClique, k)
        .budget(Budget::KPrime(k_prime))
        .run_stream(articles.iter().cloned(), &CosineDistance)?;
    println!(
        "core-set: {} articles resident (of {} seen)",
        panel.coreset_size,
        articles.len(),
    );
    for stage in &panel.timings {
        println!("  stage {:<16} {:>8.1} ms", stage.stage, stage.secs * 1e3);
    }

    println!("\ndiverse panel (remote-clique value {:.3}):", panel.value);
    for (doc, pos) in panel.points.iter().zip(&panel.indices) {
        let top: Vec<u32> = doc.entries().iter().take(5).map(|&(w, _)| w).collect();
        println!(
            "  article #{:<6} {:>3} distinct words, top word-ids {:?}",
            pos,
            doc.nnz(),
            top
        );
    }

    // Pairwise angular distances of the panel: all far apart.
    let dm = DistanceMatrix::build(&panel.points, &CosineDistance);
    let pairs = panel.points.len() * (panel.points.len() - 1) / 2;
    let mean: f64 = (0..panel.points.len())
        .flat_map(|i| (0..i).map(move |j| (i, j)))
        .map(|(i, j)| dm.get(i, j))
        .sum::<f64>()
        / pairs as f64;
    println!(
        "\npanel min/mean pairwise angle: {:.3} / {:.3} rad",
        dm.min_pairwise(),
        mean
    );
    Ok(())
}
