//! Integration tests for the seeded JL projection stage
//! (`Task::run_projected`): determinism, original-space re-evaluation,
//! certificate widening, and the identity fallback.

use diversity::prelude::*;

/// A small high-dimensional instance where the projection actually
/// fires: `target_dim(k, eps)` must come out below `dim`.
fn high_dim_store() -> DenseStore {
    datasets::embedding_clusters_dense(120, 6, 128, 0.15, 42)
}

#[test]
fn projected_run_is_deterministic() {
    let task = Task::new(Problem::RemoteEdge, 4)
        .budget(Budget::KPrime(24))
        .project(0.5, 7);
    let store = high_dim_store();
    let a = task.run_projected(&store).unwrap();
    let b = task.run_projected(&store).unwrap();
    assert_eq!(a.indices, b.indices);
    assert_eq!(a.value.to_bits(), b.value.to_bits());
    assert_eq!(
        a.coreset_radius.map(f64::to_bits),
        b.coreset_radius.map(f64::to_bits)
    );

    // A different seed draws a different matrix; the run still
    // succeeds and returns k original-space points.
    let c = task
        .budget(Budget::KPrime(24))
        .project(0.5, 8)
        .run_projected(&store)
        .unwrap();
    assert_eq!(c.len(), 4);
}

#[test]
fn projection_actually_reduces_and_reports_original_space() {
    let store = high_dim_store();
    let task = Task::new(Problem::RemoteClique, 4)
        .budget(Budget::KPrime(24))
        .project(0.5, 7);
    // target_dim(4, 0.5) = ceil(8·ln4/0.25) = 45 < 128: the projection
    // fires.
    assert!(JlProjection::target_dim(4, 0.5) < store.dim());
    let report = task.run_projected(&store).unwrap();

    // The selected points are the ORIGINAL 128-dim points...
    assert_eq!(report.len(), 4);
    for (idx, p) in report.indices.iter().zip(&report.points) {
        assert_eq!(p.coords(), store.row(*idx));
    }
    // ...and the value is the objective of those original points.
    let rows = store.rows();
    let expected = eval::evaluate_subset(Problem::RemoteClique, &rows, &Euclidean, &report.indices);
    assert_eq!(report.value.to_bits(), expected.to_bits());
    // A "project" stage is recorded ahead of the pipeline stages.
    assert_eq!(report.timings[0].stage, "project");
    assert_eq!(report.timings.len(), 3);
}

#[test]
fn certificate_widens_and_still_certifies_ground_truth() {
    // Small enough for exact OPT, high-dimensional enough to project:
    // n=40, k=3, d=64.
    let store = datasets::embedding_clusters_dense(40, 5, 64, 0.1, 11);
    let eps = 0.5;
    let task = Task::new(Problem::RemoteEdge, 3)
        .budget(Budget::Eps { eps: 0.4, dim: 2 })
        .project(eps, 3);
    assert!(JlProjection::target_dim(3, eps) < store.dim());
    let report = task.run_projected(&store).unwrap();

    let cert = report.certificate.expect("Eps budget attaches one");
    let alpha = Problem::RemoteEdge.alpha();
    let unwidened = alpha + 0.4;
    let expected = JlProjection::widen_factor(unwidened, eps);
    assert!(
        (cert.factor - expected).abs() < 1e-12,
        "factor {} != widened {}",
        cert.factor,
        expected
    );
    assert!(cert.factor > unwidened, "projection must widen the factor");
    assert!((cert.alpha - alpha).abs() < 1e-12);
    assert!(
        (cert.alpha + cert.eps - cert.factor).abs() < 1e-12,
        "factor stays alpha + eps after widening"
    );

    // The widened certificate must hold against the exact optimum on
    // the UNPROJECTED points.
    let points = store.to_points();
    let opt = exact::divk_exact(Problem::RemoteEdge, &points, &Euclidean, 3).value;
    assert!(opt > 0.0);
    assert_eq!(
        report.certifies(opt),
        Some(true),
        "value {} × factor {} must cover OPT {}",
        report.value,
        cert.factor,
        opt
    );
}

#[test]
fn low_dim_input_takes_the_identity_fallback() {
    // d=3 with target_dim(4, 0.5) = 45 ≥ 3: no projection, no
    // widening — the report matches a plain run_seq bit for bit.
    let (store, _) = datasets::sphere_shell_dense(200, 4, 3, 9);
    let task = Task::new(Problem::RemoteEdge, 4)
        .budget(Budget::Eps { eps: 0.4, dim: 3 })
        .threads(1)
        .project(0.5, 7);
    let projected = task.run_projected(&store).unwrap();
    let rows = store.rows();
    let plain = task.run_seq(&rows, &Euclidean).unwrap();

    assert_eq!(projected.indices, plain.indices);
    assert_eq!(projected.value.to_bits(), plain.value.to_bits());
    assert_eq!(
        projected.coreset_radius.map(f64::to_bits),
        plain.coreset_radius.map(f64::to_bits),
        "identity fallback must not scale the radius"
    );
    let (pc, sc) = (projected.certificate.unwrap(), plain.certificate.unwrap());
    assert_eq!(pc.factor.to_bits(), sc.factor.to_bits(), "no widening");
}

#[test]
fn missing_or_invalid_spec_is_a_typed_error() {
    let store = high_dim_store();
    let bare = Task::new(Problem::RemoteEdge, 4).budget(Budget::KPrime(24));
    assert_eq!(
        bare.run_projected(&store).unwrap_err(),
        DivError::ProjectionMissing
    );
    let bad = bare.project(1.0, 7);
    assert!(matches!(
        bad.run_projected(&store).unwrap_err(),
        DivError::InvalidEps { .. }
    ));
    let empty = DenseStore::new(128);
    let ok = Task::new(Problem::RemoteEdge, 4)
        .budget(Budget::KPrime(24))
        .project(0.5, 7);
    assert_eq!(ok.run_projected(&empty).unwrap_err(), DivError::EmptyInput);
    let too_big = Task::new(Problem::RemoteEdge, 500)
        .budget(Budget::KPrime(600))
        .project(0.5, 7);
    assert!(matches!(
        too_big.run_projected(&store).unwrap_err(),
        DivError::InvalidK { .. }
    ));
}

#[test]
fn projection_spec_survives_both_wire_formats() {
    let task = Task::new(Problem::RemoteClique, 8)
        .budget(Budget::KPrime(32))
        .project(0.25, 99);
    let json = serde_json::to_string(&task).unwrap();
    assert_eq!(serde_json::from_str::<Task>(&json).unwrap(), task);
    let bytes = diversity::wire::to_bytes(&task);
    assert_eq!(diversity::wire::from_bytes::<Task>(&bytes).unwrap(), task);
    assert_eq!(
        task.projection_spec(),
        Some(Projection {
            eps: 0.25,
            seed: 99
        })
    );
}
