//! The Section 6 machinery end-to-end: 3-round MapReduce, 2-pass
//! streaming, and serde round-trips of the core-set types.

use diversity::mapreduce::{three_round, two_round, MapReduceRuntime};
use diversity::prelude::*;

fn rt() -> MapReduceRuntime {
    MapReduceRuntime::with_threads(4)
}

#[test]
fn three_round_matches_two_round_quality() {
    let k = 12;
    let (points, _) = datasets::sphere_shell(15_000, k, 3, 3);
    let parts = mapreduce::partition::split_random(points.clone(), 6, 13);
    for problem in [
        Problem::RemoteClique,
        Problem::RemoteStar,
        Problem::RemoteBipartition,
        Problem::RemoteTree,
    ] {
        let two = two_round::two_round(problem, &parts, &Euclidean, k, 2 * k, &rt());
        let three = three_round::three_round(problem, &parts, &Euclidean, k, 2 * k, &rt());
        // Both pipelines carry an independent α-approximation (the
        // multiset matching may legitimately pick replica pairs of the
        // two farthest kernels), so their values can differ by up to
        // ~α in either direction; the band reflects α + ε slack.
        let gap = two.solution.value / three.solution.value;
        let alpha = problem.alpha();
        assert!(
            (1.0 / (alpha * 1.2)..=alpha * 1.2).contains(&gap),
            "{problem}: 2-round {} vs 3-round {}",
            two.solution.value,
            three.solution.value
        );
        // Theorem 10's point: round-1 shuffle is k'-sized, not k·k'.
        assert!(
            three.stats.rounds[0].emitted_points < two.stats.rounds[0].emitted_points,
            "{problem}: generalized core-sets should shuffle less"
        );
    }
}

#[test]
fn two_pass_streaming_instantiation_is_valid() {
    let k = 10;
    let (points, _) = datasets::sphere_shell(10_000, k, 3, 7);
    let res = streaming::two_pass::two_pass(Problem::RemoteClique, Euclidean, k, 4 * k, || {
        points.iter().cloned()
    });
    assert_eq!(res.solution.points.len(), k);
    // Distinctness of the instantiated delegates.
    for i in 0..k {
        for j in 0..i {
            assert_ne!(
                res.solution.points[i], res.solution.points[j],
                "instantiation produced duplicate points"
            );
        }
    }
    // The promised radius covers the achieved one on a replayed stream.
    assert!(res.achieved_delta <= res.delta + 1e-9);
}

#[test]
fn gen_coreset_serde_roundtrip() {
    let pairs = vec![
        GenPair {
            index: 0,
            multiplicity: 3,
        },
        GenPair {
            index: 7,
            multiplicity: 1,
        },
        GenPair {
            index: 9,
            multiplicity: 2,
        },
    ];
    let gcs = GeneralizedCoreset::new(pairs);
    let json = serde_json::to_string(&gcs).expect("serialize");
    let back: GeneralizedCoreset = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(gcs, back);
    assert_eq!(back.expanded_size(), 6);
}

#[test]
fn solution_serde_roundtrip() {
    let sol = Solution {
        indices: vec![4, 8, 15, 16, 23, 42],
        value: 1.618,
    };
    let json = serde_json::to_string(&sol).expect("serialize");
    let back: Solution = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(sol, back);
}

#[test]
fn multiset_solve_respects_alpha_on_small_instances() {
    // gen-div(T̂) >= gen-div_k(T)/α, verified by brute force over
    // coherent k-sub-multisets on a tiny generalized core-set.
    use diversity::core::generalized::{gen_div, solve_multiset};
    let points: Vec<VecPoint> = [0.0, 2.0, 5.0, 9.0]
        .iter()
        .map(|&x| VecPoint::from([x]))
        .collect();
    let gcs = GeneralizedCoreset::new(vec![
        GenPair {
            index: 0,
            multiplicity: 2,
        },
        GenPair {
            index: 1,
            multiplicity: 1,
        },
        GenPair {
            index: 2,
            multiplicity: 2,
        },
        GenPair {
            index: 3,
            multiplicity: 1,
        },
    ]);
    let k = 3;
    for problem in [
        Problem::RemoteClique,
        Problem::RemoteStar,
        Problem::RemoteTree,
    ] {
        let got = solve_multiset(problem, &points, &Euclidean, &gcs, k);
        let got_val = gen_div(problem, &points, &Euclidean, &got);
        // Brute-force best coherent sub-multiset of expanded size k.
        let best = brute_force_gen_divk(problem, &points, &gcs, k);
        assert!(
            got_val >= best / problem.alpha() - 1e-9,
            "{problem}: {got_val} < {best}/{}",
            problem.alpha()
        );
    }
}

fn brute_force_gen_divk(
    problem: Problem,
    points: &[VecPoint],
    gcs: &GeneralizedCoreset,
    k: usize,
) -> f64 {
    use diversity::core::generalized::gen_div;
    let pairs = gcs.pairs();
    let mut best = f64::NEG_INFINITY;
    // Enumerate multiplicity vectors coherent with gcs summing to k.
    fn rec(
        pairs: &[GenPair],
        pos: usize,
        left: usize,
        current: &mut Vec<GenPair>,
        points: &[VecPoint],
        problem: Problem,
        best: &mut f64,
    ) {
        if pos == pairs.len() {
            if left == 0 {
                let cand = GeneralizedCoreset::new(current.clone());
                let v = gen_div(problem, points, &Euclidean, &cand);
                if v > *best {
                    *best = v;
                }
            }
            return;
        }
        let max_here = pairs[pos].multiplicity.min(left);
        for m in 0..=max_here {
            if m > 0 {
                current.push(GenPair {
                    index: pairs[pos].index,
                    multiplicity: m,
                });
            }
            rec(pairs, pos + 1, left - m, current, points, problem, best);
            if m > 0 {
                current.pop();
            }
        }
    }
    let mut current = Vec::new();
    rec(pairs, 0, k, &mut current, points, problem, &mut best);
    best
}
