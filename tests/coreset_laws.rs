//! Property tests for the composition laws of the `Coreset` artifact —
//! the algebra every substrate now speaks (Definition 2 and the
//! Lemma 3–4 telescope of the paper):
//!
//! * `merge` is associative, and commutative up to point order: the
//!   multiset of `(source, weight)` pairs, the radius (`max`), and the
//!   budget (`max`) are order-independent, and solving on either order
//!   stays within the sequential algorithm's `α` of the other (both
//!   orders hold the *same candidate set*);
//! * merged radii are the `max` the union law requires, and re-
//!   extraction (`shrink`/`deepen`) *adds* radii — verified against
//!   the ground truth `certifies` check, not just the bookkeeping;
//! * the sharded-dynamic backend's composed certificate is sound
//!   (every input point within the reported radius of the solve
//!   input) and its value stays within the documented factor of
//!   `run_seq` on the conformance problems.

use diversity::prelude::*;
use proptest::prelude::*;
use proptest::Strategy as _;

const K: usize = 4;
const K_PRIME: usize = 12;

fn arb_points() -> impl proptest::Strategy<Value = Vec<VecPoint>> {
    (40usize..120, 0u64..1000).prop_map(|(n, seed)| {
        (0..n)
            .map(|i| {
                let x = (((i as u64 * 37 + seed * 13) % 223) as f64) * 0.7;
                let y = (((i as u64 * 53 + seed * 7) % 211) as f64) * 1.3;
                VecPoint::from([x, y])
            })
            .collect()
    })
}

/// Extracts one artifact per round-robin shard, sources kept global.
fn shard_artifacts(problem: Problem, points: &[VecPoint], shards: usize) -> Vec<Coreset<VecPoint>> {
    let parts = mapreduce::partition::split_round_robin(points.to_vec(), shards);
    parts
        .parts
        .iter()
        .zip(&parts.global_indices)
        .filter(|(part, _)| !part.is_empty())
        .map(|(part, globals)| {
            pipeline::extract_coreset_artifact(problem, part, &Euclidean, K, K_PRIME)
                .map_sources(|local| globals[local as usize] as u64)
        })
        .collect()
}

/// Order-independent fingerprint of an artifact's contents.
fn fingerprint(cs: &Coreset<VecPoint>) -> Vec<(u64, usize)> {
    let mut pairs: Vec<(u64, usize)> = cs
        .sources()
        .iter()
        .copied()
        .zip(cs.weights().iter().copied())
        .collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `merge` is associative on the nose (same concatenation), and
    /// commutative up to point order.
    #[test]
    fn merge_is_associative_and_commutative(points in arb_points()) {
        let arts = shard_artifacts(Problem::RemoteClique, &points, 3);
        prop_assume!(arts.len() == 3);
        let [a, b, c] = <[Coreset<VecPoint>; 3]>::try_from(arts).unwrap();

        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.clone().merge(b.clone().merge(c.clone()));
        prop_assert_eq!(&left, &right, "associativity is exact");

        let ab = a.clone().merge(b.clone());
        let ba = b.merge(a);
        prop_assert_eq!(fingerprint(&ab), fingerprint(&ba));
        prop_assert_eq!(ab.radius(), ba.radius());
        prop_assert_eq!(ab.k_prime(), ba.k_prime());
        prop_assert_eq!(ab.total_weight(), ba.total_weight());
    }

    /// Solving on either merge order stays within the sequential
    /// algorithm's `α`: both orders present the same candidate set, so
    /// each value is in `[OPT_T/α, OPT_T]`.
    #[test]
    fn merge_is_commutative_up_to_objective_value(points in arb_points()) {
        for problem in [Problem::RemoteEdge, Problem::RemoteClique, Problem::RemoteTree] {
            let arts = shard_artifacts(problem, &points, 2);
            prop_assume!(arts.len() == 2);
            let (a, b) = (arts[0].clone(), arts[1].clone());
            let ab = pipeline::solve_coreset(problem, &a.clone().merge(b.clone()), &Euclidean, K);
            let ba = pipeline::solve_coreset(problem, &b.merge(a), &Euclidean, K);
            let alpha = problem.alpha();
            prop_assert!(
                ab.value * alpha >= ba.value - 1e-9 && ba.value * alpha >= ab.value - 1e-9,
                "{problem}: orders diverged beyond alpha: {} vs {}",
                ab.value,
                ba.value
            );
        }
    }

    /// The merged radius is the `max` the union law requires — and it
    /// is *sound*: the union certifies the whole input. A smaller
    /// radius than some constituent's would be unsound whenever that
    /// shard has a point at its full covering distance.
    #[test]
    fn merged_radius_is_the_lawful_max(points in arb_points()) {
        let arts = shard_artifacts(Problem::RemoteEdge, &points, 3);
        let expected = arts.iter().map(Coreset::radius).fold(0.0f64, f64::max);
        let merged = Coreset::merge_all(arts).unwrap();
        prop_assert_eq!(merged.radius(), expected);
        prop_assert!(merged.certifies(&points, &Euclidean, 1e-9),
            "union must cover the whole input within the max radius");
    }

    /// Re-extraction composes radii additively (`deepen`): the child's
    /// certificate is parent + own, and it still certifies the
    /// *original* input — the Lemma 3–4 telescope.
    #[test]
    fn reextraction_adds_radii(points in arb_points()) {
        let parent =
            pipeline::extract_coreset_artifact(Problem::RemoteEdge, &points, &Euclidean, K, 24);
        let child = pipeline::shrink_coreset(Problem::RemoteEdge, &parent, &Euclidean, K, 8, 1);
        // The bookkeeping: child radius ≥ parent radius (additivity
        // with a non-negative own term)...
        prop_assert!(child.radius() >= parent.radius());
        // ...and the ground truth: the composed certificate covers the
        // original points, not just the parent's.
        prop_assert!(child.certifies(&points, &Euclidean, 1e-9));
    }

    /// The sharded-dynamic backend: composed certificate sound, value
    /// within the documented factor of `run_seq`, on ≥ 3 problems.
    #[test]
    fn sharded_dynamic_tracks_run_seq(points in arb_points(), shards in 2usize..5) {
        let parts = mapreduce::partition::split_round_robin(points.clone(), shards);
        let rt = mapreduce::MapReduceRuntime::with_threads(2);
        for problem in [
            Problem::RemoteEdge,
            Problem::RemoteClique,
            Problem::RemoteStar,
            Problem::RemoteTree,
        ] {
            let task = Task::new(problem, K).budget(Budget::KPrime(K_PRIME));
            let seq = task.run_seq(&points, &Euclidean).unwrap();
            let sharded = task.run_sharded(&parts, &Euclidean, &rt).unwrap();
            prop_assert_eq!(sharded.len(), K);
            // Soundness of the composed radius: rebuild the union the
            // run solved on and certify against the full input.
            let merged = Coreset::merge_all(parts.parts.iter().filter(|p| !p.is_empty()).map(|part| {
                let mut engine = DynamicDiversity::new(Euclidean);
                for p in part {
                    engine.insert(p.clone());
                }
                engine.extract_coreset(problem, K, K_PRIME)
            }))
            .unwrap();
            prop_assert_eq!(Some(merged.radius()), sharded.coreset_radius);
            prop_assert!(merged.certifies(&points, &Euclidean, 1e-9),
                "{problem}: composed radius must cover the input");
            // Documented factor: within the sequential algorithm's α
            // (both pipelines run the same α-approximation, on coresets
            // whose quality the radius certificates bound).
            let floor = seq.value / problem.alpha() - 1e-9;
            prop_assert!(
                sharded.value >= floor,
                "{problem}: sharded {} below run_seq {} / alpha {}",
                sharded.value,
                seq.value,
                problem.alpha()
            );
        }
    }
}
