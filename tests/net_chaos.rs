//! Chaos at the wire layer: with a pinned seeded fault plan injecting
//! shard panics, slow locks, and transient failures underneath the
//! server, every client sees **typed wire responses** — degraded
//! answers and backpressure statuses — never a dropped connection or a
//! torn frame. `DIVMAX_FAULTS` (CI pins a seed) overrides the built-in
//! mix.

use diversity::prelude::*;
use diversity_faults as faults;
use diversity_net::{
    frame, NetClient, NetError, Opcode, ReadOutcome, Server, ServerConfig, Status,
};
use diversity_serve::{ShardHealth, ShardPool};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

/// The process-global fault plan is shared by every test in this
/// binary; serialize the tests that install one.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Injected panics are expected; keep them off stderr while still
/// printing genuine ones.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn install_chaos_plan() -> Arc<faults::FaultPlan> {
    if faults::install_from_env() {
        return faults::plan().expect("just installed from env");
    }
    let plan = Arc::new(faults::FaultPlan::from_spec(faults::FaultSpec {
        seed: 20170807,
        panic: 0.05,
        slow: 0.01,
        slow_ms: 1,
        corrupt: 0.0,
        drop: 0.0,
        transient: 0.05,
    }));
    faults::install(plan.clone());
    plan
}

fn seeded_server() -> Server<VecPoint, Euclidean> {
    let (points, _) = datasets::sphere_shell(300, 8, 4, 42);
    let pool = ShardPool::new(Euclidean, 4);
    pool.extend(points).expect("seed");
    Server::start(
        pool,
        ServerConfig {
            workers: 6,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind")
}

/// A quarantined shard surfaces as a **Degraded wire status** carrying
/// the full report and its `Degradation` block — not a connection
/// drop, not an error status.
#[test]
fn quarantined_shards_degrade_wire_answers_without_dropping_connections() {
    let _serial = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = seeded_server();
    let task = Task::new(Problem::RemoteEdge, 4).budget(Budget::KPrime(16));
    server.pool().quarantine(1);

    // Raw frame exchange, so the status *byte* itself is visible.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    frame::write_frame(&mut raw, Opcode::Query, &diversity::wire::to_bytes(&task))
        .expect("send query");
    let mut reader = frame::FrameReader::new(raw.try_clone().unwrap());
    let response = loop {
        match reader.poll_frame().expect("typed response, not a drop") {
            ReadOutcome::Frame(f) => break f,
            ReadOutcome::Idle => {}
            ReadOutcome::Closed => panic!("server dropped the connection"),
        }
    };
    assert_eq!(response.opcode, Opcode::Query);
    assert_eq!(
        response.payload[0],
        Status::Degraded as u8,
        "quarantine must surface as the Degraded status byte"
    );
    let report: Report<VecPoint> =
        diversity::wire::from_bytes(&response.payload[1..]).expect("degraded body is a Report");
    let degradation = report
        .degradation
        .as_ref()
        .expect("degradation block present");
    assert_eq!(degradation.skipped_shards, vec![1]);
    assert_eq!(degradation.shards_answered, 3);
    assert_eq!(degradation.shards_total, 4);
    assert_eq!(report.len(), 4);

    // Same connection, after recovery: back to full-fidelity Ok.
    server.pool().recover_all().expect("recovers");
    frame::write_frame(&mut raw, Opcode::Query, &diversity::wire::to_bytes(&task))
        .expect("send query");
    let response = loop {
        match reader.poll_frame().expect("typed response") {
            ReadOutcome::Frame(f) => break f,
            ReadOutcome::Idle => {}
            ReadOutcome::Closed => panic!("server dropped the connection"),
        }
    };
    assert_eq!(response.payload[0], Status::Ok as u8);

    let stats = server.shutdown_and_join();
    assert_eq!(stats.protocol_errors, 0);
}

/// Under an installed fault plan, concurrent wire traffic keeps every
/// failure typed: responses are success or `NetError::Server` statuses
/// — zero client-side protocol errors, zero server-side ones, and the
/// pool ends healthy after recovery.
#[test]
fn injected_faults_stay_typed_on_the_wire() {
    let _serial = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    let server = seeded_server();
    let addr = server.addr();
    let task = Task::new(Problem::RemoteEdge, 4).budget(Budget::KPrime(16));

    let plan = install_chaos_plan();
    let outcomes: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        (0..4u64)
            .map(|worker| {
                let task = task.clone();
                scope.spawn(move || {
                    let mut client = NetClient::<VecPoint>::connect(addr).expect("connect");
                    let (mut ok, mut typed, mut proto) = (0u64, 0u64, 0u64);
                    for i in 0..40u64 {
                        let roll = worker * 1000 + i;
                        let result = if roll % 3 == 0 {
                            let x = (roll % 97) as f64 * 0.3;
                            client
                                .insert(&VecPoint::new(vec![x, -x, 0.5, 1.0]))
                                .map(|_| ())
                        } else {
                            client.query(&task).map(|_| ())
                        };
                        match result {
                            Ok(()) => ok += 1,
                            Err(NetError::Server { status, .. }) => {
                                assert!(
                                    !status.is_success(),
                                    "error path must carry an error status"
                                );
                                typed += 1;
                            }
                            Err(NetError::Proto(e)) => {
                                proto += 1;
                                eprintln!("protocol failure under chaos: {e}");
                                // The stream may be torn; reconnect.
                                client = NetClient::<VecPoint>::connect(addr).expect("reconnect");
                            }
                        }
                    }
                    (ok, typed, proto)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let uninstalled = faults::uninstall().expect("plan was installed");
    assert!(Arc::ptr_eq(&plan, &uninstalled), "our plan was the driver");

    let (ok, typed, proto) = outcomes
        .iter()
        .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z));
    assert_eq!(ok + typed, 160, "every request got a wire answer");
    assert_eq!(proto, 0, "faults must never surface as protocol errors");
    assert!(ok > 0, "some requests must have succeeded");

    // After recovery, the pool is fully healthy and still serving.
    server.pool().recover_all().expect("recover_all");
    assert!(server
        .pool()
        .healths()
        .iter()
        .all(|h| *h == ShardHealth::Healthy));
    let mut client = NetClient::<VecPoint>::connect(addr).expect("connect");
    let report = client.query(&task).expect("post-chaos query");
    assert_eq!(report.len(), 4);
    assert!(report.degradation.is_none());

    let stats = server.shutdown_and_join();
    assert_eq!(
        stats.protocol_errors, 0,
        "server saw only well-formed frames"
    );
}
