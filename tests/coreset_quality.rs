//! Core-set quality guarantees, checked against exact optima where
//! affordable and against reference solutions at scale.

use diversity::prelude::*;

/// Definition 1 at small scale: div_k(T) >= div_k(S)/(1+ε) with the ε
/// implied by k'. We use generous k' (= n on the smallest inputs) and
/// verify exact equality, then moderate k' and verify a loose band.
#[test]
fn coreset_beta_bound_exact_small() {
    let (points, _) = datasets::sphere_shell(60, 4, 2, 11);
    for problem in Problem::ALL {
        let full = exact::divk_exact(problem, &points, &Euclidean, 4);
        // Lossless core-set: k' = n.
        let cs = pipeline::extract_coreset(problem, &points, &Euclidean, 4, points.len());
        let sub: Vec<VecPoint> = cs.iter().map(|&i| points[i].clone()).collect();
        let on_cs = exact::divk_exact(problem, &sub, &Euclidean, 4);
        assert!(
            (on_cs.value - full.value).abs() < 1e-9,
            "{problem}: lossless core-set must preserve div_k exactly"
        );
        // Moderate core-set: β must stay modest on doubling inputs.
        let cs = pipeline::extract_coreset(problem, &points, &Euclidean, 4, 16);
        let sub: Vec<VecPoint> = cs.iter().map(|&i| points[i].clone()).collect();
        let on_cs = exact::divk_exact(problem, &sub, &Euclidean, 4);
        let beta = full.value / on_cs.value;
        assert!(
            beta <= 1.6 + 1e-9,
            "{problem}: observed β = {beta} too large"
        );
    }
}

/// Definition 2 (composability) at small scale: the union of per-part
/// core-sets is a core-set for the union.
#[test]
fn composable_coreset_quality() {
    let (points, _) = datasets::sphere_shell(90, 3, 2, 13);
    let third = points.len() / 3;
    for problem in [
        Problem::RemoteEdge,
        Problem::RemoteClique,
        Problem::RemoteTree,
    ] {
        let full = exact::divk_exact(problem, &points, &Euclidean, 3);
        let mut union: Vec<VecPoint> = Vec::new();
        for chunk in points.chunks(third) {
            let cs = pipeline::extract_coreset(problem, chunk, &Euclidean, 3, 9);
            union.extend(cs.iter().map(|&i| chunk[i].clone()));
        }
        let on_union = exact::divk_exact(problem, &union, &Euclidean, 3);
        let beta = full.value / on_union.value;
        assert!(beta <= 1.5 + 1e-9, "{problem}: composable β = {beta}");
        assert!(
            on_union.value <= full.value + 1e-9,
            "{problem}: gained value?"
        );
    }
}

/// The theoretical kernel-size helper reflects Theorem 4/5 scaling and
/// stays usable for sane (ε, D).
#[test]
fn kernel_sizing_helper() {
    use diversity::core::coreset::theoretical_kernel_size;
    let k = 10;
    // ε=1, D=3: (8/ (1-1/2))^3 = 16^3 = 4096 per k for remote-edge.
    let size = theoretical_kernel_size(Problem::RemoteEdge, k, 1.0, 3);
    assert_eq!(size, 4096 * k);
    // Halving ε roughly 8×s the kernel in 3-d.
    let tighter = theoretical_kernel_size(Problem::RemoteEdge, k, 0.4, 3);
    assert!(tighter > 4 * size);
}

/// Empirically, tiny k' already achieves near-1 ratios on the
/// sphere-shell workload — the paper's headline practical finding
/// ("relatively small values of k', not much larger than k, already
/// yield very good approximations").
#[test]
fn small_k_prime_suffices_in_practice() {
    let k = 8;
    let (points, planted) = datasets::sphere_shell(30_000, k, 3, 19);
    let planted_value = eval::evaluate_subset(Problem::RemoteEdge, &points, &Euclidean, &planted);
    let sol = pipeline::coreset_then_solve(Problem::RemoteEdge, &points, &Euclidean, k, 2 * k);
    let ratio = planted_value / sol.value;
    assert!(ratio < 1.5, "k'=2k ratio {ratio}");
}

/// GMM-EXT's clusters partition the input and respect the radius
/// contract on a real workload (not just the unit tests' lines).
#[test]
fn gmm_ext_structure_on_sphere_shell() {
    use diversity::core::coreset::gmm_ext;
    let (points, _) = datasets::sphere_shell(5_000, 8, 3, 29);
    let out = gmm_ext(&points, &Euclidean, 8, 32);
    assert_eq!(out.kernel.len(), 32);
    assert!(out.coreset.len() <= 8 * 32);
    for (j, cluster) in out.clusters.iter().enumerate() {
        for &m in cluster {
            let d = Euclidean.distance(&points[m], &points[out.kernel[j]]);
            assert!(d <= out.radius + 1e-9);
        }
    }
}
