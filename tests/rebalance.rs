//! Laws of live shard rebalancing.
//!
//! * **Re-partition law** (proptest): for *any* placement of points
//!   across shards, a live [`ShardPool::rebalance`] answers
//!   bit-identically to a never-rebalanced pool restored from the same
//!   consistent cut re-partitioned offline ([`rebalance_state`]) — the
//!   paper's Definition 2 states core-set composability for arbitrary
//!   partitions, so re-splitting a quiesced cut changes placement and
//!   nothing else — and the merged radius certificate still certifies
//!   the alive ground truth.
//! * **Acceptance criteria**: a churn burst that drives `skew()` over
//!   the threshold triggers exactly one rebalance per
//!   `min_interval_ms`, post-swap skew is strictly lower, and
//!   pre-rebalance [`ShardedId`]s keep resolving (delete and lookup,
//!   through the remap table).
//! * **All-or-nothing**: an injected panic mid-swap
//!   (`faults::sites::REBALANCE`) leaves the old pool serving
//!   unchanged answers.
//! * **ID-space edges**: [`ShardedId::try_encode`] refuses handles the
//!   packed `u64` cannot represent (`raw >= 2^48`, `shard >= 2^16`)
//!   with the typed [`DivError::InvalidShards`] instead of silently
//!   corrupting the shard bits.
//! * **Restore validation**: a checkpoint whose router state was
//!   stamped over a different shard count than the state holds is
//!   rejected with [`DivError::CorruptState`], as is a remap entry
//!   pointing at a shard the pool does not have.

use diversity::prelude::*;
use diversity_faults as faults;
use diversity_serve::{rebalance_state, PoolState, RebalanceConfig, Serve, ShardPool, ShardedId};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, Once};

/// Tests that install a process-global fault plan are serialized.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Injected panics are expected; keep them off stderr.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn gen_point(i: u64) -> VecPoint {
    let mut z = i
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z ^= z >> 29;
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 32;
    VecPoint::from([(z % 1_000) as f64 * 0.2, ((z >> 32) % 1_000) as f64 * 0.3])
}

/// A pool with every point piled onto shard 0 — maximal skew for the
/// shard count.
fn skewed_pool(
    task: &Task,
    shards: usize,
    n: u64,
) -> (ShardPool<VecPoint, Euclidean>, Vec<ShardedId>) {
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, shards).expect("pool");
    let ids = (0..n)
        .map(|i| pool.insert_to(0, gen_point(i)).expect("seed"))
        .collect();
    (pool, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The re-partition law: live rebalance ≡ offline re-partition of
    /// the same cut, bitwise, and the certificate still certifies.
    #[test]
    fn live_rebalance_answers_bitwise_like_the_offline_repartition(
        placements in proptest::collection::vec(0usize..4, 12..60),
        problem_idx in 0usize..2,
    ) {
        let problem = [Problem::RemoteEdge, Problem::RemoteClique][problem_idx];
        let k = 3;
        let task = Task::new(problem, k).budget(Budget::KPrime(12));
        let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 4).expect("pool");
        for (i, &shard) in placements.iter().enumerate() {
            pool.insert_to(shard, gen_point(i as u64)).expect("seed");
        }

        // One consistent cut; the pool stays quiescent until the live
        // rebalance takes its own (identical) cut.
        let cut = pool.checkpoint_consistent().expect("cut");
        let (repartitioned, fresh) = rebalance_state(&Euclidean, &cut).expect("re-partition");
        prop_assert_eq!(fresh.len(), placements.len(), "every alive point is remapped");
        let twin = ShardPool::restore(Euclidean, repartitioned).expect("offline twin");

        let report = pool.rebalance().expect("live rebalance");
        prop_assert_eq!(report.ids_remapped, placements.len());

        // Bit-identical answers: same selection, same value, same
        // certificate — placement changed, the answer did not.
        let live = pool.query(&task).expect("live");
        let offline = twin.query(&task).expect("twin");
        prop_assert_eq!(&live.indices, &offline.indices);
        prop_assert_eq!(live.value.to_bits(), offline.value.to_bits());
        prop_assert_eq!(
            live.coreset_radius.map(f64::to_bits),
            offline.coreset_radius.map(f64::to_bits)
        );
        prop_assert!(live.degradation.is_none());

        // The merged certificate certifies the alive ground truth.
        let alive: Vec<VecPoint> = pool.alive().into_iter().map(|(_, p)| p).collect();
        prop_assert_eq!(alive.len(), placements.len());
        let k_prime = task.dynamic_k_prime(pool.config()).expect("budget");
        prop_assert!(pool.coreset(problem, k, k_prime).certifies(&alive, &Euclidean, 1e-9));

        // Occupancies are within one point of each other: skew as
        // close to 1.0 as the population allows.
        let occ = pool.occupancies();
        let (min, max) = (occ.iter().min().unwrap(), occ.iter().max().unwrap());
        prop_assert!(max - min <= 1, "greedy leaves occupancies within 1: {occ:?}");
    }
}

/// The ISSUE's acceptance criteria, end to end: threshold trigger,
/// exactly-once pacing, strictly lower skew, resolvable old handles.
#[test]
fn skew_trigger_paces_and_old_handles_keep_resolving() {
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let (pool, ids) = skewed_pool(&task, 4, 40);
    let before = pool.query(&task).expect("pre-rebalance answer");

    // A handle deleted *before* the cut must resolve to nothing after.
    let dead = ids[7];
    assert_eq!(pool.delete(dead), Ok(true));

    let config = RebalanceConfig {
        threshold: 1.5,
        min_interval_ms: 60_000,
    };
    assert!(
        pool.skew() >= config.threshold,
        "seeded skew {}",
        pool.skew()
    );

    // Exactly one rebalance fires.
    let report = pool
        .maybe_rebalance(&config)
        .expect("rebalance")
        .expect("threshold crossed");
    assert!(
        report.skew_after < report.skew_before,
        "skew must strictly drop: {} -> {}",
        report.skew_before,
        report.skew_after
    );
    assert_eq!(report.ids_remapped, 39, "every alive point was remapped");
    assert!(pool.skew() < config.threshold);
    assert_eq!(pool.rebalance_stats().rebalances, 1);

    // Re-skew the pool past the threshold again: the pacing gate (not
    // the threshold) must now hold the rebalancer back.
    for i in 100..160u64 {
        pool.insert_to(1, gen_point(i)).expect("re-skew");
    }
    assert!(pool.skew() >= config.threshold);
    assert_eq!(
        pool.maybe_rebalance(&config).expect("gated"),
        None,
        "inside min_interval_ms no second rebalance may fire"
    );
    assert_eq!(pool.rebalance_stats().rebalances, 1, "still exactly one");

    // Pre-rebalance handles resolve through the remap table: lookups
    // find the same points, deletes kill the points they named.
    for (i, &id) in ids.iter().enumerate() {
        if id == dead {
            assert_eq!(pool.point(id), None, "dead handles stay dead");
            assert_eq!(pool.delete(id), Ok(false));
            continue;
        }
        assert_eq!(
            pool.point(id),
            Some(gen_point(i as u64)),
            "old handle {id} resolves to its point"
        );
    }
    let len = pool.len();
    assert_eq!(pool.delete(ids[0]), Ok(true), "old handles delete");
    assert_eq!(pool.len(), len - 1);
    assert_eq!(pool.point(ids[0]), None);

    // The answer over the surviving original points is consistent with
    // the pre-rebalance pool: same certified problem over the same
    // ground truth minus the two deletions.
    let after = pool.query(&task).expect("post-rebalance answer");
    assert_eq!(after.backend, before.backend);
}

/// An injected panic mid-swap must leave the old pool fully intact:
/// same answers, same skew, same remap table — all-or-nothing.
#[test]
fn mid_swap_panic_leaves_the_old_pool_serving_unchanged_answers() {
    let _serial = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    let task = Task::new(Problem::RemoteClique, 3).budget(Budget::KPrime(12));
    let (pool, ids) = skewed_pool(&task, 4, 30);
    let before = pool.query(&task).expect("baseline");
    let skew_before = pool.skew();

    faults::install(Arc::new(faults::FaultPlan::from_spec(faults::FaultSpec {
        panic: 1.0,
        ..faults::FaultSpec::from_seed(20170807)
    })));
    let refused = pool.rebalance();
    faults::uninstall();
    assert!(
        matches!(
            &refused,
            Err(DivError::TransientFailure { site }) if site == faults::sites::REBALANCE
        ),
        "got {refused:?}"
    );

    // Nothing moved: answers, skew, stats, and handles are untouched.
    assert_eq!(pool.skew(), skew_before);
    assert_eq!(pool.rebalance_stats().rebalances, 0);
    let after = pool.query(&task).expect("still serving");
    assert_eq!(after.indices, before.indices);
    assert_eq!(after.value.to_bits(), before.value.to_bits());
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(pool.point(id), Some(gen_point(i as u64)));
    }

    // With the plan gone the same rebalance commits cleanly, and the
    // rebalanced pool answers bit-identically to the offline
    // re-partition of the same cut (the re-partition law — the
    // *value* may legitimately move within the certificate envelope,
    // since per-shard extraction depends on placement).
    let cut = pool.checkpoint_consistent().expect("cut");
    let (repartitioned, _) = rebalance_state(&Euclidean, &cut).expect("re-partition");
    let twin = ShardPool::restore(Euclidean, repartitioned).expect("twin");
    let report = pool.rebalance().expect("clean rebalance");
    assert!(report.skew_after < skew_before);
    let rebalanced = pool.query(&task).expect("rebalanced");
    let offline = twin.query(&task).expect("twin");
    assert_eq!(rebalanced.indices, offline.indices);
    assert_eq!(rebalanced.value.to_bits(), offline.value.to_bits());
}

/// Checkpoints taken after a rebalance carry the remap table: a
/// restored pool keeps resolving pre-rebalance handles, bit-identically
/// to the live pool.
#[test]
fn restored_pools_resolve_pre_rebalance_handles() {
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let (pool, ids) = skewed_pool(&task, 3, 24);
    pool.rebalance().expect("rebalance");

    let state = pool.checkpoint().expect("checkpoint");
    assert_eq!(state.remap.len(), 24, "the remap table is persisted");
    assert_eq!(state.router.shards, 3, "the shard count is stamped");

    // JSON and binary wire forms both carry it.
    let json = serde_json::to_string(&state).expect("serialize");
    let state: PoolState<VecPoint> = serde_json::from_str(&json).expect("parse");
    let restored = ShardPool::restore(Euclidean, state).expect("restore");
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(
            restored.point(id),
            Some(gen_point(i as u64)),
            "restored pool resolves old handle {id}"
        );
    }
    let live = pool.query(&task).expect("live");
    let replay = restored.query(&task).expect("restored");
    assert_eq!(replay.indices, live.indices);
    assert_eq!(replay.value.to_bits(), live.value.to_bits());
}

/// Satellite: the packed-`u64` boundary is typed, not corrupting.
#[test]
fn sharded_id_try_encode_refuses_unrepresentable_handles() {
    let id = |shard: usize, raw: u64| ShardedId {
        shard,
        id: diversity::dynamic::PointId::from_raw(raw),
    };
    // The exact boundary fits...
    assert_eq!(
        id(65_535, (1 << 48) - 1).try_encode(),
        Ok(((65_535u64) << 48) | ((1 << 48) - 1))
    );
    assert_eq!(id(0, 0).try_encode(), Ok(0));
    // ...one past it is refused with the typed error (the old unchecked
    // shift bled `raw` into the shard bits).
    assert_eq!(id(0, 1 << 48).try_encode(), Err(DivError::InvalidShards));
    assert_eq!(id(1 << 16, 0).try_encode(), Err(DivError::InvalidShards));
    assert_eq!(
        id(1 << 16, 1 << 48).try_encode(),
        Err(DivError::InvalidShards)
    );
    // Round trip at the boundary stays lossless.
    let edge = id(65_535, (1 << 48) - 1);
    assert_eq!(ShardedId::decode(edge.try_encode().unwrap()), edge);
}

/// Satellite: restore validates the router state's stamped shard count
/// and every remap target against the checkpoint it arrives in.
#[test]
fn restore_rejects_shard_count_and_remap_mismatches() {
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let (pool, _) = skewed_pool(&task, 4, 20);
    let good = pool.checkpoint().expect("checkpoint");

    // A router state stamped over a different shard count than the
    // checkpoint holds would mis-route every stable-id placement.
    let mut mismatched = good.clone();
    mismatched.router.shards = 3;
    let err = ShardPool::restore(Euclidean, mismatched).expect_err("count mismatch");
    match &err {
        DivError::CorruptState { reason } => {
            assert!(
                reason.contains("checkpointed over 3 shards") && reason.contains("holds 4"),
                "names both counts: {reason}"
            );
        }
        other => panic!("got {other}"),
    }

    // A remap entry pointing at a shard the pool does not have.
    let mut dangling = good.clone();
    dangling.remap.push(diversity_serve::RemapEntry {
        from: 3,
        to: (9u64 << 48) | 1,
    });
    let err = ShardPool::restore(Euclidean, dangling).expect_err("dangling remap");
    assert!(
        matches!(&err, DivError::CorruptState { reason } if reason.contains("shard 9")),
        "got {err}"
    );

    // The untouched state still restores.
    ShardPool::restore(Euclidean, good).expect("clean state restores");
}

/// `maybe_rebalance` is a no-op on balanced and empty pools — the skew
/// sentinel fix (`occupancy_skew(&[]) == 1.0`) keeps "empty" on the
/// same side of every threshold as "balanced".
#[test]
fn balanced_and_empty_pools_never_trigger() {
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let config = RebalanceConfig {
        threshold: 1.01,
        min_interval_ms: 0,
    };

    let empty: ShardPool<VecPoint, _> = task.serve(Euclidean, 4).expect("pool");
    assert_eq!(empty.maybe_rebalance(&config).expect("no-op"), None);

    let balanced: ShardPool<VecPoint, _> = task.serve(Euclidean, 4).expect("pool");
    for i in 0..40u64 {
        balanced
            .insert_to((i % 4) as usize, gen_point(i))
            .expect("seed");
    }
    assert_eq!(balanced.maybe_rebalance(&config).expect("no-op"), None);
    assert_eq!(balanced.rebalance_stats().rebalances, 0);
}
