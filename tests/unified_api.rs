//! Cross-backend conformance suite for the unified `Task` API: every
//! problem, through all four execution substrates, must produce
//! k-sized, finite, index-consistent `Report`s of the same shape — and
//! every degenerate input must come back as the matching typed
//! `DivError`, never a panic.

use diversity::prelude::*;

const K: usize = 4;
const K_PRIME: usize = 16;

/// A 2-d workload with enough spread for all six objectives.
fn dataset() -> Vec<VecPoint> {
    (0..240)
        .map(|i| {
            let x = ((i * 37) % 211) as f64;
            let y = ((i * 53) % 97) as f64;
            VecPoint::from([x, y])
        })
        .collect()
}

fn task(problem: Problem) -> Task {
    Task::new(problem, K).budget(Budget::KPrime(K_PRIME))
}

/// Shape checks shared by every backend's report.
fn assert_report_shape(report: &Report<VecPoint>, problem: Problem, backend: Backend) {
    assert_eq!(report.problem, problem, "{problem}");
    assert_eq!(report.backend, backend, "{problem}");
    assert_eq!(report.k, K);
    assert_eq!(report.k_prime, K_PRIME);
    assert_eq!(report.len(), K, "{problem}: k points selected");
    assert_eq!(report.points.len(), K, "{problem}: points align");
    assert!(report.value.is_finite(), "{problem}");
    assert!(report.value > 0.0, "{problem}");
    assert!(report.coreset_size >= K, "{problem}");
    assert!(!report.timings.is_empty(), "{problem}");
    assert!(report.total_secs() >= 0.0);
    assert!(
        report.certificate.is_none(),
        "KPrime budget: no certificate"
    );
    let mut unique = report.indices.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), K, "{problem}: duplicate indices");
}

/// Indices must recover the reported points from the source data.
fn assert_index_consistent(report: &Report<VecPoint>, source: &[VecPoint]) {
    for (&i, p) in report.indices.iter().zip(&report.points) {
        assert!(i < source.len(), "index {i} out of range");
        assert_eq!(&source[i], p, "index {i} does not recover the point");
    }
}

#[test]
fn all_problems_all_backends_one_report_shape() {
    let points = dataset();
    let parts = mapreduce::partition::split_round_robin(points.clone(), 6);
    let rt = mapreduce::MapReduceRuntime::with_threads(4);
    let mut engine = DynamicDiversity::new(Euclidean);
    for p in &points {
        engine.insert(p.clone());
    }

    for problem in Problem::ALL {
        let task = task(problem);

        let seq = task.run_seq(&points, &Euclidean).expect("seq");
        assert_report_shape(&seq, problem, Backend::Sequential);
        assert_index_consistent(&seq, &points);
        let direct = eval::evaluate_subset(problem, &points, &Euclidean, &seq.indices);
        assert!(
            (seq.value - direct).abs() < 1e-9,
            "{problem}: reported value must match re-evaluation"
        );

        let stream = task
            .run_stream(points.iter().cloned(), &Euclidean)
            .expect("stream");
        assert_report_shape(&stream, problem, Backend::Streaming);
        assert_index_consistent(&stream, &points); // arrival order == slice order

        let mr = task
            .run_mapreduce(&parts, &Euclidean, &rt, Strategy::TwoRound)
            .expect("mapreduce");
        assert_report_shape(&mr, problem, Backend::MapReduce);
        assert_index_consistent(&mr, &points);

        let dynamic = task.run_dynamic(&engine).expect("dynamic");
        assert_report_shape(&dynamic, problem, Backend::Dynamic);
        assert_index_consistent(&dynamic, &points); // insert-only: ids == positions

        let sharded = task.run_sharded(&parts, &Euclidean, &rt).expect("sharded");
        assert_report_shape(&sharded, problem, Backend::ShardedDynamic);
        assert_index_consistent(&sharded, &points);
        assert!(
            sharded.coreset_radius.expect("composed certificate") >= 0.0,
            "{problem}"
        );
    }
}

/// The fifth backend honours the same error contract as the others.
#[test]
fn sharded_error_paths_match_mapreduce() {
    let rt = mapreduce::MapReduceRuntime::with_threads(2);
    let empty = mapreduce::partition::split_round_robin(Vec::<VecPoint>::new(), 3);
    assert_eq!(
        task(Problem::RemoteEdge).run_sharded(&empty, &Euclidean, &rt),
        Err(DivError::EmptyInput)
    );

    let parts = mapreduce::partition::split_round_robin(dataset(), 4);
    let err = Task::new(Problem::RemoteEdge, 1000)
        .budget(Budget::KPrime(1000))
        .run_sharded(&parts, &Euclidean, &rt)
        .unwrap_err();
    assert_eq!(
        err,
        DivError::InvalidK {
            k: 1000,
            n: Some(240)
        }
    );

    let malformed = mapreduce::Partitions {
        parts: vec![dataset()],
        global_indices: vec![],
    };
    assert!(matches!(
        task(Problem::RemoteEdge).run_sharded(&malformed, &Euclidean, &rt),
        Err(DivError::MalformedPartitions { .. })
    ));
}

#[test]
fn delegate_saving_strategies_cover_injective_problems() {
    let points = dataset();
    let parts = mapreduce::partition::split_round_robin(points.clone(), 6);
    let rt = mapreduce::MapReduceRuntime::with_threads(4);
    for problem in Problem::ALL
        .into_iter()
        .filter(|p| p.needs_injective_proxy())
    {
        for strategy in [
            Strategy::ThreeRound,
            Strategy::Randomized { seed: 17 },
            Strategy::Recursive { memory_limit: 60 },
        ] {
            let report = task(problem)
                .run_mapreduce(&parts, &Euclidean, &rt, strategy)
                .unwrap_or_else(|e| panic!("{problem} {strategy:?}: {e}"));
            assert_report_shape(&report, problem, Backend::MapReduce);
            assert_index_consistent(&report, &points);
        }
    }
}

#[test]
fn sequential_task_agrees_with_low_level_pipeline() {
    let points = dataset();
    for problem in Problem::ALL {
        let report = task(problem).run_seq(&points, &Euclidean).unwrap();
        let direct = pipeline::coreset_then_solve(problem, &points, &Euclidean, K, K_PRIME);
        assert_eq!(report.indices, direct.indices, "{problem}");
        assert_eq!(report.value, direct.value, "{problem}");
    }
}

// ---- error paths: one test per DivError variant ----------------------

#[test]
fn empty_input_is_typed_everywhere() {
    let t = task(Problem::RemoteEdge);
    assert_eq!(
        t.run_seq(&[] as &[VecPoint], &Euclidean),
        Err(DivError::EmptyInput)
    );

    let empty_parts = mapreduce::partition::split_round_robin(Vec::<VecPoint>::new(), 3);
    let rt = mapreduce::MapReduceRuntime::with_threads(2);
    assert_eq!(
        t.run_mapreduce(&empty_parts, &Euclidean, &rt, Strategy::TwoRound),
        Err(DivError::EmptyInput)
    );

    let engine: DynamicDiversity<VecPoint, Euclidean> = DynamicDiversity::new(Euclidean);
    assert_eq!(t.run_dynamic(&engine), Err(DivError::EmptyInput));
}

/// Regression for the legacy `one_pass` bug: emptiness used to be an
/// `assert!` *after* the whole stream had been consumed. The task API
/// must detect it on the first poll and return a typed error — no
/// panic, early or late.
#[test]
fn empty_stream_is_an_upfront_typed_error_not_a_late_panic() {
    struct CountingEmpty<'a>(&'a mut usize);
    impl Iterator for CountingEmpty<'_> {
        type Item = VecPoint;
        fn next(&mut self) -> Option<VecPoint> {
            *self.0 += 1;
            None
        }
    }

    let mut polls = 0;
    let result = task(Problem::RemoteClique).run_stream(CountingEmpty(&mut polls), &Euclidean);
    assert_eq!(result, Err(DivError::EmptyStream));
    assert_eq!(polls, 1, "emptiness must be detected on the first poll");
}

#[test]
fn invalid_k_is_typed() {
    let points = dataset();
    let n = points.len();

    // k == 0, known n.
    let err = Task::new(Problem::RemoteEdge, 0)
        .run_seq(&points, &Euclidean)
        .unwrap_err();
    assert_eq!(err, DivError::InvalidK { k: 0, n: Some(n) });

    // k > n: strict, instead of the low-level layer's silent min(k, n).
    let err = Task::new(Problem::RemoteEdge, n + 1)
        .budget(Budget::KPrime(n + 1))
        .run_seq(&points, &Euclidean)
        .unwrap_err();
    assert_eq!(
        err,
        DivError::InvalidK {
            k: n + 1,
            n: Some(n)
        }
    );

    // k == 0 on a stream: n unknowable upfront.
    let err = Task::new(Problem::RemoteEdge, 0)
        .run_stream(points.iter().cloned(), &Euclidean)
        .unwrap_err();
    assert_eq!(err, DivError::InvalidK { k: 0, n: None });

    // Stream shorter than k: the observed length is reported.
    let err = Task::new(Problem::RemoteEdge, 5)
        .budget(Budget::KPrime(8))
        .run_stream(points.iter().take(3).cloned(), &Euclidean)
        .unwrap_err();
    assert_eq!(err, DivError::InvalidK { k: 5, n: Some(3) });
}

#[test]
fn budget_too_small_is_typed() {
    let points = dataset();
    let err = Task::new(Problem::RemoteEdge, 4)
        .budget(Budget::KPrime(3))
        .run_seq(&points, &Euclidean)
        .unwrap_err();
    assert_eq!(err, DivError::BudgetTooSmall { k_prime: 3, k: 4 });

    // The Auto cap path: the legacy suggest_kernel_size silently clamps
    // a cap below k; Budget::Auto surfaces it instead.
    let err = Task::new(Problem::RemoteEdge, 4)
        .budget(Budget::Auto {
            eps: 0.5,
            cap: Some(1),
        })
        .run_stream(points.iter().cloned(), &Euclidean)
        .unwrap_err();
    assert_eq!(err, DivError::BudgetTooSmall { k_prime: 1, k: 4 });
}

#[test]
fn invalid_eps_is_typed() {
    let points = dataset();
    for eps in [0.0, -1.0, 1.5] {
        let err = task(Problem::RemoteEdge)
            .budget(Budget::Eps { eps, dim: 2 })
            .run_seq(&points, &Euclidean)
            .unwrap_err();
        assert_eq!(err, DivError::InvalidEps { eps });

        let err = task(Problem::RemoteEdge)
            .budget(Budget::Auto { eps, cap: None })
            .run_seq(&points, &Euclidean)
            .unwrap_err();
        assert_eq!(err, DivError::InvalidEps { eps });
    }
}

#[test]
fn unsupported_strategy_is_typed() {
    let points = dataset();
    let parts = mapreduce::partition::split_round_robin(points, 4);
    let rt = mapreduce::MapReduceRuntime::with_threads(2);
    for problem in [Problem::RemoteEdge, Problem::RemoteCycle] {
        for strategy in [Strategy::ThreeRound, Strategy::Randomized { seed: 1 }] {
            let err = task(problem)
                .run_mapreduce(&parts, &Euclidean, &rt, strategy)
                .unwrap_err();
            assert_eq!(err, DivError::UnsupportedStrategy { problem, strategy });
        }
    }
}

#[test]
fn zero_memory_limit_is_typed() {
    let points = dataset();
    let parts = mapreduce::partition::split_round_robin(points, 4);
    let rt = mapreduce::MapReduceRuntime::with_threads(2);
    let err = task(Problem::RemoteEdge)
        .run_mapreduce(
            &parts,
            &Euclidean,
            &rt,
            Strategy::Recursive { memory_limit: 0 },
        )
        .unwrap_err();
    assert_eq!(err, DivError::InvalidMemoryLimit);
}

#[test]
fn malformed_partitions_are_typed() {
    let rt = mapreduce::MapReduceRuntime::with_threads(2);
    let t = task(Problem::RemoteEdge);
    let two = |xs: &[f64]| -> Vec<VecPoint> { xs.iter().map(|&x| VecPoint::from([x])).collect() };

    // Row-count mismatch.
    let parts = mapreduce::Partitions {
        parts: vec![two(&[0.0, 1.0])],
        global_indices: vec![],
    };
    assert!(matches!(
        t.run_mapreduce(&parts, &Euclidean, &rt, Strategy::TwoRound),
        Err(DivError::MalformedPartitions { .. })
    ));

    // Global index out of range.
    let parts = mapreduce::Partitions {
        parts: vec![two(&[0.0, 1.0])],
        global_indices: vec![vec![0, 7]],
    };
    assert!(matches!(
        t.run_mapreduce(&parts, &Euclidean, &rt, Strategy::TwoRound),
        Err(DivError::MalformedPartitions { .. })
    ));

    // Duplicate global index.
    let parts = mapreduce::Partitions {
        parts: vec![two(&[0.0, 1.0]), two(&[2.0, 3.0])],
        global_indices: vec![vec![0, 1], vec![1, 2]],
    };
    assert!(matches!(
        t.run_mapreduce(&parts, &Euclidean, &rt, Strategy::TwoRound),
        Err(DivError::MalformedPartitions { .. })
    ));
}

#[test]
fn eps_budget_certificate_is_sound_on_a_line() {
    // On a 1-d instance small enough to brute-force, the reported value
    // must clear OPT / (alpha + eps) — the certificate's promise.
    let points: Vec<VecPoint> = (0..20).map(|i| VecPoint::from([i as f64])).collect();
    let report = Task::new(Problem::RemoteEdge, 3)
        .budget(Budget::Eps { eps: 1.0, dim: 1 })
        .run_seq(&points, &Euclidean)
        .unwrap();
    let cert = report.certificate.expect("certificate present");
    let opt = exact::divk_exact(Problem::RemoteEdge, &points, &Euclidean, 3);
    assert!(
        report.value >= opt.value / cert.factor - 1e-9,
        "value {} below OPT {} / factor {}",
        report.value,
        opt.value,
        cert.factor
    );
}
