//! Serde round-trip property tests for the wire-format types of the
//! unified API: a serving layer will ship `Task`/`Budget` job specs and
//! `Report` results over the wire, so every value must survive
//! serialize → deserialize bit-for-bit.

use diversity::dynamic::EngineState;
use diversity::prelude::*;
use diversity::Strategy; // disambiguate from proptest's Strategy trait
use proptest::prelude::*;
use proptest::Strategy as _; // ...while keeping the trait's methods in scope

fn arb_problem() -> impl proptest::Strategy<Value = Problem> {
    (0usize..Problem::ALL.len()).prop_map(|i| Problem::ALL[i])
}

fn arb_budget() -> impl proptest::Strategy<Value = Budget> {
    (0u8..3, 0.001f64..1.0, 1usize..10_000, 0u32..8, 0u8..2).prop_map(
        |(variant, eps, size, dim, cap_some)| match variant {
            0 => Budget::Auto {
                eps,
                cap: (cap_some == 1).then_some(size),
            },
            1 => Budget::KPrime(size),
            _ => Budget::Eps { eps, dim },
        },
    )
}

fn arb_strategy() -> impl proptest::Strategy<Value = Strategy> {
    (0u8..5, 0u64..u64::MAX, 1usize..100_000).prop_map(|(variant, seed, limit)| match variant {
        0 => Strategy::TwoRound,
        1 => Strategy::ThreeRound,
        2 => Strategy::Randomized { seed },
        3 => Strategy::ShardedDynamic,
        _ => Strategy::Recursive {
            memory_limit: limit,
        },
    })
}

fn arb_coreset() -> impl proptest::Strategy<Value = Coreset<VecPoint>> {
    (1usize..20, 0u64..1000, 1usize..64, 0.0f64..100.0).prop_map(|(n, seed, k_prime, radius)| {
        let points: Vec<VecPoint> = (0..n)
            .map(|i| {
                let x = (((i as u64 * 31 + seed) % 97) as f64) * 0.5;
                VecPoint::from([x, (i as f64) * 0.25])
            })
            .collect();
        let sources: Vec<u64> = (0..n as u64).map(|i| i * 3 + seed % 7).collect();
        let weights: Vec<usize> = (0..n).map(|i| 1 + (i + seed as usize) % 4).collect();
        Coreset::new(points, sources, weights, k_prime, radius)
    })
}

fn arb_task() -> impl proptest::Strategy<Value = Task> {
    (
        arb_problem(),
        1usize..1000,
        arb_budget(),
        0usize..9,
        (0u8..2, 0.01f64..0.99, 0u64..1000),
    )
        .prop_map(|(problem, k, budget, threads, (project, eps, seed))| {
            let task = Task::new(problem, k).budget(budget).threads(threads);
            if project == 1 {
                task.project(eps, seed)
            } else {
                task
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn budget_roundtrips(budget in arb_budget()) {
        let json = serde_json::to_string(&budget).unwrap();
        let back: Budget = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(budget, back);
    }

    #[test]
    fn strategy_roundtrips(strategy in arb_strategy()) {
        let json = serde_json::to_string(&strategy).unwrap();
        let back: Strategy = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(strategy, back);
    }

    /// The `Coreset` artifact is a wire type too — shards will ship it
    /// to the combiner in a distributed deployment.
    #[test]
    fn coreset_roundtrips(coreset in arb_coreset()) {
        let json = serde_json::to_string(&coreset).unwrap();
        let back: Coreset<VecPoint> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(coreset, back);
    }

    #[test]
    fn task_roundtrips(task in arb_task()) {
        let json = serde_json::to_string(&task).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(task, back);
    }

    /// An executed report — the full result shape, generic payload
    /// included — survives the wire.
    #[test]
    fn executed_report_roundtrips(
        seed in 0u64..1000,
        k in 2usize..6,
        problem in arb_problem(),
    ) {
        let points: Vec<VecPoint> = (0..80)
            .map(|i| {
                let x = (((i * 37 + seed as usize) % 113) as f64) * 0.75;
                let y = ((i * 53 % 71) as f64) * 1.25;
                VecPoint::from([x, y])
            })
            .collect();
        let report = Task::new(problem, k)
            .budget(Budget::KPrime(4 * k))
            .run_seq(&points, &Euclidean)
            .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: Report<VecPoint> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(report, back);
    }
}

/// The wire format itself is part of the contract: a serving layer's
/// clients will construct these by hand.
#[test]
fn wire_format_is_stable() {
    let task = Task::new(Problem::RemoteClique, 8)
        .budget(Budget::Eps { eps: 0.5, dim: 3 })
        .threads(4);
    assert_eq!(
        serde_json::to_string(&task).unwrap(),
        r#"{"problem":"RemoteClique","k":8,"budget":{"Eps":{"eps":0.5,"dim":3}},"threads":4,"projection":null}"#
    );

    let task = Task::new(Problem::RemoteEdge, 2);
    assert_eq!(
        serde_json::to_string(&task).unwrap(),
        r#"{"problem":"RemoteEdge","k":2,"budget":{"Auto":{"eps":0.5,"cap":null}},"threads":null,"projection":null}"#
    );

    let task = Task::new(Problem::RemoteEdge, 2).project(0.25, 7);
    assert_eq!(
        serde_json::to_string(&task).unwrap(),
        r#"{"problem":"RemoteEdge","k":2,"budget":{"Auto":{"eps":0.5,"cap":null}},"threads":null,"projection":{"eps":0.25,"seed":7}}"#
    );

    let spec: Task = serde_json::from_str(
        r#"{"problem":"RemoteTree","k":5,"budget":{"KPrime":40},"threads":null,"projection":null}"#,
    )
    .unwrap();
    assert_eq!(spec.problem(), Problem::RemoteTree);
    assert_eq!(spec.k(), 5);
    assert_eq!(spec.budget_spec(), Budget::KPrime(40));
    assert_eq!(spec.thread_cap(), None);
    assert_eq!(spec.projection_spec(), None);

    assert_eq!(
        serde_json::to_string(&Strategy::TwoRound).unwrap(),
        r#""TwoRound""#
    );
    assert_eq!(
        serde_json::to_string(&Strategy::Randomized { seed: 7 }).unwrap(),
        r#"{"Randomized":{"seed":7}}"#
    );
    assert_eq!(
        serde_json::to_string(&Strategy::ShardedDynamic).unwrap(),
        r#""ShardedDynamic""#
    );
}

/// The `Coreset` wire format is pinned the same way: shards and the
/// combiner may run different builds, so the field layout is contract.
#[test]
fn coreset_wire_format_is_stable() {
    let coreset = Coreset::new(
        vec![VecPoint::from([1.0, 2.0]), VecPoint::from([3.5, -1.0])],
        vec![10, 42],
        vec![1, 3],
        8,
        0.75,
    );
    assert_eq!(
        serde_json::to_string(&coreset).unwrap(),
        r#"{"points":[{"coords":[1,2]},{"coords":[3.5,-1]}],"sources":[10,42],"weights":[1,3],"k_prime":8,"radius":0.75}"#
    );
    let back: Coreset<VecPoint> = serde_json::from_str(
        r#"{"points":[{"coords":[0.0]}],"sources":[7],"weights":[2],"k_prime":4,"radius":1.5}"#,
    )
    .unwrap();
    assert_eq!(back.len(), 1);
    assert_eq!(back.sources(), &[7]);
    assert_eq!(back.weights(), &[2]);
    assert_eq!(back.k_prime(), 4);
    assert_eq!(back.radius(), 1.5);
}

/// The observability [`Snapshot`](obs::Snapshot) is shipped inside
/// `Report::telemetry` and dumped as `DIVMAX_OBS` JSONL, so its field
/// layout is contract for dashboards and the `divmax-stats` reader —
/// pinned alongside the other wire types.
#[test]
fn obs_snapshot_wire_format_is_stable() {
    use diversity::obs;
    use obs::Recorder;

    let reg = obs::Registry::new();
    reg.count("gmm.rounds", 12);
    reg.gauge_set("serve.pool0.shard0.occupancy", 34);
    reg.observe("serve.query.e2e_ns", 1);
    reg.observe("serve.query.e2e_ns", 16);
    let snap = reg.snapshot_now();
    assert_eq!(
        serde_json::to_string(&snap).unwrap(),
        concat!(
            r#"{"counters":[{"name":"gmm.rounds","value":12}],"#,
            r#""gauges":[{"name":"serve.pool0.shard0.occupancy","value":34}],"#,
            r#""histograms":[{"name":"serve.query.e2e_ns","hist":"#,
            r#"{"count":2,"sum":17,"min":1,"max":16,"buckets":"#,
            r#"[{"index":1,"low":1,"count":1},{"index":16,"low":16,"count":1}]}}]}"#
        )
    );

    // A hand-built payload deserializes (clients construct these).
    let back: obs::Snapshot = serde_json::from_str(
        r#"{"counters":[{"name":"x","value":3}],"gauges":[],"histograms":[]}"#,
    )
    .unwrap();
    assert_eq!(back.counter("x"), Some(3));
    assert!(back.histograms.is_empty());
}

/// The dynamic engine's checkpoint is a wire type too: a serving pool
/// snapshots its shard engines with it (`diversity-serve`'s
/// `PoolState` is a vector of these), so the field layout is contract
/// — pinned here alongside the `Task`/`Coreset` pins.
#[test]
fn engine_state_wire_format_is_stable() {
    let mut e = DynamicDiversity::new(Euclidean);
    e.insert(VecPoint::from([0.0, 0.0]));
    e.insert(VecPoint::from([6.0, 0.0]));
    e.insert(VecPoint::from([6.5, 0.0]));
    let id = e.insert(VecPoint::from([0.25, 0.0]));
    e.delete(id); // `next_id` must record the dead id as spent
    assert_eq!(
        serde_json::to_string(&e.state()).unwrap(),
        r#"{"nodes":[{"id":0,"point":{"coords":[0,0]},"level":3,"parent":null,"children":[1],"bucketed":false},{"id":1,"point":{"coords":[6,0]},"level":2,"parent":0,"children":[2],"bucketed":false},{"id":2,"point":{"coords":[6.5,0]},"level":-2,"parent":1,"children":[],"bucketed":false}],"root":0,"top_level":3,"next_id":4,"epsilon":1,"dim":2,"max_depth":48}"#
    );

    // Hand-assembled states deserialize (clients may construct them),
    // and an empty engine's state is the natural fixpoint.
    let empty: EngineState<VecPoint> = serde_json::from_str(
        r#"{"nodes":[],"root":null,"top_level":0,"next_id":0,"epsilon":1,"dim":2,"max_depth":48}"#,
    )
    .unwrap();
    assert!(empty.is_empty());
    let resumed: DynamicDiversity<VecPoint, _> =
        DynamicDiversity::resume(Euclidean, empty).expect("empty state resumes");
    assert!(resumed.is_empty());
}

/// A structurally corrupt checkpoint must fail with a typed error at
/// resume — not panic, and never answer queries from a broken
/// hierarchy.
#[test]
fn corrupt_engine_state_is_rejected_at_resume() {
    let state: EngineState<VecPoint> = serde_json::from_str(
        r#"{"nodes":[{"id":0,"point":{"coords":[0]},"level":1,"parent":null,"children":[],"bucketed":false},{"id":1,"point":{"coords":[5]},"level":0,"parent":9,"children":[],"bucketed":false}],"root":0,"top_level":1,"next_id":2,"epsilon":1,"dim":2,"max_depth":48}"#,
    )
    .unwrap();
    let err = match DynamicDiversity::resume(Euclidean, state) {
        Err(err) => err,
        Ok(_) => panic!("a dangling parent must not resume"),
    };
    assert!(
        err.reason.contains("dangling parent"),
        "reason names the defect: {}",
        err.reason
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved update → checkpoint → resume → update equals the
    /// uninterrupted run: same final structure (the `EngineState`s are
    /// equal), same answers — the dynamic counterpart of the streaming
    /// checkpoint losslessness tests.
    #[test]
    fn engine_checkpoint_mid_churn_is_lossless(
        script in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0u32..4), 12..60),
        cut in 0usize..60,
    ) {
        let cut = cut % script.len().max(1);
        let apply = |engine: &mut DynamicDiversity<VecPoint, Euclidean>,
                     alive: &mut Vec<PointId>,
                     (x, y, sel): (f64, f64, u32)| {
            if sel == 0 && alive.len() > 4 {
                let victim = alive.remove((x as usize) % alive.len());
                prop_assert!(engine.delete(victim));
            } else {
                alive.push(engine.insert(VecPoint::from([x, y])));
            }
            Ok(())
        };

        // Uninterrupted run.
        let mut direct = DynamicDiversity::new(Euclidean);
        let mut direct_alive = Vec::new();
        for &op in &script {
            apply(&mut direct, &mut direct_alive, op)?;
        }

        // Interrupted at `cut`: serialize, ship, resume, continue.
        let mut engine = DynamicDiversity::new(Euclidean);
        let mut alive = Vec::new();
        for &op in &script[..cut] {
            apply(&mut engine, &mut alive, op)?;
        }
        let json = serde_json::to_string(&engine.state()).unwrap();
        let state: EngineState<VecPoint> = serde_json::from_str(&json).unwrap();
        let mut engine =
            DynamicDiversity::resume(Euclidean, state).expect("own checkpoint resumes");
        for &op in &script[cut..] {
            apply(&mut engine, &mut alive, op)?;
        }

        prop_assert_eq!(engine.state(), direct.state());
        if !engine.is_empty() {
            engine.validate();
            let k = 3.min(engine.len());
            let a = engine.solve_with_budget(Problem::RemoteEdge, k, k.max(8));
            let b = direct.solve_with_budget(Problem::RemoteEdge, k, k.max(8));
            prop_assert_eq!(a.ids, b.ids);
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }
}

#[test]
fn malformed_specs_are_rejected() {
    for bad in [
        r#"{"problem":"RemoteEdge","k":2,"budget":{"Nope":3},"threads":null}"#,
        r#"{"problem":"NotAProblem","k":2,"budget":{"KPrime":4},"threads":null}"#,
        r#"{"k":2}"#,
        "",
    ] {
        assert!(
            serde_json::from_str::<Task>(bad).is_err(),
            "accepted malformed spec: {bad}"
        );
    }
    assert!(serde_json::from_str::<Strategy>(r#""FourRound""#).is_err());
}
