//! Integration of the serving layer with the `Task` front door: the
//! warm path (`Task::serve` → `ShardPool::query`) must agree with the
//! cold path (`Task::run_sharded`) on identical shard contents, handle
//! drained shards as empty core-sets (not errors), and checkpoint the
//! whole pool losslessly over the wire.

use diversity::mapreduce::{partition::split_round_robin, Partitions};
use diversity::prelude::*;
use diversity_serve::{PoolState, Serve, ShardPool, ShardedId};

fn points(n: usize) -> Vec<VecPoint> {
    (0..n)
        .map(|i| VecPoint::from([((i * 37) % 211) as f64 * 0.7, ((i * 53) % 223) as f64 * 1.1]))
        .collect()
}

/// Quiescent warm answers equal the cold `run_sharded` on the same
/// shard layout: same value (bitwise), same selected points — only the
/// provenance space differs (pool `ShardedId`s vs original positions).
#[test]
fn warm_pool_matches_cold_run_sharded() {
    let pts = points(240);
    let parts = split_round_robin(pts.clone(), 4);
    let rt = mapreduce::MapReduceRuntime::with_threads(4);
    for problem in [Problem::RemoteEdge, Problem::RemoteClique] {
        let task = Task::new(problem, 5).budget(Budget::KPrime(20));
        let cold = task.run_sharded(&parts, &Euclidean, &rt).unwrap();
        let pool = task.serve_seeded(&parts, Euclidean).unwrap();
        let warm = pool.query(&task).unwrap();

        assert_eq!(warm.backend, cold.backend, "{problem}");
        assert_eq!(warm.value.to_bits(), cold.value.to_bits(), "{problem}");
        assert_eq!(warm.coreset_size, cold.coreset_size, "{problem}");
        assert_eq!(warm.coreset_radius, cold.coreset_radius, "{problem}");
        // Translate pool provenance back to original positions: a
        // seeded shard's engine ids are its part's local order.
        let translated: Vec<usize> = warm
            .indices
            .iter()
            .map(|&encoded| {
                let id = ShardedId::decode(encoded as u64);
                parts.global_indices[id.shard][id.id.raw() as usize]
            })
            .collect();
        assert_eq!(translated, cold.indices, "{problem}");
        for (&encoded, p) in warm.indices.iter().zip(&warm.points) {
            let id = ShardedId::decode(encoded as u64);
            assert_eq!(pool.point(id).as_ref(), Some(p), "{problem}");
        }
    }
}

/// The warm [`Report`]'s timing rows are a stable contract: dashboards
/// and the churn harness key on these names, so renames are breaking
/// changes. `warm-lock-wait` is the component of `warm-extract` spent
/// waiting on shard read locks (the contention share of warm latency).
#[test]
fn warm_report_timing_rows_are_pinned() {
    let pts = points(120);
    let task = Task::new(Problem::RemoteEdge, 4).budget(Budget::KPrime(16));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 3).unwrap();
    pool.extend(pts).unwrap();
    let warm = pool.query(&task).unwrap();
    let rows: Vec<&str> = warm.timings.iter().map(|t| t.stage.as_str()).collect();
    assert_eq!(
        rows,
        ["warm-extract", "warm-lock-wait", "combine:solve"],
        "warm timing row names are pinned"
    );
    // The lock-wait row is a component of warm-extract, never more.
    assert!(warm.timings[1].secs <= warm.timings[0].secs);
    assert!(warm.timings.iter().all(|t| t.secs >= 0.0));
}

/// A shard (partition) that is empty — as after deletions drained it —
/// contributes an empty core-set with radius 0 to the merge, not an
/// error, on both the cold and the warm path.
#[test]
fn empty_shards_contribute_the_merge_identity() {
    let pts = points(90);
    // Hand-built partitioning with a genuinely empty middle part.
    let thirds = split_round_robin(pts.clone(), 2);
    let parts = Partitions {
        parts: vec![thirds.parts[0].clone(), Vec::new(), thirds.parts[1].clone()],
        global_indices: vec![
            thirds.global_indices[0].clone(),
            Vec::new(),
            thirds.global_indices[1].clone(),
        ],
    };
    let rt = mapreduce::MapReduceRuntime::with_threads(2);
    let task = Task::new(Problem::RemoteEdge, 4).budget(Budget::KPrime(12));

    let cold = task.run_sharded(&parts, &Euclidean, &rt).unwrap();
    assert_eq!(cold.len(), 4);

    let pool = task.serve_seeded(&parts, Euclidean).unwrap();
    assert_eq!(pool.shard_len(1), 0);
    let warm = pool.query(&task).unwrap();
    assert_eq!(warm.value.to_bits(), cold.value.to_bits());

    // The merged artifact's radius ignores the empty operand (max with
    // the identity's 0), and still certifies every alive point.
    let merged = pool.coreset(Problem::RemoteEdge, 4, 12);
    assert!(merged.certifies(&pts, &Euclidean, 1e-9));
    assert_eq!(Some(merged.radius()), warm.coreset_radius);
}

#[test]
fn serve_validates_upfront() {
    let task = Task::new(Problem::RemoteEdge, 3);
    let err = task.serve::<VecPoint, _>(Euclidean, 0).unwrap_err();
    assert_eq!(err, DivError::InvalidShards);

    let err = Task::new(Problem::RemoteEdge, 0)
        .serve::<VecPoint, _>(Euclidean, 2)
        .unwrap_err();
    assert_eq!(err, DivError::InvalidK { k: 0, n: None });

    let err = Task::new(Problem::RemoteEdge, 3)
        .budget(Budget::KPrime(2))
        .serve::<VecPoint, _>(Euclidean, 2)
        .unwrap_err();
    assert_eq!(err, DivError::BudgetTooSmall { k_prime: 2, k: 3 });

    // An Eps-budget task seeds the shard engines with its accuracy
    // intent.
    let pool = Task::new(Problem::RemoteEdge, 3)
        .budget(Budget::Eps { eps: 0.25, dim: 2 })
        .serve::<VecPoint, _>(Euclidean, 2)
        .unwrap();
    assert_eq!(pool.config().epsilon, 0.25);
    assert_eq!(pool.config().dim, 2);
}

/// The pool checkpoint round-trips over the wire and restores to a
/// pool with identical contents and answers — including the router
/// cursor, so routing continues where it left off.
#[test]
fn pool_checkpoint_roundtrips_over_the_wire() {
    let task = Task::new(Problem::RemoteClique, 4).budget(Budget::KPrime(16));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 3).unwrap();
    let ids = pool.extend(points(75)).unwrap();
    for id in ids.iter().step_by(5) {
        assert!(pool.delete(*id).unwrap());
    }
    let live = pool.query(&task).unwrap();

    let json = serde_json::to_string(&pool.checkpoint().unwrap()).unwrap();
    let state: PoolState<VecPoint> = serde_json::from_str(&json).unwrap();
    assert_eq!(state.shards.len(), 3);
    assert_eq!(state.len(), pool.len());

    let restored: ShardPool<VecPoint, _> = ShardPool::restore(Euclidean, state).unwrap();
    let replay = restored.query(&task).unwrap();
    assert_eq!(replay.indices, live.indices);
    assert_eq!(replay.value.to_bits(), live.value.to_bits());

    // Router continuity: the next insert on both pools lands on the
    // same shard.
    let a = pool.insert(VecPoint::from([1.0, 2.0])).unwrap();
    let b = restored.insert(VecPoint::from([1.0, 2.0])).unwrap();
    assert_eq!(a.shard, b.shard);
}

/// Encoded handles survive the round trip through `Report::indices`.
#[test]
fn sharded_ids_encode_losslessly() {
    for (shard, raw) in [(0usize, 0u64), (3, 17), (65_535, (1 << 48) - 1)] {
        let id = ShardedId {
            shard,
            id: diversity::dynamic::PointId::from_raw(raw),
        };
        assert_eq!(ShardedId::decode(id.encode()), id);
    }
}
