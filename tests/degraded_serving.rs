//! Degradation and recovery laws of the serving layer.
//!
//! * **Degradation law** (proptest): for *any* subset of quarantined
//!   shards, the degraded answer's value sits inside the
//!   structure-reported accuracy envelope of a fresh `run_seq` on the
//!   surviving points, and its certificate `certifies` exactly those
//!   survivors — dropping shards from `Coreset::merge` is sound
//!   (Definition 2 / Lemmas 3–4: the union of the surviving artifacts
//!   is a valid core-set of the union of the surviving shards).
//! * **Recovery round-trip**: an injected panic → quarantine →
//!   recovery leaves the pool bit-identical to one that never failed —
//!   checkpoints, selections, and values all compare equal.
//! * **Corrupt-restore regressions**: truncated and bit-flipped
//!   checkpoints are rejected with the typed
//!   [`DivError::CorruptState`], never a panic, never a half-restored
//!   pool.
//! * **Deadline budgets**: an expired budget degrades deterministically
//!   (all shards skipped ⇒ [`DivError::PoolUnavailable`]); a generous
//!   one answers identically to the unbounded query.

use diversity::prelude::*;
use diversity_faults as faults;
use diversity_serve::{
    value_loss, PoolState, RouterState, Serve, ShardHealth, ShardPool, ShardedId,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

/// Tests that install a process-global fault plan are serialized.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Injected panics are expected; keep them off stderr.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn gen_point(i: u64) -> VecPoint {
    let mut z = i
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z ^= z >> 29;
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 32;
    VecPoint::from([(z % 1_000) as f64 * 0.2, ((z >> 32) % 1_000) as f64 * 0.3])
}

/// A 4-shard pool with 20 deterministic points per shard (explicit
/// placement, so quarantining shard `s` removes exactly its 20).
fn seeded_pool(task: &Task) -> ShardPool<VecPoint, Euclidean> {
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 4).expect("pool");
    for i in 0..80u64 {
        pool.insert_to((i % 4) as usize, gen_point(i))
            .expect("seed");
    }
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any proper, non-empty subset of quarantined shards the
    /// degraded answer stays inside the certified envelope of fresh
    /// ground truth on the survivors, its certificate certifies them,
    /// and its coverage fraction accounts for the skipped shards'
    /// last-known occupancy exactly.
    #[test]
    fn degraded_answers_stay_certified_for_any_quarantined_subset(mask in 1usize..15) {
        let problem = Problem::RemoteEdge;
        let k = 4;
        let task = Task::new(problem, k).budget(Budget::KPrime(16));
        let pool = seeded_pool(&task);
        let k_prime = task.dynamic_k_prime(pool.config()).expect("valid budget");

        let skipped: Vec<usize> = (0..4).filter(|s| mask & (1 << s) != 0).collect();
        for &s in &skipped {
            pool.quarantine(s);
        }

        let report = pool.query(&task).expect("some shard always survives");
        let d = report.degradation.as_ref().expect("skips must degrade");
        prop_assert_eq!(&d.skipped_shards, &skipped);
        prop_assert_eq!(d.shards_total, 4);
        prop_assert_eq!(d.shards_answered, 4 - skipped.len());
        let expected_coverage = (80 - 20 * skipped.len()) as f64 / 80.0;
        prop_assert!((d.coverage - expected_coverage).abs() < 1e-12,
            "coverage {} vs expected {}", d.coverage, expected_coverage);

        // The certificate is scoped to — and certifies — the survivors.
        let survivors: Vec<VecPoint> = pool.alive().into_iter().map(|(_, p)| p).collect();
        prop_assert_eq!(survivors.len(), 80 - 20 * skipped.len());
        let surviving = pool.coreset(problem, k, k_prime);
        prop_assert_eq!(Some(surviving.radius()), report.coreset_radius);
        prop_assert!(surviving.certifies(&survivors, &Euclidean, 1e-9));

        // And the degraded value keeps the structure-reported accuracy
        // envelope over exactly those survivors.
        let fresh = task.run_seq(&survivors, &Euclidean).expect("ground truth");
        let radius = report.coreset_radius.expect("certified");
        let loss = value_loss(problem, k, radius);
        prop_assert!(
            problem.alpha() * report.value + loss >= fresh.value - 1e-9,
            "degraded {} below certified envelope of fresh {}",
            report.value, fresh.value
        );

        // Recovery restores full answers: no degradation block, and the
        // full merge certifies everything again.
        pool.recover_all().expect("administrative quarantines recover");
        let full = pool.query(&task).expect("recovered pool");
        prop_assert!(full.degradation.is_none());
        let everything: Vec<VecPoint> = pool.alive().into_iter().map(|(_, p)| p).collect();
        prop_assert_eq!(everything.len(), 80);
        prop_assert!(pool.coreset(problem, k, k_prime).certifies(&everything, &Euclidean, 1e-9));
    }
}

/// With every shard quarantined, nothing can answer: the typed
/// [`DivError::PoolUnavailable`], not a panic or an empty report.
#[test]
fn fully_quarantined_pool_refuses_typed() {
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let pool = seeded_pool(&task);
    for s in 0..4 {
        pool.quarantine(s);
    }
    assert_eq!(
        pool.query(&task).unwrap_err(),
        DivError::PoolUnavailable {
            healthy: 0,
            total: 4
        }
    );
    assert_eq!(
        pool.len(),
        0,
        "quarantined shards leave the serving population"
    );
    pool.recover_all().expect("all recover");
    assert_eq!(pool.len(), 80);
    pool.query(&task).expect("fully recovered");
}

/// The recovery round-trip is lossless to the bit: a pool that panicked
/// mid-insert, quarantined, and recovered answers — and checkpoints —
/// identically to a pool that never failed.
#[test]
fn recovered_pool_is_bit_identical_to_a_never_failed_one() {
    let _serial = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    let task = Task::new(Problem::RemoteClique, 3).budget(Budget::KPrime(18));

    // Identical explicit placements on both pools (no router drift).
    let build = || {
        let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 3).expect("pool");
        for i in 0..45u64 {
            pool.insert_to((i % 3) as usize, gen_point(i))
                .expect("seed");
        }
        pool
    };
    let failed = build();
    let pristine = build();

    // Inject: both mutation attempts panic, the insert is refused, the
    // shard ends quarantined-then-recovered with the op NOT applied.
    faults::install(Arc::new(faults::FaultPlan::from_spec(faults::FaultSpec {
        panic: 1.0,
        ..faults::FaultSpec::from_seed(99)
    })));
    let refused = failed.insert_to(0, gen_point(1000));
    faults::uninstall();
    assert!(
        matches!(refused, Err(DivError::ShardUnavailable { shard: 0 })),
        "got {refused:?}"
    );
    failed.recover_all().expect("recovers once faults stop");
    assert!(failed.healths().iter().all(|h| *h == ShardHealth::Healthy));

    // Re-apply the refused operation on both pools; every subsequent
    // handle must agree — id assignment never drifted.
    let a = failed.insert_to(0, gen_point(1000)).expect("healthy again");
    let b = pristine
        .insert_to(0, gen_point(1000))
        .expect("never failed");
    assert_eq!(a, b, "the failed+recovered pool assigns the same handle");

    let json_failed =
        serde_json::to_string(&failed.checkpoint().expect("checkpoint")).expect("serialize");
    let json_pristine =
        serde_json::to_string(&pristine.checkpoint().expect("checkpoint")).expect("serialize");
    assert_eq!(
        json_failed, json_pristine,
        "checkpoints are byte-identical after recovery"
    );

    let qa = failed.query(&task).expect("query");
    let qb = pristine.query(&task).expect("query");
    assert_eq!(qa.indices, qb.indices);
    assert_eq!(qa.value.to_bits(), qb.value.to_bits());
    assert_eq!(
        qa.coreset_radius.map(f64::to_bits),
        qb.coreset_radius.map(f64::to_bits)
    );
}

/// Corrupt pool checkpoints are rejected with the typed error — every
/// flavor: no shards, mismatched shard configurations, truncated wire
/// text, and structural corruption (dangling links) inside a shard.
#[test]
fn corrupt_pool_checkpoints_are_rejected_typed() {
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let pool = seeded_pool(&task);
    let state = pool.checkpoint().expect("checkpoint");
    let json = serde_json::to_string(&state).expect("serialize");

    // Zero shards: structurally empty states cannot restore.
    let err = ShardPool::<VecPoint, Euclidean>::restore(
        Euclidean,
        PoolState {
            shards: vec![],
            router: RouterState {
                kind: "round-robin".into(),
                cursor: 0,
                shards: 0,
            },
            remap: vec![],
        },
    )
    .expect_err("no shards");
    assert!(matches!(err, DivError::CorruptState { .. }), "got {err}");

    // Mismatched per-shard configurations.
    let mut mismatched = state.clone();
    mismatched.shards[2].epsilon *= 2.0;
    let err = ShardPool::restore(Euclidean, mismatched).expect_err("mismatch");
    assert!(
        matches!(&err, DivError::CorruptState { reason } if reason.contains("configuration")),
        "got {err}"
    );

    // Truncated wire text: rejected at parse (the serde layer).
    assert!(serde_json::from_str::<PoolState<VecPoint>>(&json[..json.len() - 7]).is_err());

    // Bit-flipped structure that still parses: a dangling parent link
    // inside shard 1 must surface as CorruptState, naming the shard.
    // Detach the victim from its old parent's child list too, so the
    // dangling link is the *only* defect regardless of which node the
    // validator visits first.
    let mut flipped = state.clone();
    let victim = flipped.shards[1].nodes[1].id;
    for node in &mut flipped.shards[1].nodes {
        node.children.retain(|&c| c != victim);
    }
    flipped.shards[1].nodes[1].parent = Some(9_999);
    let err = ShardPool::restore(Euclidean, flipped).expect_err("dangling");
    match &err {
        DivError::CorruptState { reason } => {
            assert!(reason.contains("shard 1"), "names the shard: {reason}");
            assert!(
                reason.contains("dangling parent"),
                "names the defect: {reason}"
            );
        }
        other => panic!("got {other}"),
    }

    // The untouched state still restores and answers.
    let restored = ShardPool::restore(Euclidean, state).expect("clean state restores");
    assert_eq!(restored.len(), pool.len());
    assert_eq!(
        restored.query(&task).expect("query").value.to_bits(),
        pool.query(&task).expect("query").value.to_bits()
    );
}

/// Deadline budgets degrade deterministically: an already-expired
/// budget skips every shard (typed refusal), a generous one answers
/// exactly like the unbounded query.
#[test]
fn deadline_budgets_degrade_deterministically() {
    let task = Task::new(Problem::RemoteEdge, 4).budget(Budget::KPrime(16));
    let pool = seeded_pool(&task);

    assert_eq!(
        pool.query_within(&task, Duration::ZERO).unwrap_err(),
        DivError::PoolUnavailable {
            healthy: 0,
            total: 4
        },
        "an expired budget answers from no shard"
    );

    let bounded = pool
        .query_within(&task, Duration::from_secs(60))
        .expect("a generous budget answers");
    let unbounded = pool.query(&task).expect("unbounded");
    assert!(bounded.degradation.is_none());
    assert_eq!(bounded.indices, unbounded.indices);
    assert_eq!(bounded.value.to_bits(), unbounded.value.to_bits());
}

/// Updates refused mid-fault leave no trace: a delete refused by an
/// unavailable shard keeps its target alive, and the handle space
/// stays consistent (decode∘encode is identity on everything alive).
#[test]
fn refused_operations_leave_no_trace() {
    let _serial = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let pool = seeded_pool(&task);
    let victim = pool.alive()[0].0;
    let before = pool.len();

    faults::install(Arc::new(faults::FaultPlan::from_spec(faults::FaultSpec {
        panic: 1.0,
        ..faults::FaultSpec::from_seed(5)
    })));
    let refused = pool.delete(victim);
    faults::uninstall();
    assert!(matches!(refused, Err(DivError::ShardUnavailable { .. })));

    pool.recover_all().expect("recover");
    assert_eq!(pool.len(), before, "the refused delete was not applied");
    assert!(pool.point(victim).is_some(), "the victim is still alive");
    assert!(
        pool.delete(victim).expect("healthy delete"),
        "now it deletes"
    );
    for (id, _) in pool.alive() {
        assert_eq!(ShardedId::decode(id.encode()), id);
    }
}
