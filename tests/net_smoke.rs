//! The network-serving smoke test CI gates on: a real server and the
//! loadgen harness over localhost TCP — in-process first (so the obs
//! registry captures the `net.*` counters for the `divmax-stats
//! --assert-keys` CI step), then the actual `divmax-serve` /
//! `divmax-loadgen` binaries end to end.

use diversity::obs;
use diversity::prelude::*;
use diversity_net::{loadgen, LoadgenConfig, Server, ServerConfig};
use diversity_serve::ShardPool;
use std::io::BufRead;
use std::process::{Command, Stdio};
use std::sync::{Arc, Once};

/// Installs one process-wide [`obs::Registry`] for the whole binary.
fn shared_registry() -> Arc<obs::Registry> {
    static INSTALL: Once = Once::new();
    static mut SHARED: Option<Arc<obs::Registry>> = None;
    unsafe {
        INSTALL.call_once(|| {
            let reg = Arc::new(obs::Registry::new());
            obs::install(reg.clone());
            SHARED = Some(reg);
        });
        #[allow(static_mut_refs)]
        SHARED.clone().expect("installed above")
    }
}

#[test]
fn net_smoke_in_process() {
    let registry = shared_registry();

    let (points, _) = datasets::sphere_shell(400, 8, 4, 42);
    let pool = ShardPool::new(Euclidean, 4);
    pool.extend(points).expect("seed");
    let server = Server::start(
        pool,
        ServerConfig {
            workers: 8,
            coalesce_hold_ms: 20,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let addr = server.addr().to_string();

    let task = Task::new(Problem::RemoteEdge, 6).budget(Budget::KPrime(24));
    let mut config = LoadgenConfig::new(addr, task);
    config.connections = 4;
    config.requests_per_conn = 25;
    config.distinct = 1;
    let report = loadgen::run::<VecPoint>(&config);

    assert_eq!(report.sent, 100);
    assert_eq!(report.ok + report.degraded, 100, "every query must succeed");
    assert_eq!(report.protocol_errors, 0, "zero protocol errors");
    assert_eq!(report.server_errors, 0);
    assert!(report.p99_ns > 0, "p99 must be a real latency");
    assert!(report.p50_ns <= report.p99_ns && report.p99_ns <= report.max_ns);
    assert!(report.qps > 0.0 && report.qps.is_finite());

    let stats = server.shutdown_and_join();
    assert_eq!(stats.queries, 100);
    assert!(
        stats.coalesced > 0,
        "identical-query workload must coalesce, got {stats:?}"
    );
    assert_eq!(stats.protocol_errors, 0);

    // The CI `divmax-stats --assert-keys` gate reads this export; the
    // same keys must already be present in the snapshot here.
    let snap = registry.snapshot_now();
    for key in ["net.accepted", "net.queries", "net.coalesced"] {
        assert!(
            snap.counter(key).is_some(),
            "{key} missing from the telemetry snapshot"
        );
    }
    assert!(
        snap.histogram("serve.query.e2e_ns").is_some(),
        "warm-path query histogram missing"
    );
    obs::export_to_env_path(&snap).expect("JSONL export must not fail");
}

#[test]
fn net_smoke_binaries_end_to_end() {
    let mut server = Command::new(env!("CARGO_BIN_EXE_divmax-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--n",
            "400",
            "--dim",
            "4",
            "--shards",
            "4",
            "--workers",
            "4",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn divmax-serve");
    let stdout = server.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server prints its address")
        .expect("readable stdout");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let output = Command::new(env!("CARGO_BIN_EXE_divmax-loadgen"))
        .args([
            "--addr",
            &addr,
            "--connections",
            "2",
            "--requests",
            "10",
            "--k",
            "4",
            "--kprime",
            "16",
            "--shutdown",
            "true",
        ])
        .output()
        .expect("run divmax-loadgen");
    assert!(
        output.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let json = String::from_utf8(output.stdout).expect("utf-8 report");
    let line = json.lines().last().expect("one JSON line");
    assert!(line.contains("\"sent\":20"), "report: {line}");
    assert!(line.contains("\"protocol_errors\":0"), "report: {line}");
    assert!(line.contains("\"server_errors\":0"), "report: {line}");
    assert!(!line.contains("\"p99_ns\":0,"), "p99 must be real: {line}");

    // --shutdown drained the server; it must exit cleanly on its own.
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exited with {status:?}");
}
