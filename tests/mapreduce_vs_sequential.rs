//! MapReduce algorithms vs the in-memory sequential baseline: the
//! Figure 4 accuracy trends and the Theorem 7/8 variants at test scale.

use diversity::mapreduce::{randomized, recursive, two_round, MapReduceRuntime};
use diversity::prelude::*;

fn rt() -> MapReduceRuntime {
    MapReduceRuntime::with_threads(4)
}

#[test]
fn accuracy_improves_with_k_prime_at_fixed_parallelism() {
    let k = 16;
    let (points, _) = datasets::sphere_shell(20_000, k, 3, 4);
    let reference = seq::solve(Problem::RemoteEdge, &points, &Euclidean, k);
    let parts = mapreduce::partition::split_random(points.clone(), 8, 3);

    let mut ratios = Vec::new();
    for k_prime in [k, 2 * k, 4 * k, 8 * k] {
        let sol = two_round::two_round(Problem::RemoteEdge, &parts, &Euclidean, k, k_prime, &rt());
        ratios.push(reference.value / sol.solution.value);
    }
    assert!(
        ratios[3] <= ratios[0] + 0.05,
        "k' growth should not hurt: {ratios:?}"
    );
    assert!(ratios[3] < 1.25, "final ratio {} too large", ratios[3]);
}

#[test]
fn more_parallelism_at_fixed_k_prime_does_not_collapse() {
    // Figure 4's second trend: fixing k' and raising ℓ grows the
    // aggregate core-set, so quality tends to improve.
    let k = 16;
    let (points, _) = datasets::sphere_shell(20_000, k, 3, 12);
    let reference = seq::solve(Problem::RemoteEdge, &points, &Euclidean, k);
    let mut ratios = Vec::new();
    for ell in [2usize, 4, 8, 16] {
        let parts = mapreduce::partition::split_random(points.clone(), ell, 31);
        let sol = two_round::two_round(Problem::RemoteEdge, &parts, &Euclidean, k, 2 * k, &rt());
        ratios.push(reference.value / sol.solution.value);
    }
    for r in &ratios {
        assert!(*r < 1.4, "ratio {r} out of band: {ratios:?}");
    }
}

#[test]
fn randomized_variant_close_to_deterministic() {
    let k = 24;
    let (points, _) = datasets::sphere_shell(15_000, k, 3, 21);
    let parts = mapreduce::partition::split_random(points.clone(), 6, 77);
    let det = two_round::two_round(Problem::RemoteClique, &parts, &Euclidean, k, 2 * k, &rt());
    let rnd = randomized::randomized_two_round(
        Problem::RemoteClique,
        &parts,
        &Euclidean,
        k,
        2 * k,
        &rt(),
    );
    let gap = det.solution.value / rnd.solution.value;
    assert!(
        (0.85..=1.15).contains(&gap),
        "det {} vs randomized {}",
        det.solution.value,
        rnd.solution.value
    );
}

#[test]
fn recursive_variant_tracks_two_round() {
    let k = 8;
    let (points, _) = datasets::sphere_shell(20_000, k, 3, 33);
    let parts = mapreduce::partition::split_random(points.clone(), 4, 7);
    let base = two_round::two_round(Problem::RemoteEdge, &parts, &Euclidean, k, 4 * k, &rt());
    let rec = recursive::recursive(
        Problem::RemoteEdge,
        &points,
        &Euclidean,
        k,
        4 * k,
        2_000,
        &rt(),
    );
    assert!(rec.stats.num_rounds() >= 2);
    let gap = base.solution.value / rec.solution.value;
    assert!(
        (0.7..=1.3).contains(&gap),
        "2-round {} vs recursive {}",
        base.solution.value,
        rec.solution.value
    );
}

#[test]
fn adversarial_partitioning_degrades_mildly() {
    // Section 7.2: "with such adversarial partitioning, the
    // approximation ratios worsen by up to 10%". At this scale we allow
    // a wider band but the effect must be bounded.
    let k = 16;
    let (points, _) = datasets::sphere_shell(20_000, k, 3, 41);
    let random = mapreduce::partition::split_random(points.clone(), 8, 5);
    let adversarial = mapreduce::partition::split_sorted_by(points.clone(), 8, |p| p.coords()[0]);

    let r = two_round::two_round(Problem::RemoteEdge, &random, &Euclidean, k, 2 * k, &rt());
    let a = two_round::two_round(
        Problem::RemoteEdge,
        &adversarial,
        &Euclidean,
        k,
        2 * k,
        &rt(),
    );
    let degradation = r.solution.value / a.solution.value;
    assert!(
        degradation < 1.35,
        "adversarial degradation {degradation} too large: random {} adversarial {}",
        r.solution.value,
        a.solution.value
    );
}

#[test]
fn ml_memory_bound_matches_theorem_6_shape() {
    // M_L for round 2 is the aggregate core-set ℓ·k' (edge) or
    // ℓ·k·k' (clique) — check the accounting sees exactly that.
    let k = 4;
    let k_prime = 8;
    let ell = 5;
    let (points, _) = datasets::sphere_shell(5_000, k, 3, 2);
    let parts = mapreduce::partition::split_random(points, ell, 3);

    let edge = two_round::two_round(Problem::RemoteEdge, &parts, &Euclidean, k, k_prime, &rt());
    assert!(edge.stats.rounds[1].max_local_points <= ell * k_prime);

    let clique = two_round::two_round(Problem::RemoteClique, &parts, &Euclidean, k, k_prime, &rt());
    assert!(clique.stats.rounds[1].max_local_points <= ell * k * k_prime);
    assert!(
        clique.stats.rounds[1].max_local_points > edge.stats.rounds[1].max_local_points,
        "delegates should enlarge the aggregated core-set"
    );
}
