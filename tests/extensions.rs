//! Integration tests for the beyond-the-paper extensions, exercised
//! through the public facade: matroid constraints, streaming
//! checkpointing, data-driven parameter choice, and non-Euclidean
//! metrics end-to-end.

use diversity::core::coreset::suggest_kernel_size;
use diversity::core::matroid::{matroid_clique_local_search, PartitionMatroid};
use diversity::prelude::*;
use diversity::streaming::Smm;
use metric::{Levenshtein, Lp};

#[test]
fn matroid_constrained_panel_respects_categories() {
    // 4 "publishers", 200 articles each as 3-d vectors; pick 8 with at
    // most 2 per publisher.
    let (points, _) = datasets::sphere_shell(800, 8, 3, 55);
    let category: Vec<usize> = (0..points.len()).map(|i| i % 4).collect();
    let matroid = PartitionMatroid::new(category.clone(), vec![2; 4], 8);
    let out = matroid_clique_local_search(&points, &Euclidean, &matroid, 10_000);

    assert!(out.converged);
    assert_eq!(out.solution.indices.len(), 8);
    for c in 0..4 {
        let used = out
            .solution
            .indices
            .iter()
            .filter(|&&i| category[i] == c)
            .count();
        assert!(used <= 2, "category {c} used {used} > 2");
    }
    // The constrained optimum is at most the unconstrained one.
    let unconstrained = seq::solve(Problem::RemoteClique, &points, &Euclidean, 8);
    assert!(out.solution.value <= unconstrained.value * 1.5 + 1e-9);
}

#[test]
fn checkpointed_stream_equals_uninterrupted_via_facade() {
    let (points, _) = datasets::sphere_shell(3_000, 4, 3, 77);
    let direct = Smm::run(Euclidean, 4, 8, points.iter().cloned());

    let mut s = Smm::new(Euclidean, 4, 8);
    for p in &points[..1_500] {
        s.push(p.clone());
    }
    let blob = serde_json::to_vec(s.state()).expect("checkpoint");
    let mut s = Smm::resume(Euclidean, serde_json::from_slice(&blob).expect("restore"));
    for p in &points[1_500..] {
        s.push(p.clone());
    }
    let resumed = s.finish();
    assert_eq!(direct.coreset, resumed.coreset);
}

#[test]
fn suggested_kernel_size_yields_good_ratio() {
    let k = 8;
    let (points, planted) = datasets::sphere_shell(20_000, k, 3, 31);
    // Suggest from a 2,000-point sample, capped at 64k (theory
    // constants are pessimistic).
    let k_prime = suggest_kernel_size(
        Problem::RemoteEdge,
        &points[..2_000],
        &Euclidean,
        k,
        1.0,
        64 * k,
    );
    assert!(k_prime >= k);
    let sol = pipeline::coreset_then_solve(Problem::RemoteEdge, &points, &Euclidean, k, k_prime);
    let planted_value = eval::evaluate_subset(Problem::RemoteEdge, &points, &Euclidean, &planted);
    assert!(
        planted_value / sol.value < 1.3,
        "suggested k'={k_prime} gave ratio {}",
        planted_value / sol.value
    );
}

#[test]
fn lp_metric_through_the_full_stack() {
    let (points, _) = datasets::sphere_shell(2_000, 5, 3, 13);
    let metric = Lp::new(3.0);
    let stream_sol =
        streaming::pipeline::one_pass(Problem::RemoteEdge, metric, 5, 15, points.iter().cloned());
    assert_eq!(stream_sol.points.len(), 5);
    assert!(stream_sol.value > 0.0);

    let rt = mapreduce::MapReduceRuntime::with_threads(2);
    let parts = mapreduce::partition::split_random(points, 4, 3);
    let mr = mapreduce::two_round::two_round(Problem::RemoteTree, &parts, &metric, 5, 15, &rt);
    assert_eq!(mr.solution.indices.len(), 5);
}

#[test]
fn levenshtein_through_streaming_and_exact() {
    let words: Vec<String> = [
        "alpha", "alphas", "beta", "betas", "gamma", "gammas", "delta", "deltas", "epsilon",
        "zeta", "eta", "theta",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let sol = streaming::pipeline::one_pass(
        Problem::RemoteEdge,
        Levenshtein,
        3,
        6,
        words.iter().cloned(),
    );
    assert_eq!(sol.points.len(), 3);
    // Exact α check at this size.
    let exact = exact::divk_exact(Problem::RemoteEdge, &words, &Levenshtein, 3);
    assert!(sol.value >= exact.value / 2.0 - 1e-9);
}

#[test]
fn afz_gain_modes_agree_on_solutions() {
    use diversity::baselines::afz::afz_two_round;
    use diversity::core::local_search::GainMode;
    let (points, _) = datasets::sphere_shell(1_000, 4, 2, 5);
    let parts = mapreduce::partition::split_random(points, 4, 9);
    let rt = mapreduce::MapReduceRuntime::with_threads(2);
    let inc = afz_two_round(
        Problem::RemoteClique,
        &parts,
        &Euclidean,
        4,
        100_000,
        GainMode::Incremental,
        &rt,
    );
    let naive = afz_two_round(
        Problem::RemoteClique,
        &parts,
        &Euclidean,
        4,
        100_000,
        GainMode::Rescan,
        &rt,
    );
    // Identical steepest-ascent trajectories, just different costs.
    assert_eq!(inc.mr.solution.indices, naive.mr.solution.indices);
    assert_eq!(inc.total_swaps, naive.total_swaps);
}
