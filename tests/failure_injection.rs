//! Failure injection: degenerate partitions, duplicate-heavy data, and
//! boundary parameters must not break any front end.

use diversity::mapreduce::{two_round, MapReduceRuntime};
use diversity::prelude::*;

fn rt() -> MapReduceRuntime {
    MapReduceRuntime::with_threads(2)
}

#[test]
fn empty_partitions_are_tolerated() {
    // ℓ > n leaves some parts empty; reducers must skip them.
    let points: Vec<VecPoint> = (0..6).map(|i| VecPoint::from([i as f64])).collect();
    let parts = mapreduce::partition::split_round_robin(points, 10);
    let out = two_round::two_round(Problem::RemoteEdge, &parts, &Euclidean, 3, 3, &rt());
    assert_eq!(out.solution.indices.len(), 3);
}

#[test]
fn heavily_skewed_partitions() {
    // One giant part, many singletons.
    let (points, _) = datasets::sphere_shell(1_000, 4, 2, 1);
    let mut assignment_parts: Vec<Vec<VecPoint>> = vec![Vec::new(); 5];
    let mut globals: Vec<Vec<usize>> = vec![Vec::new(); 5];
    for (i, p) in points.iter().enumerate() {
        let part = if i < 996 { 0 } else { i - 996 + 1 };
        assignment_parts[part].push(p.clone());
        globals[part].push(i);
    }
    let parts = mapreduce::Partitions {
        parts: assignment_parts,
        global_indices: globals,
    };
    let out = two_round::two_round(Problem::RemoteClique, &parts, &Euclidean, 4, 8, &rt());
    assert_eq!(out.solution.indices.len(), 4);
    let direct = eval::evaluate_subset(
        Problem::RemoteClique,
        &points,
        &Euclidean,
        &out.solution.indices,
    );
    assert!((out.solution.value - direct).abs() < 1e-9);
}

#[test]
fn duplicate_heavy_stream() {
    // 90% duplicates of a single point.
    let mut points: Vec<VecPoint> = (0..900).map(|_| VecPoint::from([1.0, 1.0])).collect();
    points.extend((0..100).map(|i| VecPoint::from([i as f64, 0.0])));
    let sol =
        streaming::pipeline::one_pass(Problem::RemoteEdge, Euclidean, 4, 8, points.iter().cloned());
    assert_eq!(sol.points.len(), 4);
    assert!(sol.value > 0.0, "must find 4 distinct locations");
}

#[test]
fn all_identical_points() {
    let points: Vec<VecPoint> = (0..50).map(|_| VecPoint::from([3.0])).collect();
    // Sequential: value must be 0 (all duplicates) but still k points.
    let sol = seq::solve(Problem::RemoteClique, &points, &Euclidean, 4);
    assert_eq!(sol.indices.len(), 4);
    assert_eq!(sol.value, 0.0);
    // Streaming must terminate despite the zero-diameter stream.
    let s = streaming::pipeline::one_pass(
        Problem::RemoteClique,
        Euclidean,
        4,
        6,
        points.iter().cloned(),
    );
    assert_eq!(s.points.len(), 4);
    assert_eq!(s.value, 0.0);
}

#[test]
fn k_equals_one_and_k_equals_n() {
    let points: Vec<VecPoint> = (0..10).map(|i| VecPoint::from([i as f64])).collect();
    let one = seq::solve(Problem::RemoteClique, &points, &Euclidean, 1);
    assert_eq!(one.indices.len(), 1);
    assert_eq!(one.value, 0.0);

    let all = seq::solve(Problem::RemoteTree, &points, &Euclidean, 10);
    assert_eq!(all.indices.len(), 10);
    assert_eq!(all.value, 9.0); // MST of the unit-spaced line

    // Streaming with k = n (short stream): pass-through.
    let s = streaming::pipeline::one_pass(
        Problem::RemoteTree,
        Euclidean,
        10,
        12,
        points.iter().cloned(),
    );
    assert_eq!(s.points.len(), 10);
    assert_eq!(s.value, 9.0);
}

#[test]
fn stream_shorter_than_k() {
    let points: Vec<VecPoint> = (0..3).map(|i| VecPoint::from([i as f64])).collect();
    let res = streaming::Smm::run(Euclidean, 5, 8, points);
    // Cannot invent points: returns what exists.
    assert_eq!(res.coreset.len(), 3);
}

#[test]
fn one_dimensional_and_high_dimensional_inputs() {
    // d = 1
    let (p1, _) = datasets::sphere_shell(500, 4, 1, 5);
    let s1 = pipeline::coreset_then_solve(Problem::RemoteEdge, &p1, &Euclidean, 4, 8);
    assert_eq!(s1.indices.len(), 4);
    // d = 32 (high nominal dimension — doubling bounds degrade but
    // nothing breaks)
    let (p32, _) = datasets::sphere_shell(500, 4, 32, 5);
    let s32 = pipeline::coreset_then_solve(Problem::RemoteEdge, &p32, &Euclidean, 4, 8);
    assert_eq!(s32.indices.len(), 4);
}

#[test]
fn adversarial_partition_with_duplicates() {
    let mut points: Vec<VecPoint> = (0..400).map(|_| VecPoint::from([0.5, 0.5])).collect();
    points.extend((0..100).map(|i| VecPoint::from([(i % 10) as f64, (i / 10) as f64])));
    let parts = mapreduce::partition::split_sorted_by(points, 8, |p| p.coords()[0]);
    let out = two_round::two_round(Problem::RemoteEdge, &parts, &Euclidean, 5, 10, &rt());
    assert_eq!(out.solution.indices.len(), 5);
    assert!(out.solution.value > 0.0);
}
