//! End-to-end: the full stack (datasets → core-sets → solvers) on both
//! of the paper's workload families, for all six problems.

use diversity::prelude::*;

#[test]
fn sphere_shell_all_problems_all_frontends() {
    let n = 3_000;
    let k = 6;
    let k_prime = 24;
    let (points, _) = datasets::sphere_shell(n, k, 3, 1);
    let rt = mapreduce::MapReduceRuntime::with_threads(4);
    let parts = mapreduce::partition::split_random(points.clone(), 4, 5);

    for problem in Problem::ALL {
        let seq_sol = seq::solve(problem, &points, &Euclidean, k);
        let stream_sol =
            streaming::pipeline::one_pass(problem, Euclidean, k, k_prime, points.iter().cloned());
        let mr_sol = mapreduce::two_round::two_round(problem, &parts, &Euclidean, k, k_prime, &rt);

        assert_eq!(stream_sol.points.len(), k, "{problem}: stream size");
        assert_eq!(mr_sol.solution.indices.len(), k, "{problem}: MR size");
        assert!(seq_sol.value > 0.0, "{problem}");

        // Core-set solutions cannot *beat* an in-memory solver by more
        // than its own approximation slack; sanity-bound both ways with
        // the α factor.
        let alpha = problem.alpha();
        assert!(
            stream_sol.value >= seq_sol.value / (2.0 * alpha),
            "{problem}: streaming {} too far below sequential {}",
            stream_sol.value,
            seq_sol.value
        );
        assert!(
            mr_sol.solution.value >= seq_sol.value / (2.0 * alpha),
            "{problem}: MR {} too far below sequential {}",
            mr_sol.solution.value,
            seq_sol.value
        );
    }
}

#[test]
fn bag_of_words_cosine_end_to_end() {
    let cfg = datasets::BagOfWordsConfig {
        vocabulary: 500,
        ..Default::default()
    };
    let docs = datasets::musixmatch_like(2_000, 3, &cfg);
    let k = 8;
    let k_prime = 32;

    let stream_sol = streaming::pipeline::one_pass(
        Problem::RemoteEdge,
        CosineDistance,
        k,
        k_prime,
        docs.iter().cloned(),
    );
    assert_eq!(stream_sol.points.len(), k);
    // Angular distances live in [0, π]; a diverse panel on Zipf
    // bag-of-words should be clearly non-degenerate.
    assert!(stream_sol.value > 0.1, "value {}", stream_sol.value);
    assert!(stream_sol.value <= std::f64::consts::PI + 1e-9);

    let rt = mapreduce::MapReduceRuntime::with_threads(4);
    let parts = mapreduce::partition::split_random(docs.clone(), 4, 9);
    let mr = mapreduce::two_round::two_round(
        Problem::RemoteClique,
        &parts,
        &CosineDistance,
        k,
        k_prime,
        &rt,
    );
    assert_eq!(mr.solution.indices.len(), k);
    let direct = eval::evaluate_subset(
        Problem::RemoteClique,
        &docs,
        &CosineDistance,
        &mr.solution.indices,
    );
    assert!((mr.solution.value - direct).abs() < 1e-9);
}

#[test]
fn planted_solution_is_recovered_within_epsilon() {
    // With a generous core-set the remote-edge value must come close
    // to the planted sphere points' value (the (1+ε) promise, observed
    // rather than proved at this scale).
    let k = 8;
    let (points, planted) = datasets::sphere_shell(20_000, k, 3, 17);
    let planted_value = eval::evaluate_subset(Problem::RemoteEdge, &points, &Euclidean, &planted);

    let sol = pipeline::coreset_then_solve(Problem::RemoteEdge, &points, &Euclidean, k, 16 * k);
    let ratio = planted_value / sol.value;
    assert!(
        ratio < 1.3,
        "ratio {ratio} too large: value {} vs planted {planted_value}",
        sol.value
    );
}

#[test]
fn doubling_dimension_estimator_sane_on_sphere_shell() {
    let (points, _) = datasets::sphere_shell(2_000, 8, 3, 23);
    let est = metric::estimate_doubling_dimension(&points, &Euclidean, 4, 7);
    // R^3 ball + sphere: doubling dimension O(3); greedy-estimate
    // upper bounds inflate it but it must stay far below log2(n) ≈ 11.
    assert!(est.dimension >= 1.0, "estimate {}", est.dimension);
    assert!(est.dimension <= 7.0, "estimate {}", est.dimension);
}
