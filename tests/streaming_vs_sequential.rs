//! Streaming algorithms vs the in-memory sequential baseline: the
//! Figure 1/2 accuracy trends at test scale.

use diversity::prelude::*;

/// The sequential solution on the full input is the streaming
/// algorithm's quality target; the α+ε theory says streaming ≥
/// sequential/(1+ε) in value once k' is large enough.
#[test]
fn accuracy_improves_with_k_prime() {
    let k = 16;
    let (points, _) = datasets::sphere_shell(30_000, k, 3, 5);
    let reference = seq::solve(Problem::RemoteEdge, &points, &Euclidean, k);

    let mut last_ratio = f64::INFINITY;
    let mut ratios = Vec::new();
    for k_prime in [k, 2 * k, 4 * k, 8 * k] {
        let sol = streaming::pipeline::one_pass(
            Problem::RemoteEdge,
            Euclidean,
            k,
            k_prime,
            points.iter().cloned(),
        );
        let ratio = reference.value / sol.value;
        ratios.push(ratio);
        last_ratio = ratio;
    }
    // The k'-trend of Figure 2: the largest k' is at least as good as
    // the smallest (monotonicity holds on average; we assert the
    // endpoints to keep the test robust to small fluctuations).
    assert!(
        last_ratio <= ratios[0] + 0.05,
        "ratios did not improve: {ratios:?}"
    );
    // With k' = 8k streaming comes close to sequential. The paper's
    // Figure 2 shows streaming ratios on this very workload remain
    // noticeably above 1 even at k'=k+64 (the doubling algorithm is an
    // 8-approximation to k-center, vs GMM's 2): allow that slack.
    assert!(last_ratio < 1.8, "final ratio {last_ratio}");
}

#[test]
fn smm_ext_supports_sum_objectives() {
    let k = 8;
    let (points, _) = datasets::sphere_shell(10_000, k, 3, 6);
    let reference = seq::solve(Problem::RemoteClique, &points, &Euclidean, k);
    let sol = streaming::pipeline::one_pass(
        Problem::RemoteClique,
        Euclidean,
        k,
        4 * k,
        points.iter().cloned(),
    );
    let ratio = reference.value / sol.value;
    assert!(ratio < 1.2, "remote-clique streaming ratio {ratio}");
}

#[test]
fn two_pass_matches_one_pass_quality_with_less_memory() {
    let k = 12;
    let (points, _) = datasets::sphere_shell(8_000, k, 3, 8);
    let k_prime = 4 * k;

    let one = streaming::pipeline::one_pass(
        Problem::RemoteClique,
        Euclidean,
        k,
        k_prime,
        points.iter().cloned(),
    );
    let two = streaming::two_pass::two_pass(Problem::RemoteClique, Euclidean, k, k_prime, || {
        points.iter().cloned()
    });

    // Quality: each pipeline carries an independent α=2 approximation
    // (and the two-pass multiset matching may pick replica pairs), so
    // values can differ by up to ~α either way.
    let ratio = one.value / two.solution.value;
    assert!(
        (0.45..=2.2).contains(&ratio),
        "one-pass {} vs two-pass {}",
        one.value,
        two.solution.value
    );

    // Memory: pass 1 of the two-pass algorithm has no k× delegate
    // blow-up.
    assert!(
        two.pass1_peak_memory <= 2 * (k_prime + 1),
        "pass1 peak {}",
        two.pass1_peak_memory
    );
}

#[test]
fn streaming_memory_independent_of_stream_length() {
    let k = 8;
    let k_prime = 16;
    let mut peaks = Vec::new();
    for &n in &[2_000usize, 8_000, 32_000] {
        let (points, _) = datasets::sphere_shell(n, k, 3, 9);
        let res = streaming::Smm::run(Euclidean, k, k_prime, points);
        peaks.push(res.peak_memory_points);
    }
    // Table 3's headline: memory depends on k and k', not n.
    let max = *peaks.iter().max().unwrap();
    let min = *peaks.iter().min().unwrap();
    assert!(max <= min + (k_prime + 1), "peaks {peaks:?} grow with n");
}

#[test]
fn throughput_decreases_with_k_prime() {
    // Figure 3's main trend: larger center budgets cost per-point time.
    let (points, _) = datasets::sphere_shell(20_000, 8, 3, 10);
    let fast = streaming::throughput::measure(Problem::RemoteEdge, Euclidean, 8, 8, &points);
    let slow = streaming::throughput::measure(Problem::RemoteEdge, Euclidean, 8, 128, &points);
    assert!(
        fast.points_per_sec > slow.points_per_sec,
        "k'=8: {:.0}/s vs k'=128: {:.0}/s",
        fast.points_per_sec,
        slow.points_per_sec
    );
}
