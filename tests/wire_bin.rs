//! The binary wire codec (`diversity::wire`) under test at the
//! workspace level: golden byte pins freezing the encoding, property
//! tests proving binary round-trips agree with the JSON serde path,
//! and hostile-input rejection (torn buffers, trailing bytes, bogus
//! lengths) — always a typed [`WireError`], never a panic.

use diversity::prelude::*;
use diversity::wire::{from_bytes, to_bytes, WireError};
use diversity_serve::{PoolState, RouterState, Serve, ShardPool};
use proptest::prelude::*;
use proptest::Strategy as _;

// ---- golden pins ----------------------------------------------------
//
// These byte sequences are the frozen wire contract: a change here is
// a protocol version bump, not a test update.

#[test]
fn golden_task_bytes() {
    let task = Task::new(Problem::RemoteEdge, 8).budget(Budget::KPrime(32));
    // problem tag 0, k=8 varint, budget tag 1 + varint 32, threads
    // None, projection None.
    assert_eq!(to_bytes(&task), vec![0, 8, 1, 32, 0, 0]);
    let with_threads = Task::new(Problem::RemoteCycle, 300)
        .budget(Budget::Eps { eps: 0.5, dim: 3 })
        .threads(2);
    // problem tag 5; 300 = 0xAC 0x02 varint; budget tag 2 + f64(0.5)
    // LE + dim varint 3; threads Some(2); projection None.
    let mut expected = vec![5, 0xAC, 0x02, 2];
    expected.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
    expected.extend_from_slice(&[3, 1, 2, 0]);
    assert_eq!(to_bytes(&with_threads), expected);
    assert_eq!(from_bytes::<Task>(&expected).unwrap(), with_threads);

    // A projection spec appends Option tag 1 + f64(eps) + seed varint.
    let projected = Task::new(Problem::RemoteEdge, 8)
        .budget(Budget::KPrime(32))
        .project(0.25, 7);
    let mut expected = vec![0, 8, 1, 32, 0, 1];
    expected.extend_from_slice(&0.25f64.to_bits().to_le_bytes());
    expected.push(7);
    assert_eq!(to_bytes(&projected), expected);
    assert_eq!(from_bytes::<Task>(&expected).unwrap(), projected);
}

#[test]
fn golden_point_and_router_bytes() {
    let point = VecPoint::new(vec![1.0, -0.5]);
    let mut expected = vec![2];
    expected.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
    expected.extend_from_slice(&(-0.5f64).to_bits().to_le_bytes());
    assert_eq!(to_bytes(&point), expected);

    let router = RouterState {
        kind: "round-robin".into(),
        cursor: 7,
        shards: 4,
    };
    // Kind (varint length + bytes), cursor varint, shard-count varint
    // (appended by the rebalancing PR — a protocol version bump).
    let mut expected = vec![11];
    expected.extend_from_slice(b"round-robin");
    expected.push(7);
    expected.push(4);
    assert_eq!(to_bytes(&router), expected);
}

// ---- generators (mirroring tests/task_serde.rs) ---------------------

fn arb_problem() -> impl proptest::Strategy<Value = Problem> {
    (0usize..Problem::ALL.len()).prop_map(|i| Problem::ALL[i])
}

fn arb_budget() -> impl proptest::Strategy<Value = Budget> {
    (0u8..3, 0.001f64..1.0, 1usize..10_000, 0u32..8, 0u8..2).prop_map(
        |(variant, eps, size, dim, cap_some)| match variant {
            0 => Budget::Auto {
                eps,
                cap: (cap_some == 1).then_some(size),
            },
            1 => Budget::KPrime(size),
            _ => Budget::Eps { eps, dim },
        },
    )
}

fn arb_task() -> impl proptest::Strategy<Value = Task> {
    (
        arb_problem(),
        1usize..1000,
        arb_budget(),
        0usize..9,
        (0u8..2, 0.01f64..0.99, 0u64..1000),
    )
        .prop_map(|(problem, k, budget, threads, (project, eps, seed))| {
            let task = Task::new(problem, k).budget(budget).threads(threads);
            if project == 1 {
                task.project(eps, seed)
            } else {
                task
            }
        })
}

fn arb_coreset() -> impl proptest::Strategy<Value = Coreset<VecPoint>> {
    (1usize..20, 0u64..1000, 1usize..64, 0.0f64..100.0).prop_map(|(n, seed, k_prime, radius)| {
        let points: Vec<VecPoint> = (0..n)
            .map(|i| {
                let x = (((i as u64 * 31 + seed) % 97) as f64) * 0.5;
                VecPoint::from([x, (i as f64) * 0.25])
            })
            .collect();
        let sources: Vec<u64> = (0..n as u64).map(|i| i * 3 + seed % 7).collect();
        let weights: Vec<usize> = (0..n).map(|i| 1 + (i + seed as usize) % 4).collect();
        Coreset::new(points, sources, weights, k_prime, radius)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn task_binary_roundtrips_and_is_smaller_than_json(task in arb_task()) {
        let bytes = to_bytes(&task);
        prop_assert_eq!(from_bytes::<Task>(&bytes).unwrap(), task.clone());
        let json = serde_json::to_string(&task).unwrap();
        prop_assert!(
            bytes.len() < json.len(),
            "binary {} >= JSON {}", bytes.len(), json.len()
        );
    }

    #[test]
    fn coreset_binary_roundtrips_and_is_smaller_than_json(coreset in arb_coreset()) {
        let bytes = to_bytes(&coreset);
        prop_assert_eq!(from_bytes::<Coreset<VecPoint>>(&bytes).unwrap(), coreset.clone());
        let json = serde_json::to_string(&coreset).unwrap();
        prop_assert!(bytes.len() < json.len());
    }

    /// Every strict prefix of a valid encoding fails with a typed
    /// error, and every suffix-padded buffer reports the trailing
    /// bytes. No input may panic.
    #[test]
    fn torn_and_padded_task_buffers_fail_typed(task in arb_task()) {
        let bytes = to_bytes(&task);
        for cut in 0..bytes.len() {
            match from_bytes::<Task>(&bytes[..cut]) {
                Err(_) => {}
                Ok(decoded) => prop_assert!(
                    false,
                    "prefix of {} / {} bytes decoded as {decoded:?}",
                    cut, bytes.len()
                ),
            }
        }
        let mut padded = bytes.clone();
        padded.push(0);
        prop_assert_eq!(
            from_bytes::<Task>(&padded).unwrap_err(),
            WireError::TrailingBytes { remaining: 1 }
        );
    }

    /// An executed report — generic payload, certificate, timings —
    /// survives the binary wire bit-for-bit, matching the JSON path.
    #[test]
    fn executed_report_roundtrips_binary(
        seed in 0u64..1000,
        k in 2usize..6,
        problem in arb_problem(),
    ) {
        let (points, _) = datasets::sphere_shell(60, k, 3, seed);
        let task = Task::new(problem, k).budget(Budget::KPrime(4 * k));
        let report = task.run_seq(&points, &Euclidean).unwrap();
        let bytes = to_bytes(&report);
        let back: Report<VecPoint> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.indices, report.indices);
        prop_assert_eq!(back.value.to_bits(), report.value.to_bits());
        prop_assert_eq!(back.backend, report.backend);
        prop_assert_eq!(
            back.coreset_radius.map(f64::to_bits),
            report.coreset_radius.map(f64::to_bits)
        );
        let json = serde_json::to_string(&report).unwrap();
        prop_assert!(bytes.len() < json.len());
    }
}

// ---- hostile inputs -------------------------------------------------

#[test]
fn hostile_vec_length_is_rejected_before_allocation() {
    // A Vec<VecPoint> claiming u64::MAX elements in a 3-byte buffer.
    let mut bytes = vec![0xFF; 9];
    bytes.push(0x01);
    match from_bytes::<Vec<VecPoint>>(&bytes) {
        Err(WireError::LengthOverflow { what, .. }) => assert_eq!(what, "sequence"),
        other => panic!("expected LengthOverflow, got {other:?}"),
    }
}

#[test]
fn corrupt_pool_checkpoint_is_rejected_not_a_panic() {
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 2).unwrap();
    pool.extend((0..20).map(|i| VecPoint::from([i as f64, 0.5 * i as f64])))
        .unwrap();
    let bytes = to_bytes(&pool.checkpoint().unwrap());

    // Every strict prefix fails typed.
    for cut in (0..bytes.len()).step_by(7) {
        assert!(
            from_bytes::<PoolState<VecPoint>>(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    // Flipping each byte either still decodes (a value change the
    // engine re-validates on restore) or fails typed — never panics.
    for i in (0..bytes.len()).step_by(11) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xA5;
        let _ = from_bytes::<PoolState<VecPoint>>(&corrupt);
    }
}

#[test]
fn pool_checkpoint_binary_is_smaller_than_json() {
    let task = Task::new(Problem::RemoteEdge, 4).budget(Budget::KPrime(16));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 4).unwrap();
    let (points, _) = datasets::sphere_shell(300, 8, 4, 7);
    pool.extend(points).unwrap();
    let state = pool.checkpoint().unwrap();
    let bin = to_bytes(&state);
    let json = serde_json::to_string(&state).unwrap();
    assert!(
        bin.len() < json.len() / 2,
        "binary checkpoint ({} bytes) should be well under half the JSON ({} bytes)",
        bin.len(),
        json.len()
    );

    // And the binary form restores to a bit-identical pool.
    let restored: PoolState<VecPoint> = from_bytes(&bin).unwrap();
    let restored = ShardPool::restore(Euclidean, restored).unwrap();
    let live = pool.query(&task).unwrap();
    let replay = restored.query(&task).unwrap();
    assert_eq!(replay.indices, live.indices);
    assert_eq!(replay.value.to_bits(), live.value.to_bits());
}
