//! Workspace-level scenario test: a sliding-window stream — the
//! workload class the dynamic engine opens up. Items expire after a
//! fixed window; the engine must track the surviving set through the
//! churn and answer solves that match a from-scratch rebuild.

use diversity::prelude::*;
use diversity_dynamic::{DynamicDiversity, PointId};
use std::collections::VecDeque;

#[test]
fn sliding_window_matches_recompute() {
    let k = 6;
    let budget = 48;
    let window = 400;
    let (stream, _) = datasets::sphere_shell(2000, k, 3, 99);

    let mut engine = DynamicDiversity::new(Euclidean);
    let mut live: VecDeque<(PointId, VecPoint)> = VecDeque::new();

    for (t, p) in stream.into_iter().enumerate() {
        let id = engine.insert(p.clone());
        live.push_back((id, p));
        if live.len() > window {
            let (old, _) = live.pop_front().expect("window non-empty");
            assert!(engine.delete(old), "expired id must still be alive");
        }

        // Solve every 250 steps once the window is warm.
        if t >= window && t % 250 == 0 {
            let sol = engine.solve_with_budget(Problem::RemoteEdge, k, budget);
            assert_eq!(sol.ids.len(), k);
            for id in &sol.ids {
                assert!(engine.contains(*id), "solution references expired item");
            }

            // From-scratch rebuild on the exact window contents.
            let snapshot: Vec<VecPoint> = live.iter().map(|(_, p)| p.clone()).collect();
            let rebuilt =
                pipeline::coreset_then_solve(Problem::RemoteEdge, &snapshot, &Euclidean, k, budget);

            // Both are (α+ε)-approximations over the same window; the
            // dynamic answer must not trail the rebuild by more than
            // the coreset slack either side carries (bounded here by
            // the structure-reported radius).
            assert!(
                sol.value >= rebuilt.value / 2.0 - 2.0 * sol.coreset.radius - 1e-9,
                "t={t}: dynamic {} too far below rebuild {} (radius {})",
                sol.value,
                rebuilt.value,
                sol.coreset.radius
            );
            assert!(sol.value > 0.0);
        }
    }

    assert_eq!(engine.len(), window);
    engine.validate();
}

#[test]
fn update_work_stays_structure_bounded_through_churn() {
    // The dynamic engine's promise: per-update distance evaluations do
    // not scale with the alive-set size. Compare churn cost at window
    // 200 vs window 1600 on the same stream.
    let stream = datasets::gaussian_clusters(4000, 8, 2, 25.0, 7);
    let mut costs = Vec::new();
    for window in [200usize, 1600] {
        let mut engine = DynamicDiversity::new(Euclidean);
        let mut live: VecDeque<PointId> = VecDeque::new();
        for p in stream.iter().cloned() {
            let id = engine.insert(p);
            live.push_back(id);
            if live.len() > window {
                engine.delete(live.pop_front().expect("non-empty"));
            }
        }
        let per_update = engine.stats().distance_evals_per_update();
        assert!(per_update > 0.0);
        costs.push(per_update);
    }
    // 8x more alive points must not mean 8x the per-update work; allow
    // 3x for depth growth (the structure is deeper, not wider).
    assert!(
        costs[1] <= costs[0] * 3.0 + 50.0,
        "per-update cost scaled with window size: {costs:?}"
    );
}
