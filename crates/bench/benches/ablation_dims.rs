//! Dimension-sweep ablation of the high-dimensional fast path: scalar
//! vs runtime-dispatched SIMD kernels, row-major vs column-major
//! layout, plain vs triangle-inequality-pruned GMM, and the
//! end-to-end JL-projected pipeline — at `d ∈ {3, 128, 768}`.
//!
//! The kernel story is dimension-dependent: at `d = 3` the
//! monomorphized fixed-`D` scalar kernels already saturate the memory
//! bus and SIMD is deliberately not dispatched; from `d = 128` up, the
//! across-points SIMD lanes and the projection stage are where the
//! time goes. This bench records the crossover into `BENCH_dims.json`
//! (workspace root). Scale with `DIVMAX_SCALE`, repetitions with
//! `DIVMAX_TRIALS`; `DIVMAX_SIMD=off` forces every row to the scalar
//! path (the forced-`force_mode` comparisons here override it on
//! purpose — that is what they measure).

use diversity::prelude::*;
use diversity_bench::{scaled, timed, trials, Table};
use diversity_core::gmm::{gmm_pruned, gmm_with_threads};
use metric::simd::{self, SimdMode};
use metric::{DenseStoreColMajor, Metric};

/// Steady-state fused relax+argmax rounds, ns/point.
fn time_relax<P, M: Metric<P>>(
    metric: &M,
    center: &P,
    points: &[P],
    dists: &mut [f64],
    assignment: &mut [usize],
    reps: usize,
) -> f64 {
    let (_, secs) = timed(|| {
        for _ in 0..reps {
            std::hint::black_box(metric.relax(center, points, dists, assignment, 1));
        }
    });
    secs * 1e9 / (reps * points.len()) as f64
}

struct DimRow {
    dim: usize,
    n: usize,
    relax_scalar: f64,
    relax_simd: f64,
    relax_col: f64,
    gmm_secs: f64,
    pruned_secs: f64,
    pruned_skipped: u64,
    seq_secs: f64,
    proj_secs: f64,
    proj_dim: usize,
    value_ratio: f64,
    certifies: Option<bool>,
}

fn main() {
    let k = 32usize;
    let eps = 0.5f64;
    let seed = 7u64;
    let trials = trials();
    let dispatch = simd::dispatch_label();
    println!("ablation_dims: k={k}, eps={eps}, dispatch={dispatch}, trials={trials}");
    fn min_of(trials: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..trials).map(|_| f()).fold(f64::INFINITY, f64::min)
    }

    let mut results: Vec<DimRow> = Vec::new();
    // High-dim working sets are sized to stay cache-resident (~2 MB at
    // d = 128) so the relax cells measure kernel throughput rather
    // than DRAM bandwidth; past L2 both paths converge on the memory
    // bus and the comparison says nothing about the kernels.
    for &(dim, base_n) in &[(3usize, 40_000usize), (128, 2_000), (768, 2_000)] {
        let n = scaled(base_n).max(k * 4);
        let store = if dim <= 4 {
            datasets::sphere_shell_dense(n, k, dim, seed).0
        } else {
            datasets::embedding_clusters_dense(n, 16, dim, 0.02, seed)
        };
        let rows = store.rows();
        let col = DenseStoreColMajor::from_store(&store);
        let crows = col.rows();
        // reps sized so every cell streams a comparable op count.
        let reps = (60_000_000 / (n * dim)).max(2);

        // ---- steady-state relax: scalar vs SIMD vs column-major ----
        let warm = gmm_with_threads(&rows, &Euclidean, 8, 0, 1);
        let center = DenseRow::new(store.row(warm.selected[7]));
        let ccenter = crows[warm.selected[7]];
        let measure = |mode: Option<SimdMode>, col_major: bool| -> f64 {
            simd::force_mode(mode);
            let mut d = warm.dist_to_centers.clone();
            let mut a = warm.assignment.clone();
            let ns = if col_major {
                time_relax(&Euclidean, &ccenter, &crows, &mut d, &mut a, reps)
            } else {
                time_relax(&Euclidean, &center, &rows, &mut d, &mut a, reps)
            };
            simd::force_mode(None);
            ns
        };
        // Interleave the variants within each trial round so clock
        // drift (turbo decay on a shared vCPU) hits all three equally
        // instead of penalizing whichever runs last.
        let (mut relax_scalar, mut relax_simd, mut relax_col) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..trials {
            relax_scalar = relax_scalar.min(measure(Some(SimdMode::Off), false));
            relax_simd = relax_simd.min(measure(Some(SimdMode::On), false));
            relax_col = relax_col.min(measure(Some(SimdMode::On), true));
        }

        // ---- GMM: plain vs triangle-inequality pruned (bit-identical) ----
        let plain = gmm_with_threads(&rows, &Euclidean, k, 0, 1);
        let registry = std::sync::Arc::new(diversity_obs::Registry::new());
        diversity_obs::install(registry.clone());
        let pruned = gmm_pruned(&rows, &Euclidean, k, 0);
        diversity_obs::uninstall();
        assert_eq!(plain.selected, pruned.selected, "pruned GMM diverged");
        let pruned_skipped = registry
            .snapshot_now()
            .counter("kernel.pruned_relaxations")
            .unwrap_or(0);
        let gmm_secs = min_of(trials, || {
            timed(|| gmm_with_threads(&rows, &Euclidean, k, 0, 1)).1
        });
        let pruned_secs = min_of(trials, || timed(|| gmm_pruned(&rows, &Euclidean, k, 0)).1);

        // ---- end-to-end: plain sequential vs JL-projected ----
        let task = Task::new(Problem::RemoteEdge, k)
            .budget(Budget::Eps { eps: 0.4, dim: 1 })
            .threads(1);
        let (baseline, seq_secs) = timed(|| task.run_seq(&rows, &Euclidean).unwrap());
        let projected_task = task.clone().project(eps, seed);
        let (projected, proj_secs) = timed(|| projected_task.run_projected(&store).unwrap());
        let target = JlProjection::target_dim(k, eps);
        let proj_dim = target.min(dim);
        // Any feasible solution's value lower-bounds OPT, so the
        // baseline value is a ground-truth bound the widened
        // certificate must still cover on the unprojected points.
        let certifies = projected.certifies(baseline.value);
        assert_ne!(certifies, Some(false), "widened certificate failed");
        let value_ratio = projected.value / baseline.value;

        results.push(DimRow {
            dim,
            n,
            relax_scalar,
            relax_simd,
            relax_col,
            gmm_secs,
            pruned_secs,
            pruned_skipped,
            seq_secs,
            proj_secs,
            proj_dim,
            value_ratio,
            certifies,
        });
    }

    // ---- report ----
    let mut t = Table::new(
        &format!("relax kernel ns/point by dimension (dispatch: {dispatch})"),
        &["d", "n", "scalar", "simd", "simd colmajor", "simd speedup"],
    );
    for r in &results {
        t.row(vec![
            r.dim.to_string(),
            r.n.to_string(),
            format!("{:.2}", r.relax_scalar),
            format!("{:.2}", r.relax_simd),
            format!("{:.2}", r.relax_col),
            format!("{:.2}x", r.relax_scalar / r.relax_simd),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "GMM pruning and projected end-to-end",
        &[
            "d",
            "gmm",
            "gmm pruned",
            "relax skipped",
            "seq e2e",
            "projected e2e",
            "proj d",
            "value ratio",
        ],
    );
    for r in &results {
        t2.row(vec![
            r.dim.to_string(),
            format!("{:.3}s", r.gmm_secs),
            format!("{:.3}s", r.pruned_secs),
            r.pruned_skipped.to_string(),
            format!("{:.3}s", r.seq_secs),
            format!("{:.3}s", r.proj_secs),
            r.proj_dim.to_string(),
            format!("{:.4}", r.value_ratio),
        ]);
    }
    t2.print();

    // ---- machine-readable trajectory point ----
    let mut dims_json = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            dims_json.push_str(",\n");
        }
        dims_json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"dim\": {}, \"n\": {},\n",
                "      \"relax_ns_per_point\": {{ \"scalar\": {:.3}, \"simd\": {:.3}, \"simd_colmajor\": {:.3} }},\n",
                "      \"simd_relax_speedup\": {:.3},\n",
                "      \"gmm_seconds\": {{ \"plain\": {:.6}, \"pruned\": {:.6} }},\n",
                "      \"pruned_relaxations\": {},\n",
                "      \"e2e_seconds\": {{ \"seq\": {:.6}, \"projected\": {:.6} }},\n",
                "      \"projected_dim\": {},\n",
                "      \"projected_value_ratio\": {:.6},\n",
                "      \"certificate_covers_baseline\": {}\n",
                "    }}"
            ),
            r.dim,
            r.n,
            r.relax_scalar,
            r.relax_simd,
            r.relax_col,
            r.relax_scalar / r.relax_simd,
            r.gmm_secs,
            r.pruned_secs,
            r.pruned_skipped,
            r.seq_secs,
            r.proj_secs,
            r.proj_dim,
            r.value_ratio,
            match r.certifies {
                Some(true) => "true",
                Some(false) => "false",
                None => "null",
            },
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ablation_dims\",\n",
            "  \"k\": {}, \"jl_eps\": {}, \"dispatch\": \"{}\",\n",
            "  \"dims\": [\n{}\n  ]\n",
            "}}\n"
        ),
        k, eps, dispatch, dims_json
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dims.json");
    std::fs::write(&path, json).expect("write BENCH_dims.json");
    println!("\nwrote {}", path.display());
}
