//! Ablation: live shard rebalancing (`ShardPool::rebalance`) — what a
//! worst-case skewed pool pays to re-partition its quiesced cut, and
//! what the balanced shard set buys back on the warm path.
//!
//! Measures, at n ≥ 40k (scale with `DIVMAX_SCALE`), over a pool whose
//! entire dataset landed on one shard of eight:
//!
//! * **rebalance wall time** — cut, greedy re-partition, engine
//!   rebuilds, and the atomic swap (min over `DIVMAX_TRIALS` trials,
//!   each on a freshly skewed pool);
//! * **write pause** — the span writers are fenced, from all shard
//!   write locks held to the swap commit (strictly inside wall time:
//!   readers never block at all);
//! * **skew before/after** and the number of live ids remapped;
//! * **warm query latency** skewed vs rebalanced — the payoff: an
//!   extraction bounded by the largest shard shrinks with it.
//!
//! Appends a `"rebalance"` section to `BENCH_serve.json` at the
//! workspace root (CI uploads it with the serve ablation's numbers).

use diversity::prelude::*;
use diversity_bench::{fmt_secs, scaled, timed, trials, Table};
use diversity_datasets::gaussian_clusters;
use diversity_serve::{Serve, ShardPool};

fn main() {
    let n = scaled(40_000);
    let shards = 8;
    let trials = trials();
    println!("ablation_rebalance: n={n}, shards={shards}, trials={trials}");

    let points = gaussian_clusters(n, 24, 3, 40.0, 4242);
    let task = Task::new(Problem::RemoteEdge, 16).budget(Budget::KPrime(128));

    let mut wall_secs = f64::INFINITY;
    let mut pause_secs = f64::INFINITY;
    let mut warm_skewed = f64::INFINITY;
    let mut warm_balanced = f64::INFINITY;
    let mut skew_before = 0.0;
    let mut skew_after = 0.0;
    let mut ids_remapped = 0usize;
    for _ in 0..trials {
        // Worst-case placement: every point on shard 0 of eight.
        let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, shards).expect("valid pool spec");
        for p in points.iter().cloned() {
            pool.insert_to(0, p).expect("skewed insert");
        }
        let (_, secs) = timed(|| pool.query(&task).expect("skewed warm query"));
        warm_skewed = warm_skewed.min(secs);

        let (report, secs) = timed(|| pool.rebalance().expect("rebalance"));
        wall_secs = wall_secs.min(secs);
        pause_secs = pause_secs.min(report.pause.as_secs_f64());
        skew_before = report.skew_before;
        skew_after = report.skew_after;
        ids_remapped = report.ids_remapped;
        assert!(
            report.skew_after < report.skew_before,
            "rebalancing a fully skewed pool must lower the skew"
        );
        assert_eq!(pool.len(), n, "rebalancing moves points, never loses them");

        let (_, secs) = timed(|| pool.query(&task).expect("balanced warm query"));
        warm_balanced = warm_balanced.min(secs);
    }

    let mut table = Table::new(
        "live rebalancing on a fully skewed pool",
        &["metric", "value", "notes"],
    );
    table.row(vec![
        "skew".into(),
        format!("{skew_before:.2} -> {skew_after:.2}"),
        format!("{ids_remapped} live ids remapped"),
    ]);
    table.row(vec![
        "rebalance wall".into(),
        fmt_secs(wall_secs),
        "cut + re-partition + rebuild + swap".into(),
    ]);
    table.row(vec![
        "write pause".into(),
        fmt_secs(pause_secs),
        "writers fenced; readers never block".into(),
    ]);
    table.row(vec![
        "warm query".into(),
        format!("{} -> {}", fmt_secs(warm_skewed), fmt_secs(warm_balanced)),
        "skewed vs rebalanced".into(),
    ]);
    table.print();

    let section = format!(
        concat!(
            "  \"rebalance\": {{\n",
            "    \"n\": {n},\n",
            "    \"shards\": {shards},\n",
            "    \"skew_before\": {before:.4},\n",
            "    \"skew_after\": {after:.4},\n",
            "    \"ids_remapped\": {ids},\n",
            "    \"rebalance_seconds\": {wall:.6},\n",
            "    \"write_pause_seconds\": {pause:.6},\n",
            "    \"warm_query_skewed_seconds\": {skewed:.6},\n",
            "    \"warm_query_balanced_seconds\": {balanced:.6}\n",
            "  }}"
        ),
        n = n,
        shards = shards,
        before = skew_before,
        after = skew_after,
        ids = ids_remapped,
        wall = wall_secs,
        pause = pause_secs,
        skewed = warm_skewed,
        balanced = warm_balanced,
    );

    // Splice the section into BENCH_serve.json as text (the vendored
    // serde_json exposes no dynamic `Value` to merge with). The section
    // is always the last key, so a re-run truncates at the marker and
    // re-appends — idempotent either way.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let marker = ",\n  \"rebalance\":";
    let json = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let base = match existing.find(marker) {
                Some(at) => existing[..at].to_string(),
                None => existing
                    .trim_end()
                    .strip_suffix('}')
                    .expect("BENCH_serve.json is a JSON object")
                    .trim_end()
                    .to_string(),
            };
            format!("{base},\n{section}\n}}\n")
        }
        Err(_) => format!("{{\n  \"bench\": \"serve\",\n{section}\n}}\n"),
    };
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
