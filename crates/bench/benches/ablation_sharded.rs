//! Ablation: the sharded-dynamic composition vs its two parents.
//!
//! Measures, at n ≥ 60k (scale with `DIVMAX_SCALE`), for remote-edge
//! and remote-clique:
//!
//! * **query latency from warm shards** — the serving-path cost: each
//!   shard's dynamic engine is already built (amortized over updates),
//!   so a query is per-shard extraction + merge + combiner solve;
//! * the same query answered by the plain 2-round MapReduce run
//!   (rescans every shard's raw points) and by the single-machine
//!   core-set pipeline;
//! * shipped volume (solve-input size) and the composed radius
//!   certificate, against each alternative's;
//! * solution-value ratios, which must stay near 1 — the composition
//!   trades nothing it doesn't account for in the certificate.

use diversity::prelude::*;
use diversity_bench::{fmt_secs, scaled, timed, Table};
use diversity_datasets::gaussian_clusters;

fn main() {
    let n = scaled(60_000);
    let k = 16;
    let k_prime = 8 * k;
    let shards = 8;
    println!("ablation_sharded: n={n}, k={k}, k'={k_prime}, shards={shards}");

    let points = gaussian_clusters(n, 24, 3, 40.0, 777);
    let parts = mapreduce::partition::split_random(points.clone(), shards, 5);
    let rt = mapreduce::MapReduceRuntime::with_threads(shards);

    for problem in [Problem::RemoteEdge, Problem::RemoteClique] {
        let task = Task::new(problem, k).budget(Budget::KPrime(k_prime));

        // Warm the shards once — the serving fleet's steady state.
        let engines: Vec<DynamicDiversity<_, _>> = parts
            .parts
            .iter()
            .map(|part| {
                let mut e = DynamicDiversity::new(Euclidean);
                for p in part {
                    e.insert(p.clone());
                }
                e
            })
            .collect();

        // Warm-shard query: extract per shard, merge, solve — the
        // run_sharded data path minus the engine builds.
        let (warm, warm_secs) = timed(|| {
            let merged = Coreset::merge_all(engines.iter().enumerate().map(|(i, e)| {
                let globals = &parts.global_indices[i];
                e.extract_coreset(problem, k, k_prime)
                    .map_sources(|local| globals[local as usize] as u64)
            }))
            .expect("shards");
            let radius = merged.radius();
            let size = merged.len();
            let sol = pipeline::solve_coreset(problem, &merged, &Euclidean, k);
            (sol, size, radius)
        });
        let (sol, shipped, radius) = warm;

        // Cold path: run_sharded builds the engines too (one-shot cost).
        let (cold, cold_secs) = timed(|| task.run_sharded(&parts, &Euclidean, &rt).unwrap());

        // The parents.
        let (mr, mr_secs) = timed(|| {
            task.run_mapreduce(&parts, &Euclidean, &rt, Strategy::TwoRound)
                .unwrap()
        });
        let (seq, seq_secs) = timed(|| task.run_seq(&points, &Euclidean).unwrap());

        let mut table = Table::new(
            &format!("sharded-dynamic vs parents ({problem})"),
            &["path", "time", "value", "shipped", "radius cert"],
        );
        table.row(vec![
            "sharded (warm shards)".into(),
            fmt_secs(warm_secs),
            format!("{:.4}", sol.value),
            format!("{shipped}"),
            format!("{radius:.4}"),
        ]);
        table.row(vec![
            "sharded (cold, builds engines)".into(),
            fmt_secs(cold_secs),
            format!("{:.4}", cold.value),
            format!("{}", cold.coreset_size),
            format!("{:.4}", cold.coreset_radius.unwrap_or(f64::NAN)),
        ]);
        table.row(vec![
            "2-round MapReduce (rescan)".into(),
            fmt_secs(mr_secs),
            format!("{:.4}", mr.value),
            format!("{}", mr.coreset_size),
            format!("{:.4}", mr.coreset_radius.unwrap_or(f64::NAN)),
        ]);
        table.row(vec![
            "sequential core-set".into(),
            fmt_secs(seq_secs),
            format!("{:.4}", seq.value),
            format!("{}", seq.coreset_size),
            format!("{:.4}", seq.coreset_radius.unwrap_or(f64::NAN)),
        ]);
        table.print();

        println!(
            "value ratios vs seq: warm {:.3}, mapreduce {:.3}; shipped {:.2}% of n",
            sol.value / seq.value,
            mr.value / seq.value,
            100.0 * shipped as f64 / n as f64
        );
        // The laws the composition stands on, smoke-checked here too.
        assert!(sol.value > 0.0 && sol.value.is_finite());
        assert!(
            sol.value * problem.alpha() >= seq.value - 1e-9,
            "{problem}: sharded value fell below the alpha envelope"
        );
    }
}
