//! Figure 5: scalability — running time vs number of processors for
//! several dataset sizes; the single-processor point uses the
//! streaming algorithm.
//!
//! Paper setup: R³ sphere-shell datasets from 100M to 1.6B points,
//! processors `p ∈ {1, 2, 4, 8, 16}`, the *final-reducer memory* `s`
//! held fixed across configurations (so `k' = s/p` shrinks as `p`
//! grows); `p = 1` runs the streaming algorithm with `k' = 2048` to
//! produce a core-set of the same size.
//!
//! Paper's reported shape: superlinear speedup in `p` (per-reducer
//! work is `O(n·s/(k·p²))`), linear growth in `n`; MapReduce beats
//! streaming at every `p ≥ 2`, while streaming beats what MR would do
//! on one processor (cache-friendliness).

use diversity_bench::{fmt_secs, scaled, timed, Table};
use diversity_core::Problem;
use diversity_datasets::sphere_shell;
use diversity_mapreduce::partition::split_random;
use diversity_mapreduce::two_round::two_round;
use diversity_mapreduce::MapReduceRuntime;
use diversity_streaming::pipeline::one_pass;
use metric::Euclidean;

fn main() {
    let k = 32;
    let s = 2_048; // fixed aggregate core-set size (paper: k' = 2048 at p = 1)
    let sizes: Vec<usize> = [250_000usize, 500_000, 1_000_000]
        .iter()
        .map(|&n| scaled(n))
        .collect();
    let host_threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    println!(
        "fig5: scalability, sphere-shell R^3, k={k}, fixed final-reducer budget s={s}; \
         paper sizes 1e8..1.6e9. Times are simulated parallel times \
         (sum of per-round critical paths — each reducer timed \
         individually), faithful to a p-node cluster regardless of the \
         {host_threads} host core(s)."
    );

    let mut table = Table::new(
        "Figure 5 — simulated running time vs processors (columns) and dataset size (rows)",
        &["n", "p=1 (stream)", "p=2", "p=4", "p=8", "p=16"],
    );
    for &n in &sizes {
        let (points, _) = sphere_shell(n, k, 3, 31);
        let mut cells = vec![n.to_string()];

        // p = 1: the streaming algorithm with k' = s (single pass over
        // the data on one processor; its wall time IS its simulated
        // time).
        let (_, stream_time) =
            timed(|| one_pass(Problem::RemoteEdge, Euclidean, k, s, points.iter().cloned()));
        cells.push(fmt_secs(stream_time));

        for &p in &[2usize, 4, 8, 16] {
            let k_prime = (s / p).max(k); // fixed aggregate budget: ℓ·k' = s
            let rt = MapReduceRuntime::with_threads(host_threads);
            let parts = split_random(points.clone(), p, 7);
            let out = two_round(Problem::RemoteEdge, &parts, &Euclidean, k, k_prime, &rt);
            cells.push(fmt_secs(out.stats.simulated_wall().as_secs_f64()));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\npaper shape: superlinear speedup in p (doubling p ≈ 4× faster: \
         per-reducer work O(n·s/(k·p²))); linear in n; the p=1 \
         streaming column sits between p=2 and a hypothetical \
         single-processor MR run."
    );
}
