//! Ablation (Section 7.2, text): fixed aggregate core-set budget.
//!
//! "If we fix the product of k' and the level of parallelism, hence the
//! size of the aggregate core-set, we observe that increasing the
//! parallelism is mildly detrimental to the approximation quality" —
//! each reducer builds a smaller, less accurate core-set.
//!
//! The second table contrasts the paper's (1+ε) core-sets against the
//! constant-factor IMMM/AFZ-style size-k core-sets under the same
//! budget, showing why paying space for k' > k is worthwhile.

use diversity_baselines::immm::immm_coreset;
use diversity_bench::{fmt_ratio, reference_value, scaled, Table};
use diversity_core::{seq, Problem};
use diversity_datasets::sphere_shell;
use diversity_mapreduce::partition::split_random;
use diversity_mapreduce::two_round::two_round;
use diversity_mapreduce::MapReduceRuntime;
use metric::{Euclidean, VecPoint};

fn main() {
    let n = scaled(100_000);
    let k = 32;
    let budget = 2_048; // ℓ·k' fixed
    let (points, _) = sphere_shell(n, k, 3, 808);
    let reference = reference_value(Problem::RemoteEdge, &points, &Euclidean, k, None);
    println!("ablation: fixed aggregate budget l*k'={budget}, n={n}, k={k}");

    let mut table = Table::new(
        "Budget ablation — fixed ℓ·k', trade parallelism against per-reducer accuracy",
        &["parallelism", "k'", "ratio (remote-edge)"],
    );
    for &ell in &[2usize, 4, 8, 16, 32] {
        let k_prime = budget / ell;
        if k_prime < k {
            continue;
        }
        let rt = MapReduceRuntime::with_threads(ell.min(16));
        let parts = split_random(points.clone(), ell, 9);
        let out = two_round(Problem::RemoteEdge, &parts, &Euclidean, k, k_prime, &rt);
        table.row(vec![
            ell.to_string(),
            k_prime.to_string(),
            fmt_ratio(reference, out.solution.value),
        ]);
    }
    table.print();

    // CPPU (k' > k) vs IMMM/AFZ-style size-k core-sets at ℓ = 16.
    let ell = 16;
    let parts = split_random(points.clone(), ell, 9);
    let mut immm_union: Vec<VecPoint> = Vec::new();
    for part in &parts.parts {
        let cs = immm_coreset(Problem::RemoteEdge, part, &Euclidean, k);
        immm_union.extend(cs.iter().map(|&i| part[i].clone()));
    }
    let immm_sol = seq::solve(Problem::RemoteEdge, &immm_union, &Euclidean, k);
    let rt = MapReduceRuntime::with_threads(16);
    let cppu = two_round(
        Problem::RemoteEdge,
        &parts,
        &Euclidean,
        k,
        budget / ell,
        &rt,
    );
    let mut contrast = Table::new(
        "Constant-factor (size-k) core-sets vs (1+ε) core-sets, ℓ = 16",
        &["construction", "core-set size/part", "ratio"],
    );
    contrast.row(vec![
        "IMMM/AFZ (k' = k)".into(),
        k.to_string(),
        fmt_ratio(reference, immm_sol.value),
    ]);
    contrast.row(vec![
        format!("CPPU (k' = {})", budget / ell),
        (budget / ell).to_string(),
        fmt_ratio(reference, cppu.solution.value),
    ]);
    contrast.print();
    println!(
        "\npaper shape: quality degrades mildly as parallelism rises under a \
         fixed budget; (1+ε) core-sets dominate size-k core-sets."
    );
}
