//! Ablation: what fault tolerance costs the serving layer.
//!
//! Measures, at n ≥ 20k (scale with `DIVMAX_SCALE`):
//!
//! * **hook overhead** — warm query latency with no fault plan vs a
//!   zero-rate plan installed (the per-injection-point atomic load +
//!   counter bump, the price production pays for chaos-testability);
//! * **degraded-query overhead** — warm query latency with all shards
//!   healthy vs one shard quarantined (the merge shrinks, the
//!   `Degradation` block is built, the coverage fraction computed);
//! * **recovery latency** — median over repeated quarantine →
//!   [`ShardPool::recover`] cycles: a rebuild from checkpoint + log
//!   replay, the MTTR of a shard after an isolated panic.
//!
//! Records the headline numbers into `BENCH_faults.json` at the
//! workspace root (CI uploads it as an artifact).

use diversity::prelude::*;
use diversity_bench::{fmt_secs, scaled, timed, trials, Table};
use diversity_datasets::gaussian_clusters;
use diversity_faults as faults;
use diversity_serve::{Serve, ShardPool};
use std::sync::Arc;
use std::time::Instant;

fn min_secs(trials: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        best = best.min(timed(&mut f).1);
    }
    best
}

fn main() {
    let n = scaled(20_000);
    let shards = 8;
    let trials = trials().max(5);
    println!("ablation_faults: n={n}, shards={shards}, trials={trials}");

    let k = 8;
    let task = Task::new(Problem::RemoteEdge, k).budget(Budget::KPrime(8 * k));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, shards).expect("pool");
    for p in gaussian_clusters(n, 16, 3, 30.0, 777) {
        pool.insert(p).expect("fault-free load");
    }

    // ---- hook overhead: no plan vs a zero-rate plan ----------------
    faults::uninstall();
    let healthy_secs = min_secs(trials, || {
        pool.query(&task).expect("healthy query");
    });
    faults::install(Arc::new(faults::FaultPlan::from_spec(faults::FaultSpec {
        seed: 1,
        panic: 0.0,
        slow: 0.0,
        slow_ms: 0,
        corrupt: 0.0,
        drop: 0.0,
        transient: 0.0,
    })));
    let hooked_secs = min_secs(trials, || {
        pool.query(&task).expect("hooked query");
    });
    faults::uninstall();

    // ---- degraded-query overhead: one shard quarantined ------------
    pool.quarantine(0);
    let mut degraded_value = 0.0;
    let degraded_secs = min_secs(trials, || {
        let report = pool.query(&task).expect("7 shards answer");
        assert!(report.degradation.is_some());
        degraded_value = report.value;
    });
    pool.recover(0).expect("recover");
    let healthy_value = pool.query(&task).expect("full").value;

    // ---- recovery latency: median over quarantine→recover cycles ---
    let mut recoveries: Vec<f64> = (0..trials.max(9))
        .map(|i| {
            pool.quarantine(i % shards);
            let t = Instant::now();
            pool.recover(i % shards).expect("recover");
            t.elapsed().as_secs_f64()
        })
        .collect();
    recoveries.sort_by(f64::total_cmp);
    let recovery_median = recoveries[recoveries.len() / 2];

    let mut table = Table::new(
        "fault tolerance overheads (warm path)",
        &["scenario", "time/query", "notes"],
    );
    table.row(vec![
        "healthy, no plan".into(),
        fmt_secs(healthy_secs),
        format!("value {healthy_value:.4}"),
    ]);
    table.row(vec![
        "healthy, zero-rate plan".into(),
        fmt_secs(hooked_secs),
        format!(
            "hook overhead {:+.1}%",
            (hooked_secs / healthy_secs - 1.0) * 100.0
        ),
    ]);
    table.row(vec![
        "degraded (1/8 quarantined)".into(),
        fmt_secs(degraded_secs),
        format!("value {degraded_value:.4} over survivors"),
    ]);
    table.row(vec![
        "shard recovery".into(),
        fmt_secs(recovery_median),
        "median rebuild from checkpoint + log".into(),
    ]);
    table.print();

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"faults\",\n",
            "  \"n\": {n},\n",
            "  \"shards\": {shards},\n",
            "  \"healthy_query_seconds\": {healthy:.6},\n",
            "  \"hooked_query_seconds\": {hooked:.6},\n",
            "  \"hook_overhead_ratio\": {hook_ratio:.4},\n",
            "  \"degraded_query_seconds\": {degraded:.6},\n",
            "  \"degraded_overhead_ratio\": {deg_ratio:.4},\n",
            "  \"recovery_median_seconds\": {recovery:.6}\n",
            "}}\n"
        ),
        n = n,
        shards = shards,
        healthy = healthy_secs,
        hooked = hooked_secs,
        hook_ratio = hooked_secs / healthy_secs,
        degraded = degraded_secs,
        deg_ratio = degraded_secs / healthy_secs,
        recovery = recovery_median,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_faults.json");
    std::fs::write(&path, json).expect("write BENCH_faults.json");
    println!("wrote {}", path.display());
}
