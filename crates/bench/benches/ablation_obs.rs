//! Ablation: what observability costs — and what it buys.
//!
//! The `diversity-obs` contract is *zero cost when disabled*: every
//! instrumented hot path guards its reporting behind one relaxed
//! atomic load, so a process that never installs a recorder pays
//! nothing measurable. This bench records both modes for the three
//! hot paths the issue pins:
//!
//! * **GMM relax** — `gmm_with_threads` over a dense store (the
//!   `O(n·k)` kernel loop every backend bottoms out in);
//! * **dynamic insert** — `DynamicDiversity::insert`, the cover
//!   descent the serving pool pays per update;
//! * **warm query** — `ShardPool::query`, extraction + merge + solve.
//!
//! With the recorder installed, the same runs also produce a
//! [`Snapshot`](diversity_obs::Snapshot), and the headline quantiles
//! (insert p50/p99, warm-query p50/p99) come out of its histograms —
//! the numbers a serving deployment would alert on.
//!
//! Writes `BENCH_obs.json` at the workspace root with both modes'
//! timings and the enabled-mode quantiles. Overhead numbers are
//! min-over-trials; treat small deltas as noise (CI only smoke-checks
//! that the disabled mode is within a generous factor of enabled —
//! the real claim, "disabled is one atomic per batch", is structural).

use diversity::prelude::*;
use diversity_bench::{fmt_secs, scaled, timed, trials, Table};
use diversity_core::gmm::gmm_with_threads;
use diversity_datasets::{gaussian_clusters, sphere_shell_dense};
use diversity_dynamic::DynamicDiversity;
use diversity_obs::Registry;
use diversity_serve::{Serve, ShardPool};
use std::sync::Arc;

struct Modes {
    disabled: f64,
    enabled: f64,
}

impl Modes {
    fn overhead(&self) -> f64 {
        self.enabled / self.disabled.max(1e-12)
    }
}

fn min_over(trials: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..trials).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let n = scaled(60_000);
    let k = 64usize;
    let trials = trials();
    assert!(
        diversity_obs::snapshot().is_none(),
        "bench must start with no recorder installed"
    );
    println!("ablation_obs: n={n}, k={k}, trials={trials}");

    let (store, _) = sphere_shell_dense(n, k, 3, 11);
    let rows = store.rows();
    let pool_points = gaussian_clusters(n / 4, 16, 3, 30.0, 99);
    let insert_points = &pool_points[..(n / 8).max(1)];

    // One measurement closure per hot path; each runs identically in
    // both modes, so the only variable is whether a recorder is live.
    let gmm_secs = |rows: &[metric::DenseRow<'_>]| {
        min_over(trials, || {
            timed(|| std::hint::black_box(gmm_with_threads(rows, &Euclidean, k, 0, 1))).1
        })
    };
    let insert_secs = |points: &[VecPoint]| {
        min_over(trials, || {
            timed(|| {
                let mut engine = DynamicDiversity::new(Euclidean);
                for p in points {
                    engine.insert(p.clone());
                }
                std::hint::black_box(engine.len())
            })
            .1
        })
    };
    let task = Task::new(Problem::RemoteEdge, 8).budget(Budget::KPrime(64));
    let make_pool = |points: &[VecPoint]| -> ShardPool<VecPoint, Euclidean> {
        let pool = task.serve(Euclidean, 4).unwrap();
        pool.extend(points.iter().cloned()).expect("seed pool");
        pool
    };
    let query_secs = |pool: &ShardPool<VecPoint, Euclidean>| {
        min_over(trials, || timed(|| pool.query(&task).unwrap()).1)
    };

    // ---- Mode 1: no recorder (the default every library user gets).
    let gmm = Modes {
        disabled: gmm_secs(&rows),
        enabled: 0.0,
    };
    let insert = Modes {
        disabled: insert_secs(insert_points),
        enabled: 0.0,
    };
    let pool = make_pool(&pool_points);
    let query = Modes {
        disabled: query_secs(&pool),
        enabled: 0.0,
    };
    drop(pool);

    // ---- Mode 2: recorder installed, same work.
    let registry = Arc::new(Registry::new());
    diversity_obs::install(registry.clone());
    let gmm = Modes {
        enabled: gmm_secs(&rows),
        ..gmm
    };
    let insert = Modes {
        enabled: insert_secs(insert_points),
        ..insert
    };
    let pool = make_pool(&pool_points);
    let query = Modes {
        enabled: query_secs(&pool),
        ..query
    };
    let snap = registry.snapshot_now();
    diversity_obs::uninstall();

    // The snapshot must actually have seen the instrumented paths.
    assert!(snap.counter("gmm.runs").unwrap_or(0) >= trials as u64);
    let insert_hist = snap.histogram("dynamic.insert_ns").expect("insert hist");
    let query_hist = snap.histogram("serve.query.e2e_ns").expect("query hist");
    let occupancy = snap.gauge_prefix_sum(&pool.gauge_prefix());
    assert_eq!(
        occupancy,
        pool.len() as i64,
        "per-shard occupancy gauges must sum to the live point count"
    );

    let mut table = Table::new(
        "observability overhead (min over trials; ~1.0x = noise)",
        &[
            "hot path",
            "obs disabled",
            "obs enabled",
            "enabled/disabled",
        ],
    );
    for (name, m) in [
        (format!("gmm relax n={n} k={k}"), &gmm),
        (format!("dynamic insert x{}", insert_points.len()), &insert),
        (format!("warm query ({} pts, 4 shards)", pool.len()), &query),
    ] {
        table.row(vec![
            name,
            fmt_secs(m.disabled),
            fmt_secs(m.enabled),
            format!("{:.2}x", m.overhead()),
        ]);
    }
    table.print();
    println!(
        "\nenabled-mode quantiles: insert p50={}ns p99={}ns; warm query p50={}ns p99={}ns",
        insert_hist.p50(),
        insert_hist.p99(),
        query_hist.p50(),
        query_hist.p99()
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"obs\",\n",
            "  \"n\": {n},\n  \"k\": {k},\n  \"trials\": {trials},\n",
            "  \"gmm_relax_seconds\": {{ \"disabled\": {gd:.6}, \"enabled\": {ge:.6}, \"overhead\": {go:.3} }},\n",
            "  \"dynamic_insert_seconds\": {{ \"disabled\": {id:.6}, \"enabled\": {ie:.6}, \"overhead\": {io:.3} }},\n",
            "  \"warm_query_seconds\": {{ \"disabled\": {qd:.6}, \"enabled\": {qe:.6}, \"overhead\": {qo:.3} }},\n",
            "  \"enabled_quantiles_ns\": {{\n",
            "    \"dynamic_insert_p50\": {ip50},\n",
            "    \"dynamic_insert_p99\": {ip99},\n",
            "    \"warm_query_p50\": {qp50},\n",
            "    \"warm_query_p99\": {qp99}\n",
            "  }}\n",
            "}}\n"
        ),
        n = n,
        k = k,
        trials = trials,
        gd = gmm.disabled,
        ge = gmm.enabled,
        go = gmm.overhead(),
        id = insert.disabled,
        ie = insert.enabled,
        io = insert.overhead(),
        qd = query.disabled,
        qe = query.enabled,
        qo = query.overhead(),
        ip50 = insert_hist.p50(),
        ip99 = insert_hist.p99(),
        qp50 = query_hist.p50(),
        qp99 = query_hist.p99(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    std::fs::write(&path, json).expect("write BENCH_obs.json");
    println!("wrote {}", path.display());
}
