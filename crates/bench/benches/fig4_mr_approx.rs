//! Figure 4: approximation ratio of the MapReduce algorithm for
//! different parallelism and `k'` on the synthetic dataset.
//!
//! Paper setup: 100 million points in R³, remote-edge, `k = 128`,
//! parallelism (number of reducers) `∈ {2, 4, 8, 16}`,
//! `k' ∈ {k, 2k, 4k, 8k}`. Ratios are relative to the best solution
//! found across runs (the paper's normalization).
//!
//! Paper's reported shape: all ratios ≤ ~1.10; ratio decreases as `k'`
//! grows; at fixed `k'`, more parallelism *improves* the ratio (bigger
//! aggregate core-set); ratios generally better than streaming's
//! (GMM's 2-approximate kernel vs the doubling algorithm's 8).

use diversity_bench::{fmt_ratio, reference_value, scaled, trials, Table};
use diversity_core::Problem;
use diversity_datasets::sphere_shell;
use diversity_mapreduce::partition::split_random;
use diversity_mapreduce::two_round::two_round;
use diversity_mapreduce::MapReduceRuntime;
use metric::Euclidean;

fn main() {
    let n = scaled(200_000); // paper: 100,000,000
    let k = 128;
    let (points, _) = sphere_shell(n, k, 3, 99);
    println!("fig4: MapReduce approximation ratio, sphere-shell R^3, n={n}, k={k}");

    // Collect every cell's value, then normalize by the global best.
    let ells = [2usize, 4, 8, 16];
    let mults = [1usize, 2, 4, 8];
    let mut values = vec![vec![0.0f64; mults.len()]; ells.len()];
    for (ei, &ell) in ells.iter().enumerate() {
        let rt = MapReduceRuntime::with_threads(ell);
        for (mi, &mult) in mults.iter().enumerate() {
            let k_prime = mult * k;
            let mut best = f64::NEG_INFINITY;
            for t in 0..trials() {
                let parts = split_random(points.clone(), ell, 1000 + t as u64);
                let out = two_round(Problem::RemoteEdge, &parts, &Euclidean, k, k_prime, &rt);
                best = best.max(out.solution.value);
            }
            values[ei][mi] = best;
        }
    }
    let mut reference = reference_value(Problem::RemoteEdge, &points, &Euclidean, k, None);
    for row in &values {
        for &v in row {
            reference = reference.max(v);
        }
    }

    let mut table = Table::new(
        "Figure 4 — MapReduce approximation ratio (remote-edge, synthetic R³, k=128)",
        &["parallelism", "k'=k", "k'=2k", "k'=4k", "k'=8k"],
    );
    for (ei, &ell) in ells.iter().enumerate() {
        let mut cells = vec![ell.to_string()];
        cells.extend(values[ei].iter().map(|&v| fmt_ratio(reference, v)));
        table.row(cells);
    }
    table.print();
    println!(
        "\npaper shape: every cell ≤ ~1.10; ratio improves with k' and \
         (at fixed k') with parallelism."
    );
}
