//! Figure 2: approximation ratio of the streaming algorithm for
//! different `k` and `k'` on the synthetic sphere-shell dataset.
//!
//! Paper setup: 100 million points in R³ (k on the unit sphere, rest
//! in the 0.8-ball), remote-edge, `k ∈ {8, 32, 128}`,
//! `k' ∈ {k, k+4, k+16, k+64}` (linear progression — R³ has small
//! doubling dimension, so small k' increments already help).
//! Ratios are relative to the best solution found across many runs
//! with maximum memory (the paper's own normalization; the planted
//! sphere points are *not* a valid reference at large k, where random
//! sphere points have tiny min pairwise distance).
//!
//! Paper's reported shape: very large ratios at `k' = k` (up to ~45 —
//! with k'=k the doubling algorithm's 8-approximation bites), dropping
//! steeply as `k'` grows.

use diversity_bench::{fmt_ratio, reference_value, scaled, trials, Table};
use diversity_core::Problem;
use diversity_datasets::sphere_shell;
use diversity_streaming::pipeline::one_pass;
use metric::Euclidean;

fn main() {
    let n = scaled(100_000); // paper: 100,000,000
    println!("fig2: streaming approximation ratio, sphere-shell R^3, n={n}");

    let mut table = Table::new(
        "Figure 2 — streaming approximation ratio (remote-edge, synthetic R³)",
        &["k", "k'=k", "k'=k+4", "k'=k+16", "k'=k+64"],
    );
    for &k in &[8usize, 32, 128] {
        let (points, _) = sphere_shell(n, k, 3, 777);
        // Collect the grid's values first; the reference is the best
        // value seen anywhere (including dedicated high-memory runs).
        let mut values = Vec::new();
        for &delta in &[0usize, 4, 16, 64] {
            let k_prime = k + delta;
            let mut best = f64::NEG_INFINITY;
            for t in 0..trials() {
                let rot = (t * points.len()) / trials().max(1);
                let sol = one_pass(
                    Problem::RemoteEdge,
                    Euclidean,
                    k,
                    k_prime,
                    points[rot..].iter().chain(points[..rot].iter()).cloned(),
                );
                best = best.max(sol.value);
            }
            values.push(best);
        }
        let mut reference = reference_value(Problem::RemoteEdge, &points, &Euclidean, k, None);
        for &v in &values {
            reference = reference.max(v);
        }
        let mut cells = vec![k.to_string()];
        cells.extend(values.iter().map(|&v| fmt_ratio(reference, v)));
        table.row(cells);
    }
    table.print();
    println!(
        "\npaper shape: largest ratios at k'=k (paper sees up to ~45), \
         steep drop by k'=k+16; increasing k hurts."
    );
}
