//! Figure 3: throughput (points/s) of the streaming kernel on the
//! musiXmatch(-like) dataset, plus the synthetic-dataset footnote.
//!
//! Paper setup: same parameter grid as Figure 1; throughput of the
//! kernel only (stream pre-materialized in memory). Reported range:
//! 3,078–544,920 points/s on musiXmatch; 78,260–850,615 points/s on
//! the synthetic dataset (cheaper distance function); throughput
//! inversely proportional to both `k` and `k'`.

use diversity_bench::{scaled, Table};
use diversity_core::Problem;
use diversity_datasets::{musixmatch_like, sphere_shell, BagOfWordsConfig};
use diversity_streaming::throughput::measure;
use metric::{CosineDistance, Euclidean};

fn main() {
    let n = scaled(8_000);
    let cfg = BagOfWordsConfig::default();
    let docs = musixmatch_like(n, 4242, &cfg);
    println!("fig3: streaming kernel throughput (points/s), n={n}");

    let mut table = Table::new(
        "Figure 3 — streaming kernel throughput, musiXmatch-like (points/s)",
        &["k", "k'=k", "k'=2k", "k'=4k", "k'=8k"],
    );
    for &k in &[8usize, 32, 128] {
        let mut cells = vec![k.to_string()];
        for &mult in &[1usize, 2, 4, 8] {
            let k_prime = mult * k;
            if k_prime + 1 >= docs.len() {
                // The stream never leaves initialization: the kernel is
                // a no-op and the "throughput" would be meaningless.
                cells.push("-".into());
                continue;
            }
            let t = measure(Problem::RemoteEdge, CosineDistance, k, k_prime, &docs);
            cells.push(format!("{:.0}", t.points_per_sec));
        }
        table.row(cells);
    }
    table.print();

    // The synthetic companion measurement (Section 7.1's last
    // paragraph): same shape, higher absolute rates.
    let (points, _) = sphere_shell(scaled(100_000), 128, 3, 777);
    let mut synth = Table::new(
        "Figure 3 (companion) — synthetic R³ throughput (points/s)",
        &["k", "k'=k", "k'=2k", "k'=4k", "k'=8k"],
    );
    for &k in &[8usize, 32, 128] {
        let mut cells = vec![k.to_string()];
        for &mult in &[1usize, 2, 4, 8] {
            let k_prime = mult * k;
            if k_prime + 1 >= points.len() {
                cells.push("-".into());
                continue;
            }
            let t = measure(Problem::RemoteEdge, Euclidean, k, k_prime, &points);
            cells.push(format!("{:.0}", t.points_per_sec));
        }
        synth.row(cells);
    }
    synth.print();
    println!(
        "\npaper shape: throughput inversely proportional to k and k'; \
         synthetic rates higher than musiXmatch (cheaper distances). \
         Paper absolute ranges: 3,078–544,920 pts/s (musiXmatch), \
         78,260–850,615 pts/s (synthetic)."
    );
}
