//! Criterion microbenchmarks of the core primitives: distance kernels,
//! GMM iterations, SMM push, matching selection, objective evaluators.
//!
//! These are not paper experiments; they guard the constants the
//! experiment harnesses depend on (e.g. the per-point cost of the
//! streaming kernel that Figure 3 measures end-to-end).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use diversity_core::{eval, gmm_default, seq, Problem};
use diversity_datasets::{musixmatch_like, sphere_shell, BagOfWordsConfig};
use diversity_streaming::Smm;
use metric::{CosineDistance, DistanceMatrix, Euclidean, Metric};

fn bench_distances(c: &mut Criterion) {
    let mut g = c.benchmark_group("distance");
    let (p3, _) = sphere_shell(2, 1, 3, 1);
    g.bench_function("euclidean_3d", |b| {
        b.iter(|| black_box(Euclidean.distance(&p3[0], &p3[1])))
    });
    let (p32, _) = sphere_shell(2, 1, 32, 1);
    g.bench_function("euclidean_32d", |b| {
        b.iter(|| black_box(Euclidean.distance(&p32[0], &p32[1])))
    });
    let docs = musixmatch_like(2, 7, &BagOfWordsConfig::default());
    g.bench_function("cosine_sparse", |b| {
        b.iter(|| black_box(CosineDistance.distance(&docs[0], &docs[1])))
    });
    g.finish();
}

fn bench_gmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gmm");
    for &n in &[1_000usize, 10_000] {
        let (points, _) = sphere_shell(n, 8, 3, 3);
        g.bench_with_input(BenchmarkId::new("k32", n), &points, |b, pts| {
            b.iter(|| black_box(gmm_default(pts, &Euclidean, 32).selected.len()))
        });
    }
    g.finish();
}

fn bench_smm_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("smm_push");
    let (points, _) = sphere_shell(20_000, 8, 3, 5);
    for &k_prime in &[16usize, 128] {
        g.bench_with_input(BenchmarkId::new("stream20k", k_prime), &points, |b, pts| {
            b.iter(|| {
                let mut s = Smm::new(Euclidean, 8, k_prime);
                for p in pts {
                    s.push(p.clone());
                }
                black_box(s.finish().coreset.len())
            })
        });
    }
    g.finish();
}

fn bench_seq_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential");
    let (points, _) = sphere_shell(1_024, 8, 3, 9);
    g.bench_function("matching_k16_n1024", |b| {
        b.iter(|| black_box(seq::solve(Problem::RemoteClique, &points, &Euclidean, 16).value))
    });
    g.bench_function("gmm_select_k16_n1024", |b| {
        b.iter(|| black_box(seq::solve(Problem::RemoteEdge, &points, &Euclidean, 16).value))
    });
    g.finish();
}

fn bench_evaluators(c: &mut Criterion) {
    let mut g = c.benchmark_group("evaluate");
    let (points, _) = sphere_shell(64, 8, 3, 11);
    let dm = DistanceMatrix::build(&points, &Euclidean);
    g.bench_function("remote_clique_64", |b| {
        b.iter(|| black_box(eval::evaluate(Problem::RemoteClique, &dm)))
    });
    g.bench_function("mst_64", |b| {
        b.iter(|| black_box(eval::evaluate(Problem::RemoteTree, &dm)))
    });
    g.bench_function("tsp_2opt_64", |b| {
        b.iter(|| black_box(eval::evaluate(Problem::RemoteCycle, &dm)))
    });
    g.bench_function("bipartition_ls_64", |b| {
        b.iter(|| black_box(eval::evaluate(Problem::RemoteBipartition, &dm)))
    });
    let (small, _) = sphere_shell(12, 4, 3, 13);
    let dm_small = DistanceMatrix::build(&small, &Euclidean);
    g.bench_function("tsp_held_karp_12", |b| {
        b.iter(|| black_box(eval::tsp_held_karp(&dm_small)))
    });
    g.bench_function("bipartition_exact_12", |b| {
        b.iter(|| black_box(eval::bipartition_exact(&dm_small)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_distances,
    bench_gmm,
    bench_smm_push,
    bench_seq_solvers,
    bench_evaluators
);
criterion_main!(benches);
