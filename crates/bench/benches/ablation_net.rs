//! Ablation: the socket serving front (`diversity-net`) — what the
//! wire layer costs and what its two headline mechanisms buy.
//!
//! Measures, at n ≥ 20k (scale with `DIVMAX_SCALE`), over real
//! localhost TCP with the `divmax-loadgen` harness:
//!
//! * **query coalescing on vs off** — the identical-query workload
//!   (every serving fleet's hot cache-miss storm) against the same
//!   pool data, same connection count; coalescing merges concurrent
//!   extractions behind one leader, so its throughput must be
//!   *strictly higher*;
//! * a **distinct-query workload** on the coalescing server, showing
//!   the epoch/payload key never merges queries that differ;
//! * **binary vs JSON checkpoint encoding** — the Checkpoint opcode
//!   ships `diversity::wire` bytes; both byte counts are recorded and
//!   the binary form must be measurably smaller.
//!
//! Records the headline numbers into `BENCH_net.json` at the workspace
//! root (CI uploads it as an artifact).

use diversity::prelude::*;
use diversity::wire::to_bytes;
use diversity_bench::{scaled, Table};
use diversity_datasets::gaussian_clusters;
use diversity_net::{loadgen, LoadgenConfig, LoadgenReport, Server, ServerConfig, ServerStats};
use diversity_serve::ShardPool;

const SHARDS: usize = 8;
const CONNECTIONS: usize = 8;

fn seeded_pool(points: &[VecPoint]) -> ShardPool<VecPoint, Euclidean> {
    let pool = ShardPool::new(Euclidean, SHARDS);
    pool.extend(points.iter().cloned()).expect("seed pool");
    pool
}

fn run_workload(
    points: &[VecPoint],
    task: &Task,
    coalesce: bool,
    distinct: usize,
    requests: usize,
) -> (LoadgenReport, ServerStats) {
    let server = Server::start(
        seeded_pool(points),
        ServerConfig {
            workers: CONNECTIONS + 2,
            coalesce,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let mut config = LoadgenConfig::new(server.addr().to_string(), task.clone());
    config.connections = CONNECTIONS;
    config.requests_per_conn = requests;
    config.distinct = distinct;
    let report = loadgen::run::<VecPoint>(&config);
    let stats = server.shutdown_and_join();
    assert_eq!(report.protocol_errors, 0, "clean protocol run");
    assert_eq!(
        report.ok + report.degraded,
        report.sent,
        "every query answered"
    );
    (report, stats)
}

fn main() {
    let n = scaled(20_000);
    let requests = scaled(60).max(10);
    println!(
        "ablation_net: n={n}, shards={SHARDS}, connections={CONNECTIONS}, requests/conn={requests}"
    );

    let points = gaussian_clusters(n, 24, 3, 40.0, 4242);
    let task = Task::new(Problem::RemoteEdge, 16).budget(Budget::KPrime(128));

    // The identical-query storm, with and without coalescing.
    let (on, on_stats) = run_workload(&points, &task, true, 1, requests);
    let (off, off_stats) = run_workload(&points, &task, false, 1, requests);
    // Distinct queries on the coalescing server: the key must keep
    // them separate.
    let (distinct, distinct_stats) = run_workload(&points, &task, true, CONNECTIONS, requests);

    let mut table = Table::new(
        "socket serving: identical-query storm over localhost TCP",
        &["workload", "qps", "p50", "p99", "coalesced"],
    );
    for (name, report, stats) in [
        ("coalesce on (identical)", &on, &on_stats),
        ("coalesce off (identical)", &off, &off_stats),
        ("coalesce on (distinct)", &distinct, &distinct_stats),
    ] {
        table.row(vec![
            name.into(),
            format!("{:.0}", report.qps),
            format!("{}us", report.p50_ns / 1_000),
            format!("{}us", report.p99_ns / 1_000),
            format!("{}", stats.coalesced),
        ]);
    }
    table.print();

    let speedup = on.qps / off.qps.max(1e-9);
    println!("coalescing speedup on the identical-query storm: {speedup:.2}x");
    assert!(
        on.qps > off.qps,
        "coalesced identical-query throughput must be strictly higher \
         (on {:.0} qps vs off {:.0} qps)",
        on.qps,
        off.qps
    );
    assert!(on_stats.coalesced > 0, "the storm must actually coalesce");

    // Checkpoint encoding economics: the Checkpoint opcode's binary
    // bytes vs the JSON serde path, same pool state.
    let pool = seeded_pool(&points);
    let state = pool.checkpoint().expect("healthy checkpoint");
    let bin_bytes = to_bytes(&state).len();
    let json_bytes = serde_json::to_string(&state).expect("serialize").len();
    let ratio = json_bytes as f64 / bin_bytes as f64;
    println!(
        "checkpoint encoding: binary {bin_bytes} bytes vs JSON {json_bytes} bytes ({ratio:.2}x smaller)"
    );
    assert!(
        bin_bytes < json_bytes,
        "the binary checkpoint must be measurably smaller than JSON"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"net\",\n",
            "  \"n\": {n},\n",
            "  \"shards\": {shards},\n",
            "  \"connections\": {conns},\n",
            "  \"requests_per_conn\": {reqs},\n",
            "  \"coalesce_on\": {{\"qps\": {on_qps:.2}, \"p50_ns\": {on_p50}, \"p99_ns\": {on_p99}, \"coalesced\": {on_coalesced}}},\n",
            "  \"coalesce_off\": {{\"qps\": {off_qps:.2}, \"p50_ns\": {off_p50}, \"p99_ns\": {off_p99}, \"coalesced\": {off_coalesced}}},\n",
            "  \"distinct\": {{\"qps\": {d_qps:.2}, \"p50_ns\": {d_p50}, \"p99_ns\": {d_p99}, \"coalesced\": {d_coalesced}}},\n",
            "  \"coalescing_speedup\": {speedup:.3},\n",
            "  \"checkpoint_bytes_binary\": {bin_bytes},\n",
            "  \"checkpoint_bytes_json\": {json_bytes},\n",
            "  \"checkpoint_json_over_binary\": {ratio:.3}\n",
            "}}\n"
        ),
        n = n,
        shards = SHARDS,
        conns = CONNECTIONS,
        reqs = requests,
        on_qps = on.qps,
        on_p50 = on.p50_ns,
        on_p99 = on.p99_ns,
        on_coalesced = on_stats.coalesced,
        off_qps = off.qps,
        off_p50 = off.p50_ns,
        off_p99 = off.p99_ns,
        off_coalesced = off_stats.coalesced,
        d_qps = distinct.qps,
        d_p50 = distinct.p50_ns,
        d_p99 = distinct.p99_ns,
        d_coalesced = distinct_stats.coalesced,
        speedup = speedup,
        bin_bytes = bin_bytes,
        json_bytes = json_bytes,
        ratio = ratio,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_net.json");
    std::fs::write(&path, json).expect("write BENCH_net.json");
    println!("wrote {}", path.display());
}
