//! Micro-benchmarks of the batched distance-kernel layer and the
//! parallel GMM — the first recorded point of the perf trajectory.
//!
//! Measures, at n = 100k (scale with `DIVMAX_SCALE`), d = 3 Euclidean:
//!
//! * the scalar per-pair `Metric::distance` loop vs the
//!   `distance_many` batch hook (heap-hopping `Vec<VecPoint>` and
//!   cache-linear `DenseStore` layouts);
//! * the scalar GMM relax loop vs the threshold-aware `relax` hook
//!   (steady-state: incumbents already tight, the regime that
//!   dominates a real traversal);
//! * sequential vs parallel GMM at k = 128, and sequential vs parallel
//!   `DistanceMatrix::build`;
//!
//! and writes the numbers to `BENCH_kernels.json` at the workspace
//! root (machine-readable trajectory; the table below is for humans).
//! `DIVMAX_THREADS` caps the parallel runs.

use diversity_bench::{fmt_secs, scaled, timed, trials, Table};
use diversity_core::gmm::gmm_with_threads;
use diversity_datasets::sphere_shell_dense;
use metric::{par, DenseRow, DistanceMatrix, Euclidean, Metric, VecPoint};

/// Times `reps` steady-state relax+argmax rounds (what one GMM
/// iteration does per point), returning ns/point.
fn time_relax<P, M: Metric<P>>(
    metric: &M,
    center: &P,
    points: &[P],
    dists: &mut [f64],
    assignment: &mut [usize],
    reps: usize,
    batched: bool,
) -> f64 {
    let (_, secs) = timed(|| {
        for _ in 0..reps {
            if batched {
                // The hook fuses the argmax into the sweep.
                std::hint::black_box(metric.relax(center, points, dists, assignment, 1));
            } else {
                // The seed state's per-round work, verbatim: scalar
                // relax loop plus a separate argmax sweep.
                for (i, p) in points.iter().enumerate() {
                    let d = metric.distance(center, p);
                    if d < dists[i] {
                        dists[i] = d;
                        assignment[i] = 1;
                    }
                }
                std::hint::black_box(metric::argmax(dists));
            }
        }
    });
    secs * 1e9 / (reps * points.len()) as f64
}

/// Times `reps` full distance sweeps, returning ns/pair.
fn time_many<P, M: Metric<P>>(
    metric: &M,
    probe: &P,
    points: &[P],
    out: &mut [f64],
    reps: usize,
    batched: bool,
) -> f64 {
    let (_, secs) = timed(|| {
        for _ in 0..reps {
            if batched {
                metric.distance_many(probe, points, out);
            } else {
                for (o, q) in out.iter_mut().zip(points.iter()) {
                    *o = metric.distance(probe, q);
                }
            }
        }
    });
    secs * 1e9 / (reps * points.len()) as f64
}

fn main() {
    let n = scaled(100_000);
    let k = 128usize;
    let dim = 3usize;
    let threads = par::num_threads();
    let reps = (20_000_000 / n).max(3);
    let trials = trials();
    println!("kernels: n={n}, d={dim}, k={k}, threads={threads}, reps={reps}, trials={trials}");
    // The minimum over trials is the noise-robust estimator for
    // microbenches: external interference only ever inflates a sample.
    // Cells being compared are interleaved within each trial round —
    // measuring one cell's trials back-to-back hands the later cells
    // the sustained-load clock decay as a systematic handicap.
    let min_of = |mut f: Box<dyn FnMut() -> f64>| -> f64 {
        (0..trials).map(|_| f()).fold(f64::INFINITY, f64::min)
    };

    let (store, _) = sphere_shell_dense(n, k, dim, 7);
    let vec_points: Vec<VecPoint> = store.to_points();
    let rows: Vec<DenseRow<'_>> = store.rows();

    // ---- distance_many: scalar loop vs batch hook, both layouts ----
    let out = vec![0.0f64; n];
    let (mut o1, mut o2, mut o3) = (out.clone(), out.clone(), out);
    let (mut many_scalar, mut many_vec, mut many_dense) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..trials {
        many_scalar = many_scalar.min(time_many(
            &Euclidean,
            &vec_points[0],
            &vec_points,
            &mut o1,
            reps,
            false,
        ));
        many_vec = many_vec.min(time_many(
            &Euclidean,
            &vec_points[0],
            &vec_points,
            &mut o2,
            reps,
            true,
        ));
        many_dense = many_dense.min(time_many(&Euclidean, &rows[0], &rows, &mut o3, reps, true));
    }

    // ---- relax: steady state after 8 real GMM rounds ----
    let warm = gmm_with_threads(&vec_points, &Euclidean, 8, 0, 1);
    let center = vec_points[warm.selected[7]].clone();
    let mut dists = warm.dist_to_centers.clone();
    let mut assignment = warm.assignment.clone();
    let mut dists2 = warm.dist_to_centers.clone();
    let mut assignment2 = warm.assignment.clone();
    let mut dists3 = warm.dist_to_centers.clone();
    let mut assignment3 = warm.assignment.clone();
    let center_row = DenseRow::new(store.row(warm.selected[7]));
    let (mut relax_scalar, mut relax_vec, mut relax_dense) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..trials {
        relax_scalar = relax_scalar.min(time_relax(
            &Euclidean,
            &center,
            &vec_points,
            &mut dists,
            &mut assignment,
            reps,
            false,
        ));
        relax_vec = relax_vec.min(time_relax(
            &Euclidean,
            &center,
            &vec_points,
            &mut dists2,
            &mut assignment2,
            reps,
            true,
        ));
        relax_dense = relax_dense.min(time_relax(
            &Euclidean,
            &center_row,
            &rows,
            &mut dists3,
            &mut assignment3,
            reps,
            true,
        ));
    }

    // ---- GMM end-to-end: sequential vs parallel ----
    let seq_out = gmm_with_threads(&rows, &Euclidean, k, 0, 1);
    let par_out = gmm_with_threads(&rows, &Euclidean, k, 0, threads);
    assert_eq!(seq_out.selected, par_out.selected, "parallel GMM diverged");
    let (mut gmm_seq, mut gmm_par, mut gmm_vec_seq) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..trials {
        gmm_seq = gmm_seq.min(timed(|| gmm_with_threads(&rows, &Euclidean, k, 0, 1)).1);
        gmm_par = gmm_par.min(timed(|| gmm_with_threads(&rows, &Euclidean, k, 0, threads)).1);
        gmm_vec_seq =
            gmm_vec_seq.min(timed(|| gmm_with_threads(&vec_points, &Euclidean, k, 0, 1)).1);
    }

    // ---- DistanceMatrix::build: sequential vs parallel ----
    let m = 2_000.min(n);
    let dm_a = DistanceMatrix::build_with_threads(&rows[..m], &Euclidean, 1);
    let dm_b = DistanceMatrix::build_with_threads(&rows[..m], &Euclidean, threads);
    assert_eq!(dm_a.diameter(), dm_b.diameter(), "parallel build diverged");
    let dm_seq = min_of(Box::new(|| {
        timed(|| DistanceMatrix::build_with_threads(&rows[..m], &Euclidean, 1)).1
    }));
    let dm_par = min_of(Box::new(|| {
        timed(|| DistanceMatrix::build_with_threads(&rows[..m], &Euclidean, threads)).1
    }));

    // ---- Report ----
    let mut table = Table::new(
        "batched kernels vs scalar loops (Euclidean, d=3)",
        &["kernel", "ns/pair", "speedup vs scalar"],
    );
    let speedup = |base: f64, x: f64| format!("{:.2}x", base / x);
    table.row(vec![
        "distance scalar/VecPoint".into(),
        format!("{many_scalar:.2}"),
        "1.00x".into(),
    ]);
    table.row(vec![
        "distance_many/VecPoint".into(),
        format!("{many_vec:.2}"),
        speedup(many_scalar, many_vec),
    ]);
    table.row(vec![
        "distance_many/DenseStore".into(),
        format!("{many_dense:.2}"),
        speedup(many_scalar, many_dense),
    ]);
    table.row(vec![
        "relax scalar/VecPoint".into(),
        format!("{relax_scalar:.2}"),
        "1.00x".into(),
    ]);
    table.row(vec![
        "relax batched/VecPoint".into(),
        format!("{relax_vec:.2}"),
        speedup(relax_scalar, relax_vec),
    ]);
    table.row(vec![
        "relax batched/DenseStore".into(),
        format!("{relax_dense:.2}"),
        speedup(relax_scalar, relax_dense),
    ]);
    table.print();

    let mut t2 = Table::new(
        "parallel vs sequential (bit-identical outputs)",
        &["stage", "sequential", "parallel", "speedup"],
    );
    t2.row(vec![
        format!("gmm n={n} k={k} (dense)"),
        fmt_secs(gmm_seq),
        fmt_secs(gmm_par),
        speedup(gmm_seq, gmm_par),
    ]);
    t2.row(vec![
        format!("matrix build n={m}"),
        fmt_secs(dm_seq),
        fmt_secs(dm_par),
        speedup(dm_seq, dm_par),
    ]);
    t2.row(vec![
        format!("gmm layout: VecPoint vs DenseStore (1 thread)"),
        fmt_secs(gmm_vec_seq),
        fmt_secs(gmm_seq),
        speedup(gmm_vec_seq, gmm_seq),
    ]);
    t2.print();

    // ---- Kernel telemetry through the obs layer ----
    // One instrumented GMM run (timings above stay recorder-free): the
    // batch kernels report distances computed, contiguous-block
    // fast-path coverage, and threshold root elisions — the counters
    // that used to require hand-instrumented one-off builds.
    let registry = std::sync::Arc::new(diversity_obs::Registry::new());
    diversity_obs::install(registry.clone());
    let _ = gmm_with_threads(&rows, &Euclidean, k, 0, 1);
    diversity_obs::uninstall();
    let snap = registry.snapshot_now();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let distances = counter("kernel.distances");
    let elided_ratio = counter("kernel.roots_elided") as f64 / distances.max(1) as f64;
    println!(
        "
obs: gmm run computed {distances} distances; {:.1}% of roots elided by the incumbent threshold",
        elided_ratio * 100.0
    );

    // ---- Machine-readable trajectory point ----
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernels\",\n",
            "  \"n\": {n},\n  \"dim\": {dim},\n  \"k\": {k},\n  \"threads\": {threads},\n",
            "  \"ns_per_pair\": {{\n",
            "    \"distance_scalar_vecpoint\": {many_scalar:.3},\n",
            "    \"distance_many_vecpoint\": {many_vec:.3},\n",
            "    \"distance_many_dense\": {many_dense:.3},\n",
            "    \"relax_scalar_vecpoint\": {relax_scalar:.3},\n",
            "    \"relax_batched_vecpoint\": {relax_vec:.3},\n",
            "    \"relax_batched_dense\": {relax_dense:.3}\n",
            "  }},\n",
            "  \"kernel_speedup_relax_dense_vs_scalar\": {relax_speedup:.3},\n",
            "  \"kernel_speedup_distance_many_dense_vs_scalar\": {many_speedup:.3},\n",
            "  \"gmm_seconds\": {{ \"sequential\": {gmm_seq:.6}, \"parallel\": {gmm_par:.6} }},\n",
            "  \"gmm_parallel_speedup\": {gmm_speedup:.3},\n",
            "  \"matrix_build_seconds\": {{ \"n\": {m}, \"sequential\": {dm_seq:.6}, \"parallel\": {dm_par:.6} }},\n",
            "  \"obs_gmm_run\": {{\n",
            "    \"kernel_distances\": {distances},\n",
            "    \"elided_root_ratio\": {elided_ratio:.4}\n",
            "  }}\n",
            "}}\n"
        ),
        n = n,
        dim = dim,
        k = k,
        threads = threads,
        many_scalar = many_scalar,
        many_vec = many_vec,
        many_dense = many_dense,
        relax_scalar = relax_scalar,
        relax_vec = relax_vec,
        relax_dense = relax_dense,
        relax_speedup = relax_scalar / relax_dense,
        many_speedup = many_scalar / many_dense,
        gmm_seq = gmm_seq,
        gmm_par = gmm_par,
        gmm_speedup = gmm_seq / gmm_par,
        m = m,
        dm_seq = dm_seq,
        dm_par = dm_par,
        distances = distances,
        elided_ratio = elided_ratio,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    std::fs::write(&path, json).expect("write BENCH_kernels.json");
    println!("\nwrote {}", path.display());
}
