//! Ablation (ours): core-sets vs uniform random sampling.
//!
//! A natural question about any core-set technique: would a uniform
//! sample of the same size do just as well? For *sum*-type objectives
//! random samples are serviceable, but for the *min*-type remote-edge
//! objective they are systematically bad — the optimum hinges on a few
//! extreme points a uniform sample almost surely misses, which is
//! precisely why the paper plants its sphere points and why GMM-style
//! farthest-point core-sets exist. This harness quantifies the gap at
//! equal memory.

use diversity_bench::{fmt_ratio, reference_value, scaled, Table};
use diversity_core::{pipeline, seq, Problem};
use diversity_datasets::sphere_shell;
use metric::{Euclidean, VecPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn uniform_sample(points: &[VecPoint], size: usize, seed: u64) -> Vec<VecPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..size)
        .map(|_| points[rng.gen_range(0..points.len())].clone())
        .collect()
}

fn main() {
    let n = scaled(100_000);
    let k = 16;
    let (points, _) = sphere_shell(n, k, 3, 1234);
    println!("ablation: GMM core-set vs uniform sample at equal memory, n={n}, k={k}");

    let mut table = Table::new(
        "Sampling ablation — approximation ratio at equal summary size (remote-edge / remote-clique)",
        &["summary size", "GMM r-edge", "sample r-edge", "GMM r-clique", "sample r-clique"],
    );
    let edge_ref = reference_value(Problem::RemoteEdge, &points, &Euclidean, k, None);
    let clique_ref = reference_value(Problem::RemoteClique, &points, &Euclidean, k, None);
    for &size in &[2 * k, 8 * k, 32 * k] {
        // Core-set route. For remote-clique the core-set is the kernel
        // plus up to k−1 delegates per kernel point, so an equal-memory
        // comparison uses kernel size ≈ size / k.
        let cs_edge =
            pipeline::coreset_then_solve(Problem::RemoteEdge, &points, &Euclidean, k, size);
        let k_prime_clique = (size / k).max(k);
        let cs_clique = pipeline::coreset_then_solve(
            Problem::RemoteClique,
            &points,
            &Euclidean,
            k,
            k_prime_clique,
        );
        // Sampling route: solve on a uniform sample of the same size.
        let sample = uniform_sample(&points, size, 99);
        let s_edge = seq::solve(Problem::RemoteEdge, &sample, &Euclidean, k);
        let s_clique = seq::solve(Problem::RemoteClique, &sample, &Euclidean, k);

        table.row(vec![
            size.to_string(),
            fmt_ratio(edge_ref, cs_edge.value),
            fmt_ratio(edge_ref, s_edge.value),
            fmt_ratio(clique_ref, cs_clique.value),
            fmt_ratio(clique_ref, s_clique.value),
        ]);
    }
    table.print();
    println!(
        "\nexpected shape: for remote-edge the sample ratios stay far \
         above the core-set's at every size (extremes are missed); for \
         remote-clique sampling is closer but still dominated."
    );
}
