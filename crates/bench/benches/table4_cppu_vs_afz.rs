//! Table 4: CPPU (this paper's MapReduce algorithm) vs AFZ
//! (Aghamolaei et al.) on remote-clique — approximation ratio and
//! running time.
//!
//! Paper setup: 4 million points in R², 16 reducers, `k ∈ {4, 6, 8}`,
//! CPPU with `k' = 128`; ratios relative to the best solution found.
//!
//! Paper's reported shape (Table 4): comparable or better quality for
//! CPPU, and CPPU ≥ 3 orders of magnitude faster (AFZ's local search
//! is superlinear). At bench scale the speed gap shrinks with n —
//! expect one to two orders here; EXPERIMENTS.md records the scaling.

use diversity_baselines::afz::afz_two_round;
use diversity_bench::{fmt_ratio, fmt_secs, scaled, Table};
use diversity_core::local_search::GainMode;
use diversity_core::Problem;
use diversity_datasets::sphere_shell;
use diversity_mapreduce::partition::split_random;
use diversity_mapreduce::two_round::two_round;
use diversity_mapreduce::MapReduceRuntime;
use metric::Euclidean;

fn main() {
    // AFZ's superlinear local search needs large partitions to show its
    // cost (the paper uses 4M points / 250k per reducer); the default
    // here keeps partitions at 50k. Raise DIVMAX_SCALE to approach the
    // paper's regime.
    let n = scaled(800_000); // paper: 4,000,000
    let ell = 16;
    let k_prime = 128;
    let host_threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let rt = MapReduceRuntime::with_threads(host_threads);
    println!(
        "table4: CPPU vs AFZ, remote-clique, sphere-shell R^2, n={n}, {ell} reducers. \
         Times are simulated parallel times (per-round critical paths)."
    );

    // Two AFZ variants: `naive` rescans the objective per candidate
    // swap (the straightforward implementation, whose cost regime
    // matches the paper's measured comparator), `inc` uses incremental
    // gain sums (an optimization the CCCG paper does not describe).
    let mut table = Table::new(
        "Table 4 — approximation ratio and running time, CPPU vs AFZ (remote-clique)",
        &[
            "k",
            "AFZ ratio",
            "CPPU ratio",
            "AFZ naive",
            "AFZ inc",
            "CPPU time",
            "AFZ swaps",
        ],
    );
    for &k in &[4usize, 6, 8] {
        let (points, _) = sphere_shell(n, k, 2, 555 + k as u64);
        let parts = split_random(points.clone(), ell, 77);

        let cppu = two_round(Problem::RemoteClique, &parts, &Euclidean, k, k_prime, &rt);
        let afz_inc = afz_two_round(
            Problem::RemoteClique,
            &parts,
            &Euclidean,
            k,
            1_000_000,
            GainMode::Incremental,
            &rt,
        );
        let afz_naive = afz_two_round(
            Problem::RemoteClique,
            &parts,
            &Euclidean,
            k,
            1_000_000,
            GainMode::Rescan,
            &rt,
        );

        // Reference = best value seen by any algorithm (the paper
        // normalizes by the best solution found across runs).
        let reference = cppu
            .solution
            .value
            .max(afz_inc.mr.solution.value)
            .max(afz_naive.mr.solution.value);
        table.row(vec![
            k.to_string(),
            fmt_ratio(reference, afz_naive.mr.solution.value),
            fmt_ratio(reference, cppu.solution.value),
            fmt_secs(afz_naive.mr.stats.simulated_wall().as_secs_f64()),
            fmt_secs(afz_inc.mr.stats.simulated_wall().as_secs_f64()),
            fmt_secs(cppu.stats.simulated_wall().as_secs_f64()),
            afz_naive.total_swaps.to_string(),
        ]);
    }
    table.print();

    // The crossover trend: AFZ's cost grows superlinearly in the
    // partition size (sweep cost × swap count both grow with n), while
    // CPPU's round-1 is linear and its round-2 has *constant* size
    // (ℓ·k·k'), so its simulated time flattens. The paper's
    // three-orders gap is this trend evaluated at 250k-point
    // partitions.
    let k = 8;
    let mut scalingt = Table::new(
        "Table 4 (companion) — time scaling with n at k=8 (simulated parallel time)",
        &["n", "AFZ naive", "AFZ swaps", "CPPU", "CPPU r2 share"],
    );
    for &nn in &[n / 8, n / 4, n / 2, n] {
        let (points, _) = sphere_shell(nn, k, 2, 4321);
        let parts = split_random(points.clone(), ell, 77);
        let cppu = two_round(Problem::RemoteClique, &parts, &Euclidean, k, k_prime, &rt);
        let afz = afz_two_round(
            Problem::RemoteClique,
            &parts,
            &Euclidean,
            k,
            1_000_000,
            GainMode::Rescan,
            &rt,
        );
        let cppu_total = cppu.stats.simulated_wall().as_secs_f64();
        let r2 = cppu.stats.rounds[1].critical_path.as_secs_f64();
        scalingt.row(vec![
            nn.to_string(),
            fmt_secs(afz.mr.stats.simulated_wall().as_secs_f64()),
            afz.total_swaps.to_string(),
            fmt_secs(cppu_total),
            format!("{:.0}%", 100.0 * r2 / cppu_total.max(1e-12)),
        ]);
    }
    scalingt.print();
    println!(
        "\npaper shape: CPPU ratio ≤ AFZ ratio; CPPU far faster than the \
         naive AFZ at cluster scale, the gap widening superlinearly in \
         partition size (paper: ~1.2s vs 800–4,600s at n = 4M — three \
         orders of magnitude; our 1-core laptop scale sits before the \
         crossover, which the companion table's growth rates expose). \
         The 'AFZ inc' column shows how much of that gap an \
         incremental-gain implementation would close."
    );
}
