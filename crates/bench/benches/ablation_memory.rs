//! Ablation (Table 3): measured memory footprints of every algorithm
//! variant against the theory's asymptotic rows.
//!
//! Table 3 of the paper gives, per problem class, the working-memory
//! requirements of the 1-pass / 2-pass streaming algorithms and the
//! 2-round / randomized / 3-round MapReduce algorithms. This harness
//! instruments actual peak residency (in points) for each variant on
//! the same input and prints them side by side with the theory shape.

use diversity_bench::{scaled, Table};
use diversity_core::Problem;
use diversity_datasets::sphere_shell;
use diversity_mapreduce::partition::split_random;
use diversity_mapreduce::{randomized, three_round, two_round, MapReduceRuntime};
use diversity_streaming::{Smm, SmmExt, SmmGen};
use metric::Euclidean;

fn main() {
    let n = scaled(100_000);
    // k chosen so the randomized delegate cap Θ(max{log n, k/ℓ}) is
    // genuinely below k (the Theorem 7 saving regime).
    let k = 40;
    let k_prime = 64;
    let ell = 8;
    let (points, _) = sphere_shell(n, k, 3, 606);
    println!("ablation: measured peak memory (points), n={n}, k={k}, k'={k_prime}, l={ell}");

    // ---- Streaming variants ------------------------------------------
    let mut smm = Smm::new(Euclidean, k, k_prime);
    let mut smm_peak = 0;
    for p in &points {
        smm.push(p.clone());
        smm_peak = smm_peak.max(smm.memory_points());
    }
    let mut ext = SmmExt::new(Euclidean, k, k_prime);
    let mut ext_peak = 0;
    for p in &points {
        ext.push(p.clone());
        ext_peak = ext_peak.max(ext.memory_points());
    }
    let mut gen = SmmGen::new(Euclidean, k, k_prime);
    let mut gen_peak = 0;
    for p in &points {
        gen.push(p.clone());
        gen_peak = gen_peak.max(gen.memory_points());
    }

    let mut stream_table = Table::new(
        "Table 3 (streaming rows) — peak resident points",
        &["algorithm", "theory shape", "measured", "bound value"],
    );
    stream_table.row(vec![
        "SMM (1 pass, r-edge/cycle)".into(),
        "Θ((1/ε)^D k)".into(),
        smm_peak.to_string(),
        format!("2(k'+1) = {}", 2 * (k_prime + 1)),
    ]);
    stream_table.row(vec![
        "SMM-EXT (1 pass, 4 problems)".into(),
        "Θ((1/ε)^D k²)".into(),
        ext_peak.to_string(),
        format!("k(k'+1)+k'+1 = {}", k * (k_prime + 1) + k_prime + 1),
    ]);
    stream_table.row(vec![
        "SMM-GEN (pass 1 of 2)".into(),
        "Θ((α²/ε)^D k)".into(),
        gen_peak.to_string(),
        format!("2(k'+1) = {}", 2 * (k_prime + 1)),
    ]);
    stream_table.print();

    // ---- MapReduce variants ------------------------------------------
    // The delegate-class rows use remote-tree (same GMM-EXT/GEN
    // core-sets as remote-clique, but a GMM-based round 2, so the
    // harness is not dominated by the matching's O(k·|union|²) scans).
    let rt = MapReduceRuntime::with_threads(8);
    let parts = split_random(points.clone(), ell, 44);
    let det_e = two_round::two_round(Problem::RemoteEdge, &parts, &Euclidean, k, k_prime, &rt);
    let det_c = two_round::two_round(Problem::RemoteTree, &parts, &Euclidean, k, k_prime, &rt);
    let rnd =
        randomized::randomized_two_round(Problem::RemoteTree, &parts, &Euclidean, k, k_prime, &rt);
    let gen3 = three_round::three_round(Problem::RemoteTree, &parts, &Euclidean, k, k_prime, &rt);

    let mut mr_table = Table::new(
        "Table 3 (MapReduce rows) — round-2 reducer residency (points)",
        &["algorithm", "theory shape", "measured M_L", "shuffle r1"],
    );
    mr_table.row(vec![
        "2-round det. (r-edge)".into(),
        "Θ(√((1/ε)^D k n))".into(),
        det_e.stats.rounds[1].max_local_points.to_string(),
        det_e.stats.rounds[0].emitted_points.to_string(),
    ]);
    mr_table.row(vec![
        "2-round det. (r-tree)".into(),
        "Θ(k√((1/ε)^D n))".into(),
        det_c.stats.rounds[1].max_local_points.to_string(),
        det_c.stats.rounds[0].emitted_points.to_string(),
    ]);
    mr_table.row(vec![
        "2-round randomized (r-tree)".into(),
        "Θ(√((1/ε)^D k n log n))".into(),
        rnd.stats.rounds[1].max_local_points.to_string(),
        rnd.stats.rounds[0].emitted_points.to_string(),
    ]);
    mr_table.row(vec![
        "3-round gen. core-sets (r-tree)".into(),
        "Θ(√((α²/ε)^D k n))".into(),
        gen3.stats.rounds[1].max_local_points.to_string(),
        gen3.stats.rounds[0].emitted_points.to_string(),
    ]);
    mr_table.print();
    println!(
        "\npaper shape: SMM-EXT pays a k× factor over SMM; GEN variants \
         remove it; randomized sits between; 3-round shuffles k'-sized \
         summaries instead of k·k'."
    );
}
