//! Figure 1: approximation ratio of the streaming algorithm for
//! different `k` and `k'` on the musiXmatch(-like) dataset.
//!
//! Paper setup: musiXmatch (234,363 songs, 5,000-word vectors, cosine
//! distance), remote-edge, `k ∈ {8, 32, 128}`, `k' ∈ {k, 2k, 4k, 8k}`
//! (geometric progression because of the high dimensionality).
//! Ratios are relative to the best solution found by the MapReduce
//! algorithm with maximum parallelism and large memory.
//!
//! Paper's reported shape: ratios grow with `k` (≈1.05 at k=8 up to
//! ≈2.4 at k=128 with k'=k) and shrink toward 1 as `k'` grows.

use diversity_bench::{fmt_ratio, reference_value, scaled, trials, Table};
use diversity_core::Problem;
use diversity_datasets::{musixmatch_like, BagOfWordsConfig};
use diversity_streaming::pipeline::one_pass;
use metric::CosineDistance;

fn main() {
    let n = scaled(8_000); // paper: 234,363
    let cfg = BagOfWordsConfig::default();
    let docs = musixmatch_like(n, 4242, &cfg);
    println!("fig1: streaming approximation ratio, musiXmatch-like, n={n}, cosine distance");

    let mut table = Table::new(
        "Figure 1 — streaming approximation ratio (remote-edge, musiXmatch-like)",
        &["k", "k'=k", "k'=2k", "k'=4k", "k'=8k"],
    );
    for &k in &[8usize, 32, 128] {
        // Grid first; the reference is the best value seen anywhere,
        // including the dedicated high-memory MR runs — the paper's
        // normalization.
        let mut values = Vec::new();
        for &mult in &[1usize, 2, 4, 8] {
            let k_prime = mult * k;
            let mut best = f64::NEG_INFINITY;
            for t in 0..trials() {
                // Different stream orders per trial via rotation.
                let rot = (t * docs.len()) / trials().max(1);
                let sol = one_pass(
                    Problem::RemoteEdge,
                    CosineDistance,
                    k,
                    k_prime,
                    docs[rot..].iter().chain(docs[..rot].iter()).cloned(),
                );
                best = best.max(sol.value);
            }
            values.push(best);
        }
        let mut reference = reference_value(Problem::RemoteEdge, &docs, &CosineDistance, k, None);
        for &v in &values {
            reference = reference.max(v);
        }
        let mut cells = vec![k.to_string()];
        cells.extend(values.iter().map(|&v| fmt_ratio(reference, v)));
        table.row(cells);
    }
    table.print();
    println!(
        "\npaper shape: ratios increase with k, decrease with k'; \
         k'=8k should sit close to 1.0 for k=8."
    );
}
