//! Ablation (Section 7.2, text): adversarial partitioning.
//!
//! "Since in real scenarios the input might not be distributed randomly
//! among the reducers, we also experimented with an 'adversarial'
//! partitioning of the input: each reducer was given points coming from
//! a region of small volume... the approximation ratios worsen by up to
//! 10%."
//!
//! This harness compares random, round-robin, and sorted-chunk
//! (adversarial) partitionings at several `k'`.

use diversity_bench::{fmt_ratio, reference_value, scaled, Table};
use diversity_core::Problem;
use diversity_datasets::sphere_shell;
use diversity_mapreduce::partition::{split_random, split_round_robin, split_sorted_by};
use diversity_mapreduce::two_round::two_round;
use diversity_mapreduce::MapReduceRuntime;
use metric::Euclidean;

fn main() {
    let n = scaled(100_000);
    let k = 64;
    let ell = 16;
    let (points, _) = sphere_shell(n, k, 3, 2020);
    let reference = reference_value(Problem::RemoteEdge, &points, &Euclidean, k, None);
    let rt = MapReduceRuntime::with_threads(16);
    println!("ablation: partitioning strategies, n={n}, k={k}, {ell} reducers");

    let mut table = Table::new(
        "Adversarial-partitioning ablation — approximation ratio (remote-edge)",
        &["k'", "random", "round-robin", "adversarial", "degradation"],
    );
    for &mult in &[1usize, 2, 4, 8] {
        let k_prime = mult * k;
        let random = two_round(
            Problem::RemoteEdge,
            &split_random(points.clone(), ell, 5),
            &Euclidean,
            k,
            k_prime,
            &rt,
        );
        let rrobin = two_round(
            Problem::RemoteEdge,
            &split_round_robin(points.clone(), ell),
            &Euclidean,
            k,
            k_prime,
            &rt,
        );
        let adversarial = two_round(
            Problem::RemoteEdge,
            &split_sorted_by(points.clone(), ell, |p| p.coords()[0]),
            &Euclidean,
            k,
            k_prime,
            &rt,
        );
        let degradation = random.solution.value / adversarial.solution.value;
        table.row(vec![
            k_prime.to_string(),
            fmt_ratio(reference, random.solution.value),
            fmt_ratio(reference, rrobin.solution.value),
            fmt_ratio(reference, adversarial.solution.value),
            format!("{degradation:.3}"),
        ]);
    }
    table.print();
    println!("\npaper shape: adversarial worsens ratios by up to ~10% (degradation ≤ ~1.10).");
}
