//! Ablation: warm-path serving (`ShardPool::query`) vs the cold
//! per-query rebuild (`Task::run_sharded`) — the gap the serving layer
//! exists to close.
//!
//! Measures, at n ≥ 40k (scale with `DIVMAX_SCALE`), for remote-edge
//! and remote-clique:
//!
//! * **warm query latency** — extraction under read locks + merge +
//!   combiner solve, over a pool whose engines absorbed the data as
//!   updates (min over `DIVMAX_TRIALS` trials);
//! * **cold query latency** — `run_sharded`, which rebuilds every
//!   shard engine before the identical extract/merge/solve;
//! * **update throughput** — amortized insert cost into the pool, the
//!   price the warm path pays once instead of per query;
//! * checkpoint size and snapshot/restore round-trip time, since a
//!   serving fleet cycles through them on every deploy.
//!
//! Records the headline numbers into `BENCH_serve.json` at the
//! workspace root (CI uploads it as an artifact).

use diversity::prelude::*;
use diversity_bench::{fmt_secs, scaled, timed, trials, Table};
use diversity_datasets::gaussian_clusters;
use diversity_serve::{Serve, ShardPool};

fn main() {
    let n = scaled(40_000);
    let shards = 8;
    let trials = trials();
    println!("ablation_serve: n={n}, shards={shards}, trials={trials}");

    let points = gaussian_clusters(n, 24, 3, 40.0, 4242);
    let parts = mapreduce::partition::split_random(points.clone(), shards, 5);
    let rt = mapreduce::MapReduceRuntime::with_threads(shards);

    let mut headline: Vec<String> = Vec::new();
    // Per-problem serving configs: remote-edge extracts plain kernels
    // (k' sized generously); remote-clique's injective extraction
    // multiplies the kernel by up to k delegates per center, so a
    // serving deployment keeps k' tight to bound the union the
    // combiner must solve — that is what the smaller (k, k') encodes.
    for (problem, k, k_prime) in [
        (Problem::RemoteEdge, 16usize, 128usize),
        (Problem::RemoteClique, 8, 32),
    ] {
        println!("\n== {problem}: k={k}, k'={k_prime} ==");
        let task = Task::new(problem, k).budget(Budget::KPrime(k_prime));

        // Build the pool once — the amortized steady state — and
        // measure what that amortization costs per update.
        let (pool, build_secs) = timed(|| {
            let pool: ShardPool<VecPoint, _> = task.serve_seeded(&parts, Euclidean).unwrap();
            pool
        });
        let update_us = build_secs * 1e6 / n as f64;

        // Warm vs cold, min over trials (cold includes engine builds).
        let mut warm_secs = f64::INFINITY;
        let mut warm_value = 0.0;
        for _ in 0..trials {
            let (report, secs) = timed(|| pool.query(&task).unwrap());
            warm_secs = warm_secs.min(secs);
            warm_value = report.value;
        }
        let mut cold_secs = f64::INFINITY;
        let mut cold_value = 0.0;
        for _ in 0..trials {
            let (report, secs) = timed(|| task.run_sharded(&parts, &Euclidean, &rt).unwrap());
            cold_secs = cold_secs.min(secs);
            cold_value = report.value;
        }

        // Warm-path latency distribution through the obs layer: the
        // same queries with a recorder installed; the quantiles come
        // out of the Report's own telemetry snapshot instead of
        // hand-rolled timing loops. (Kept separate from the min-trial
        // timings above so those stay recorder-free.)
        let registry = std::sync::Arc::new(diversity_obs::Registry::new());
        diversity_obs::install(registry);
        let mut last_report = None;
        for _ in 0..trials.max(8) {
            last_report = Some(pool.query(&task).unwrap());
        }
        diversity_obs::uninstall();
        let telemetry = last_report
            .unwrap()
            .telemetry
            .expect("recorder was installed");
        let e2e = telemetry
            .histogram("serve.query.e2e_ns")
            .expect("warm queries recorded");
        let lock_wait = telemetry
            .histogram("serve.lock.read_wait_ns")
            .expect("read locks recorded");
        println!(
            "warm e2e p50={}ns p99={}ns; per-shard read-lock wait p99={}ns",
            e2e.p50(),
            e2e.p99(),
            lock_wait.p99()
        );

        // Checkpoint economics.
        let (json, snap_secs) = timed(|| {
            serde_json::to_string(&pool.checkpoint().expect("healthy pool checkpoints"))
                .expect("serialize pool")
        });
        let (restored, restore_secs) = timed(|| {
            let state = serde_json::from_str(&json).expect("deserialize pool");
            ShardPool::<VecPoint, _>::restore(Euclidean, state).expect("restore checkpoint")
        });
        let replay = restored.query(&task).unwrap();
        assert_eq!(
            replay.value.to_bits(),
            pool.query(&task).unwrap().value.to_bits(),
            "{problem}: restored pool must answer bit-identically"
        );

        let mut table = Table::new(
            &format!("warm serving vs cold rebuild ({problem})"),
            &["path", "time/query", "value", "notes"],
        );
        table.row(vec![
            "warm (pool.query)".into(),
            fmt_secs(warm_secs),
            format!("{warm_value:.4}"),
            format!("updates amortized at {update_us:.1}us/insert"),
        ]);
        table.row(vec![
            "cold (run_sharded)".into(),
            fmt_secs(cold_secs),
            format!("{cold_value:.4}"),
            "rebuilds every shard engine".into(),
        ]);
        table.row(vec![
            "checkpoint".into(),
            fmt_secs(snap_secs),
            "-".into(),
            format!("{} bytes; restore {}", json.len(), fmt_secs(restore_secs)),
        ]);
        table.print();
        let speedup = cold_secs / warm_secs.max(1e-12);
        println!("warm-path speedup over per-query rebuild: {speedup:.1}x\n");
        assert!(
            warm_secs < cold_secs,
            "{problem}: the warm path must beat the cold per-query rebuild"
        );

        headline.push(format!(
            concat!(
                "  \"{problem}\": {{\n",
                "    \"k\": {k},\n",
                "    \"k_prime\": {k_prime},\n",
                "    \"warm_query_seconds\": {warm:.6},\n",
                "    \"cold_query_seconds\": {cold:.6},\n",
                "    \"warm_speedup\": {speedup:.2},\n",
                "    \"insert_amortized_us\": {update:.2},\n",
                "    \"checkpoint_bytes\": {bytes},\n",
                "    \"checkpoint_seconds\": {snap:.6},\n",
                "    \"restore_seconds\": {restore:.6},\n",
                "    \"warm_e2e_p50_ns\": {p50},\n",
                "    \"warm_e2e_p99_ns\": {p99},\n",
                "    \"read_lock_wait_p99_ns\": {lock_p99}\n",
                "  }}"
            ),
            problem = problem,
            k = k,
            k_prime = k_prime,
            warm = warm_secs,
            cold = cold_secs,
            speedup = speedup,
            update = update_us,
            bytes = json.len(),
            snap = snap_secs,
            restore = restore_secs,
            p50 = e2e.p50(),
            p99 = e2e.p99(),
            lock_p99 = lock_wait.p99(),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"n\": {n},\n  \"shards\": {shards},\n{}\n}}\n",
        headline.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
