//! Ablation: fully dynamic engine vs from-scratch recompute.
//!
//! Measures, at n ≥ 50k (scale with `DIVMAX_SCALE`):
//!
//! * build throughput (inserts/s) and churn throughput (interleaved
//!   delete+insert pairs/s) of the dynamic cover hierarchy;
//! * solve latency from the maintained structure vs
//!   `pipeline::coreset_then_solve` recomputing a GMM coreset from
//!   scratch on the current point set;
//! * the headline ratio: (update + solve) vs recompute — the dynamic
//!   engine's reason to exist. Expected ≥ 10x at these sizes.

use diversity_bench::{fmt_secs, scaled, timed, Table};
use diversity_core::{pipeline, Problem};
use diversity_datasets::gaussian_clusters;
use diversity_dynamic::DynamicDiversity;
use metric::Euclidean;

fn main() {
    let n = scaled(50_000);
    let churn_ops = scaled(5_000);
    let k = 16;
    let budget = 8 * k;
    println!("ablation_dynamic: n={n}, churn={churn_ops} delete+insert pairs, k={k}, k'={budget}");

    let points = gaussian_clusters(n + churn_ops, 24, 3, 40.0, 4242);
    let (build_pool, churn_pool) = points.split_at(n);

    // Build phase.
    let mut engine = DynamicDiversity::new(Euclidean);
    let (ids, build_secs) = timed(|| {
        build_pool
            .iter()
            .map(|p| engine.insert(p.clone()))
            .collect::<Vec<_>>()
    });
    let build_evals = engine.stats().distance_evals;

    // Churn phase: delete the oldest alive, insert a fresh point.
    engine.reset_stats();
    let (_, churn_secs) = timed(|| {
        for (i, p) in churn_pool.iter().enumerate() {
            engine.delete(ids[i]);
            engine.insert(p.clone());
        }
    });
    let churn_evals = engine.stats().distance_evals;
    let per_update_secs = churn_secs / (2 * churn_ops) as f64;

    // Solve phase: maintained structure vs recompute-from-scratch.
    let problem = Problem::RemoteEdge;
    let (dyn_sol, dyn_solve_secs) = timed(|| engine.solve_with_budget(problem, k, budget));
    let snapshot: Vec<_> = engine.alive().into_iter().map(|(_, p)| p).collect();
    let (scratch_sol, scratch_secs) =
        timed(|| pipeline::coreset_then_solve(problem, &snapshot, &Euclidean, k, budget));

    let mut table = Table::new(
        "dynamic engine vs recompute-from-scratch (remote-edge)",
        &["phase", "time", "per-op", "dist-evals/op"],
    );
    table.row(vec![
        format!("build n={n}"),
        fmt_secs(build_secs),
        format!("{:.1}µs", build_secs / n as f64 * 1e6),
        format!("{:.0}", build_evals as f64 / n as f64),
    ]);
    table.row(vec![
        format!("churn {churn_ops}x(del+ins)"),
        fmt_secs(churn_secs),
        format!("{:.1}µs", per_update_secs * 1e6),
        format!("{:.0}", churn_evals as f64 / (2 * churn_ops) as f64),
    ]);
    table.row(vec![
        "solve (dynamic)".into(),
        fmt_secs(dyn_solve_secs),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "solve (recompute)".into(),
        fmt_secs(scratch_secs),
        "-".into(),
        "-".into(),
    ]);
    table.print();

    let update_plus_solve = per_update_secs + dyn_solve_secs;
    println!(
        "\nsolution values: dynamic {:.4}, recompute {:.4} (ratio {:.3})",
        dyn_sol.value,
        scratch_sol.value,
        dyn_sol.value / scratch_sol.value
    );
    println!(
        "coreset: level {} | kernel {} | radius {:.3}",
        dyn_sol.coreset.level, dyn_sol.coreset.kernel_size, dyn_sol.coreset.radius
    );
    println!(
        "headline: update+solve {:.1}µs vs recompute {:.1}µs — {:.0}x faster",
        update_plus_solve * 1e6,
        scratch_secs * 1e6,
        scratch_secs / update_plus_solve
    );
    // The acceptance bar applies at full scale; scaled-down smoke runs
    // only report the ratio.
    if n >= 50_000 {
        assert!(
            scratch_secs / update_plus_solve >= 10.0,
            "dynamic path must beat recompute by >= 10x at n = {n}"
        );
    }
}
