//! Shared harness utilities for the experiment benches.
//!
//! Every `benches/*.rs` target (one per table/figure of the paper) uses
//! these helpers for: environment-based scaling, paper-style table
//! printing, and reference-solution computation.
//!
//! ## Scaling
//!
//! The paper's experiments run up to 1.6 billion points on a 16-node
//! cluster; the defaults here are laptop-sized. Scale with:
//!
//! * `DIVMAX_SCALE` — float multiplier applied to every dataset size
//!   (e.g. `DIVMAX_SCALE=10 cargo bench` for a 10× run);
//! * `DIVMAX_TRIALS` — number of repetitions averaged per cell
//!   (default 3; the paper averages ≥ 10).

use diversity_core::{pipeline, Problem};
use diversity_mapreduce::partition::split_random;
use diversity_mapreduce::two_round::two_round;
use diversity_mapreduce::MapReduceRuntime;
use metric::Metric;
use std::time::Instant;

/// Applies `DIVMAX_SCALE` to a default dataset size.
pub fn scaled(default_n: usize) -> usize {
    let scale = std::env::var("DIVMAX_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    ((default_n as f64) * scale).max(1.0) as usize
}

/// Number of trials per experimental cell (`DIVMAX_TRIALS`, default 3).
pub fn trials() -> usize {
    std::env::var("DIVMAX_TRIALS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(3)
        .max(1)
}

/// A paper-style results table, printed as aligned plain text (the
/// same rows/series the paper's figures plot).
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("\n### {}", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            out
        };
        println!("{}", line(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Computes the reference ("best known") value the paper normalizes
/// ratios by: "the best solution found by many runs of our MapReduce
/// algorithm with maximum parallelism and large local memory", plus —
/// where the caller knows one — a planted lower bound.
///
/// Runs the 2-round algorithm with ℓ = 16 and a generous `k' = 8k`
/// across three seeds, plus a single-machine core-set run, and returns
/// the best value seen.
pub fn reference_value<P, M>(
    problem: Problem,
    points: &[P],
    metric: &M,
    k: usize,
    planted: Option<f64>,
) -> f64
where
    P: Clone + Send + Sync,
    M: Metric<P>,
{
    let rt = MapReduceRuntime::default();
    let k_prime = 8 * k;
    let mut best = planted.unwrap_or(f64::NEG_INFINITY);
    for seed in [11u64, 22, 33] {
        let parts = split_random(points.to_vec(), 16, seed);
        let out = two_round(problem, &parts, metric, k, k_prime, &rt);
        best = best.max(out.solution.value);
    }
    let single = pipeline::coreset_then_solve(problem, points, metric, k, k_prime);
    best.max(single.value)
}

/// Formats a ratio for table cells.
pub fn fmt_ratio(reference: f64, value: f64) -> String {
    if value <= 0.0 {
        return "inf".to_string();
    }
    format!("{:.3}", reference / value)
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_default_is_identity() {
        // (assumes DIVMAX_SCALE unset in the test environment)
        if std::env::var("DIVMAX_SCALE").is_err() {
            assert_eq!(scaled(1000), 1000);
        }
    }

    #[test]
    fn table_rejects_mismatched_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["only-one".into()])
        }));
        assert!(r.is_err());
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(2.0, 1.0), "2.000");
        assert_eq!(fmt_ratio(1.0, 0.0), "inf");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
    }
}
