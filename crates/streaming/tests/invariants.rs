//! Property tests for the streaming invariants of Section 4.

use diversity_core::Problem;
use diversity_streaming::{pipeline, Smm, SmmExt, SmmGen};
use metric::{Euclidean, Metric, VecPoint};
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = Vec<VecPoint>> {
    prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 20..200)
        .prop_map(|v| v.into_iter().map(|(x, y)| VecPoint::from([x, y])).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SMM output: at least k points (stream permitting), at most
    /// 2(k'+1); all stream points covered within the radius bound.
    #[test]
    fn smm_size_and_coverage(points in stream_strategy(), k in 1usize..6, extra in 0usize..6) {
        let k_prime = k + extra;
        let res = Smm::run(Euclidean, k, k_prime, points.iter().cloned());
        prop_assert!(res.coreset.len() >= k.min(points.len()));
        prop_assert!(res.coreset.len() <= 2 * (k_prime + 1));
        let bound = 4.0 * res.final_threshold;
        if res.phases > 0 {
            for p in &points {
                let d = Euclidean.distance_to_set(p, &res.coreset);
                prop_assert!(d <= bound + 1e-9, "coverage {d} > {bound}");
            }
        } else {
            // No phase: every point was simply kept.
            prop_assert_eq!(res.coreset.len(), points.len());
        }
    }

    /// SMM-EXT: per-center delegate sets of size <= k; output within
    /// memory budget; covers the stream like SMM.
    #[test]
    fn smm_ext_size_bounds(points in stream_strategy(), k in 2usize..6) {
        let k_prime = k + 3;
        let res = SmmExt::run(Euclidean, k, k_prime, points.iter().cloned());
        prop_assert!(res.coreset.len() >= k.min(points.len()));
        prop_assert!(res.coreset.len() <= k * (k_prime + 1));
        prop_assert!(res.kernel.len() <= k_prime + 1);
        prop_assert!(res.peak_memory_points <= k * (k_prime + 1) + (k_prime + 1));
    }

    /// SMM-GEN agrees with SMM-EXT on kernels and total mass is capped
    /// identically.
    #[test]
    fn smm_gen_mass(points in stream_strategy(), k in 2usize..6) {
        let k_prime = k + 3;
        let gen = SmmGen::run(Euclidean, k, k_prime, points.iter().cloned());
        prop_assert!(gen.coreset.size() <= k_prime + 1);
        prop_assert!(gen.coreset.expanded_size() <= k * (k_prime + 1));
        prop_assert!(gen.coreset.expanded_size() >= gen.coreset.size());
        // Counts never exceed k.
        for p in gen.coreset.pairs() {
            prop_assert!(p.multiplicity <= k);
        }
    }

    /// The one-pass pipeline returns k distinct points with a finite
    /// positive value for every problem (streams here always have >= 20
    /// points and non-zero diameter almost surely).
    #[test]
    fn one_pass_shape(points in stream_strategy(), k in 2usize..5) {
        for problem in [Problem::RemoteEdge, Problem::RemoteClique, Problem::RemoteTree] {
            let sol = pipeline::one_pass(problem, Euclidean, k, 2 * k, points.iter().cloned());
            prop_assert_eq!(sol.points.len(), k);
            prop_assert!(sol.value.is_finite());
        }
    }

    /// Streaming solution value can never exceed the sequential
    /// solution on the full (in-memory) input by more than fp noise —
    /// the core-set only discards options. And with a huge k' (core-set
    /// = everything) it must match the sequential run exactly for
    /// GMM-based problems.
    #[test]
    fn streaming_vs_inmemory_sandwich(points in stream_strategy()) {
        let k = 3;
        let full = diversity_core::seq::solve(Problem::RemoteEdge, &points, &Euclidean, k);
        let huge = pipeline::one_pass(
            Problem::RemoteEdge,
            Euclidean,
            k,
            points.len() + 1,
            points.iter().cloned(),
        );
        // k' > n means no phase ever ran: core-set == stream, so the
        // sequential algorithm sees the same input.
        prop_assert!((huge.value - full.value).abs() < 1e-9);
    }
}
