//! Checkpoint/resume: a long-running stream can be serialized mid-way
//! and resumed with identical results — the operational requirement for
//! deploying the one-pass algorithms on unbounded feeds.

use diversity_streaming::{Smm, SmmExt, SmmGen};
use metric::{Euclidean, VecPoint};

fn stream(n: usize) -> Vec<VecPoint> {
    (0..n)
        .map(|i| VecPoint::from([((i * 37) % 509) as f64, ((i * 101) % 211) as f64]))
        .collect()
}

#[test]
fn smm_checkpoint_roundtrip_is_lossless() {
    let points = stream(2_000);
    let (first, second) = points.split_at(points.len() / 2);

    // Uninterrupted run.
    let direct = Smm::run(Euclidean, 6, 12, points.iter().cloned());

    // Interrupted run: push half, serialize, restore, push the rest.
    let mut s = Smm::new(Euclidean, 6, 12);
    for p in first {
        s.push(p.clone());
    }
    let json = serde_json::to_string(s.state()).expect("serialize checkpoint");
    let restored = serde_json::from_str(&json).expect("deserialize checkpoint");
    let mut s = Smm::resume(Euclidean, restored);
    for p in second {
        s.push(p.clone());
    }
    let resumed = s.finish();

    assert_eq!(direct.coreset, resumed.coreset);
    assert_eq!(direct.phases, resumed.phases);
    assert_eq!(direct.final_threshold, resumed.final_threshold);
}

#[test]
fn smm_ext_checkpoint_roundtrip_is_lossless() {
    let points = stream(1_500);
    let (first, second) = points.split_at(700);

    let direct = SmmExt::run(Euclidean, 4, 8, points.iter().cloned());

    let mut s = SmmExt::new(Euclidean, 4, 8);
    for p in first {
        s.push(p.clone());
    }
    let json = serde_json::to_string(s.state()).expect("serialize");
    let mut s = SmmExt::resume(Euclidean, serde_json::from_str(&json).expect("deserialize"));
    for p in second {
        s.push(p.clone());
    }
    let resumed = s.finish();

    assert_eq!(direct.coreset, resumed.coreset);
    assert_eq!(direct.kernel, resumed.kernel);
}

#[test]
fn smm_gen_checkpoint_roundtrip_is_lossless() {
    let points = stream(1_500);
    let (first, second) = points.split_at(400);

    let direct = SmmGen::run(Euclidean, 5, 10, points.iter().cloned());

    let mut s = SmmGen::new(Euclidean, 5, 10);
    for p in first {
        s.push(p.clone());
    }
    let json = serde_json::to_string(s.state()).expect("serialize");
    let mut s = SmmGen::resume(Euclidean, serde_json::from_str(&json).expect("deserialize"));
    for p in second {
        s.push(p.clone());
    }
    let resumed = s.finish();

    assert_eq!(direct.kernel, resumed.kernel);
    assert_eq!(direct.coreset, resumed.coreset);
    assert_eq!(direct.delta, resumed.delta);
}

#[test]
fn checkpoint_at_every_tenth_point_still_lossless() {
    // Paranoid variant: serialize/deserialize every 10 points.
    let points = stream(300);
    let direct = Smm::run(Euclidean, 3, 6, points.iter().cloned());

    let mut s = Smm::new(Euclidean, 3, 6);
    for (i, p) in points.iter().enumerate() {
        s.push(p.clone());
        if i % 10 == 9 {
            let json = serde_json::to_string(s.state()).expect("serialize");
            s = Smm::resume(Euclidean, serde_json::from_str(&json).expect("deserialize"));
        }
    }
    let resumed = s.finish();
    assert_eq!(direct.coreset, resumed.coreset);
}
