//! The doubling-algorithm phase machinery shared by SMM, SMM-EXT and
//! SMM-GEN.
//!
//! The machinery itself lives in [`diversity_core::doubling`] so that
//! the fully dynamic engine (`diversity-dynamic`) can share the payload
//! bookkeeping and scale geometry; this module re-exports it under the
//! streaming crate's historical path.

pub use diversity_core::doubling::{
    distance_to_scale, scale_to_distance, Center, DelegateCount, DelegateSet, DoublingCore,
    FinishedCore, Payload,
};
