//! The two-pass streaming algorithm of Theorem 9.
//!
//! For remote-clique, remote-star, remote-bipartition and remote-tree,
//! the memory of the one-pass algorithm carries a `k²` factor (each
//! center materializes up to `k` delegates). Theorem 9 removes it:
//!
//! * **pass 1**: `SMM-GEN` builds a *generalized* core-set `T` (counts,
//!   not delegates) in `Θ((α²/ε)^D k)` memory; the adapted sequential
//!   algorithm (Fact 2) then extracts a coherent subset `T̂ ⊑ T` with
//!   `m(T̂) = k` — still only counts;
//! * **pass 2**: stream again, materializing an `r_T`-instantiation of
//!   `T̂`: for each pair `(p, m_p)`, `m_p` distinct stream items within
//!   `r_T` of `p`. A point feasible for several still-needy pairs is
//!   *retained* (the paper's prescription) rather than assigned
//!   greedily, and a maximum bipartite matching at stream end
//!   distributes the retained points — greedy immediate assignment
//!   could starve a pair whose candidates were all claimed by another.
//!
//! By Lemma 7 the instantiated set loses at most `f(k)·2r_T` diversity,
//! which the parameter choice folds into the final `α + ε`.

use crate::{SmmGen, StreamSolution};
use diversity_core::{generalized, GeneralizedCoreset, Problem};
use metric::{DistanceMatrix, Metric};

/// Outcome of [`two_pass`]: the solution plus instrumentation.
#[derive(Clone, Debug)]
pub struct TwoPassResult<P> {
    /// The instantiated k-point solution.
    pub solution: StreamSolution<P>,
    /// The instantiation radius promised by pass 1 (`4·d_ℓ`).
    pub delta: f64,
    /// The radius actually needed by pass 2 (≤ `delta` unless repair
    /// widened it — a quality warning, recorded honestly).
    pub achieved_delta: f64,
    /// Peak resident points in pass 1.
    pub pass1_peak_memory: usize,
    /// Peak retained points in pass 2 (needy quota + reservoir).
    pub pass2_peak_memory: usize,
}

/// Two-pass streaming solver. The stream is consumed twice, so the
/// caller provides a replayable source (`FnMut() -> I`).
///
/// # Panics
/// Panics unless `1 <= k <= k_prime`, the stream has at least `k`
/// points, and `problem` is one of the four injective-proxy problems
/// (remote-edge/cycle have no delegate memory to save — use
/// [`crate::pipeline::one_pass`]).
pub fn two_pass<P, M, I, F>(
    problem: Problem,
    metric: M,
    k: usize,
    k_prime: usize,
    mut stream: F,
) -> TwoPassResult<P>
where
    P: Clone + PartialEq + Sync,
    M: Metric<P>,
    I: IntoIterator<Item = P>,
    F: FnMut() -> I,
{
    assert!(
        problem.needs_injective_proxy(),
        "two-pass algorithm targets the injective-proxy problems"
    );

    // ---- Pass 1: generalized core-set + multiset sequential solve ----
    let gen = SmmGen::run(&metric, k, k_prime, stream());
    assert!(
        gen.coreset.expanded_size() >= k,
        "stream shorter than k (m(T) = {})",
        gen.coreset.expanded_size()
    );
    let coherent = generalized::solve_multiset(problem, &gen.kernel, &metric, &gen.coreset, k);
    let delta = gen.delta;

    // ---- Pass 2: r_T-instantiation ----
    let inst = instantiation_pass(&metric, &gen.kernel, &coherent, delta, stream());

    let value = {
        let dm = DistanceMatrix::build(&inst.points, &metric);
        diversity_core::eval::evaluate(problem, &dm)
    };
    TwoPassResult {
        solution: StreamSolution {
            points: inst.points,
            value,
        },
        delta,
        achieved_delta: inst.achieved_delta,
        pass1_peak_memory: gen.peak_memory_points,
        pass2_peak_memory: inst.peak_memory,
    }
}

struct PassTwoOutcome<P> {
    points: Vec<P>,
    achieved_delta: f64,
    peak_memory: usize,
}

/// The second pass: collect delegates for each needy pair.
///
/// Strategy (see module docs): a stream item within `δ` of exactly one
/// needy pair is assigned immediately; an item feasible for several is
/// retained in a bounded reservoir and distributed by maximum bipartite
/// matching at the end. Items beyond `δ` of everything feed per-pair
/// *backup* slots used only if repair is needed (with the widened
/// radius reported).
fn instantiation_pass<P, M, I>(
    metric: &M,
    kernel: &[P],
    coherent: &GeneralizedCoreset,
    delta: f64,
    stream: I,
) -> PassTwoOutcome<P>
where
    P: Clone + PartialEq + Sync,
    M: Metric<P>,
    I: IntoIterator<Item = P>,
{
    let pairs = coherent.pairs();
    let n_pairs = pairs.len();
    let total_need: usize = pairs.iter().map(|p| p.multiplicity).sum();

    // Delegates assigned so far, per pair.
    let mut assigned: Vec<Vec<P>> = vec![Vec::new(); n_pairs];
    let mut need: Vec<usize> = pairs.iter().map(|p| p.multiplicity).collect();
    // Reservoir of multi-feasible items: (point, feasible pair ids).
    let mut reservoir: Vec<(P, Vec<usize>)> = Vec::new();
    let reservoir_cap = 2 * total_need + 16;
    // One backup (nearest out-of-range item) per pair, for repair.
    let mut backup: Vec<Option<(P, f64)>> = vec![None; n_pairs];
    let mut peak_memory = 0usize;

    for item in stream {
        let mut feasible: Vec<usize> = Vec::new();
        let mut nearest: (usize, f64) = (usize::MAX, f64::INFINITY);
        for (j, pair) in pairs.iter().enumerate() {
            let d = metric.distance(&item, &kernel[pair.index]);
            if d < nearest.1 {
                nearest = (j, d);
            }
            if d <= delta && need[j] > 0 {
                feasible.push(j);
            }
        }
        match feasible.len() {
            0 => {
                // Keep as backup for its nearest pair if still needy.
                let (j, d) = nearest;
                if j != usize::MAX && need[j] > 0 {
                    match &backup[j] {
                        Some((_, bd)) if *bd <= d => {}
                        _ => backup[j] = Some((item, d)),
                    }
                }
            }
            1 => {
                let j = feasible[0];
                assigned[j].push(item);
                need[j] -= 1;
                if need[j] == 0 {
                    // Pairs just satisfied free their reservoir claims.
                    for (_, fs) in reservoir.iter_mut() {
                        fs.retain(|&f| f != j);
                    }
                    reservoir.retain(|(_, fs)| !fs.is_empty());
                }
            }
            _ => {
                if reservoir.len() < reservoir_cap {
                    reservoir.push((item, feasible));
                }
            }
        }
        peak_memory = peak_memory
            .max(assigned.iter().map(Vec::len).sum::<usize>() + reservoir.len() + n_pairs);
    }

    // Distribute the reservoir by maximum bipartite matching
    // (augmenting paths; sizes here are O(k), so this is trivial).
    let slots: Vec<usize> = need.clone();
    let matching = match_reservoir(&reservoir, &slots);
    for (res_idx, pair_idx) in matching {
        let (item, _) = reservoir[res_idx].clone();
        assigned[pair_idx].push(item);
        need[pair_idx] -= 1;
    }

    // Repair: any still-needy pair takes its backup, widening δ.
    let mut achieved: f64 = 0.0;
    for j in 0..n_pairs {
        for p in &assigned[j] {
            achieved = achieved.max(metric.distance(p, &kernel[pairs[j].index]));
        }
    }
    for j in 0..n_pairs {
        while need[j] > 0 {
            let Some((item, d)) = backup[j].take() else {
                panic!("pass 2 could not satisfy pair {j}: stream changed between passes?")
            };
            achieved = achieved.max(d);
            assigned[j].push(item);
            need[j] -= 1;
        }
    }

    PassTwoOutcome {
        points: assigned.into_iter().flatten().collect(),
        achieved_delta: achieved,
        peak_memory,
    }
}

/// Maximum bipartite matching between reservoir items and pair slots
/// (each pair `j` has `slots[j]` capacity) via augmenting paths on the
/// slot-expanded graph.
fn match_reservoir<P>(reservoir: &[(P, Vec<usize>)], slots: &[usize]) -> Vec<(usize, usize)> {
    // Expand each pair into `slots[j]` slot-nodes.
    let mut slot_of: Vec<usize> = Vec::new(); // slot-node -> pair id
    let mut first_slot: Vec<usize> = Vec::with_capacity(slots.len());
    for (j, &s) in slots.iter().enumerate() {
        first_slot.push(slot_of.len());
        slot_of.extend(std::iter::repeat_n(j, s));
    }
    let n_slots = slot_of.len();
    let mut slot_owner: Vec<Option<usize>> = vec![None; n_slots];

    fn try_assign<P>(
        item: usize,
        reservoir: &[(P, Vec<usize>)],
        first_slot: &[usize],
        slots: &[usize],
        slot_owner: &mut [Option<usize>],
        visited: &mut [bool],
    ) -> bool {
        for &j in &reservoir[item].1 {
            for s in first_slot[j]..first_slot[j] + slots[j] {
                if visited[s] {
                    continue;
                }
                visited[s] = true;
                let free = match slot_owner[s] {
                    None => true,
                    Some(other) => {
                        try_assign(other, reservoir, first_slot, slots, slot_owner, visited)
                    }
                };
                if free {
                    slot_owner[s] = Some(item);
                    return true;
                }
            }
        }
        false
    }

    for item in 0..reservoir.len() {
        let mut visited = vec![false; n_slots];
        try_assign(
            item,
            reservoir,
            &first_slot,
            slots,
            &mut slot_owner,
            &mut visited,
        );
    }
    let mut out = Vec::new();
    for (s, owner) in slot_owner.iter().enumerate() {
        if let Some(item) = owner {
            out.push((*item, slot_of[s]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{Euclidean, VecPoint};

    fn pts(xs: &[f64]) -> Vec<VecPoint> {
        xs.iter().map(|&x| VecPoint::from([x])).collect()
    }

    #[test]
    fn produces_k_distinct_stream_items() {
        let xs: Vec<f64> = (0..600).map(|i| ((i * 37) % 401) as f64).collect();
        let data = pts(&xs);
        let res = two_pass(Problem::RemoteClique, Euclidean, 6, 12, || {
            data.iter().cloned()
        });
        assert_eq!(res.solution.points.len(), 6);
        assert!(res.solution.value > 0.0);
    }

    #[test]
    fn memory_of_pass1_has_no_k_squared_blowup() {
        let xs: Vec<f64> = (0..4000).map(|i| ((i * 113) % 2003) as f64).collect();
        let data = pts(&xs);
        let k = 16;
        let k_prime = 32;
        let res = two_pass(Problem::RemoteTree, Euclidean, k, k_prime, || {
            data.iter().cloned()
        });
        // Pass 1 holds centers + removed, never k·k' delegates.
        assert!(
            res.pass1_peak_memory <= 2 * (k_prime + 1),
            "pass1 peak {}",
            res.pass1_peak_memory
        );
    }

    #[test]
    fn achieved_delta_within_promise_on_stable_stream() {
        let xs: Vec<f64> = (0..800).map(|i| ((i * 29) % 307) as f64).collect();
        let data = pts(&xs);
        let res = two_pass(Problem::RemoteStar, Euclidean, 5, 10, || {
            data.iter().cloned()
        });
        assert!(
            res.achieved_delta <= res.delta + 1e-9,
            "repair should not trigger when the same stream replays: {} > {}",
            res.achieved_delta,
            res.delta
        );
    }

    #[test]
    #[should_panic]
    fn rejects_non_injective_problems() {
        let data = pts(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let _ = two_pass(Problem::RemoteEdge, Euclidean, 2, 4, || {
            data.iter().cloned()
        });
    }

    #[test]
    fn two_clusters_get_delegates_from_both() {
        // k=4 on two tight clusters: the solution must take 2 distinct
        // items from each cluster (remote-clique favours split).
        let mut xs = vec![];
        for i in 0..50 {
            xs.push(i as f64 * 0.01); // cluster at 0
            xs.push(100.0 + i as f64 * 0.01); // cluster at 100
        }
        let data = pts(&xs);
        let res = two_pass(Problem::RemoteClique, Euclidean, 4, 8, || {
            data.iter().cloned()
        });
        let low = res
            .solution
            .points
            .iter()
            .filter(|p| p.coords()[0] < 50.0)
            .count();
        assert_eq!(low, 2, "two delegates per cluster");
        // All four must be distinct stream items.
        for i in 0..4 {
            for j in 0..i {
                assert_ne!(
                    res.solution.points[i], res.solution.points[j],
                    "duplicate delegate"
                );
            }
        }
    }
}
