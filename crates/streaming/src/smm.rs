//! SMM: the plain streaming core-set (Section 4, Theorem 1).

use crate::doubling::DoublingCore;
use diversity_core::coreset::Coreset;
use metric::Metric;

/// One-pass core-set construction for remote-edge and remote-cycle.
///
/// Maintains at most `k'+1` centers via the doubling algorithm and, per
/// the paper's modification, retains the centers removed by the current
/// phase's merge step (`M`) so the final output can be padded to at
/// least `k` points if the last phase left `|T| < k`.
///
/// With `k' = (32/ε')^D·k` on a doubling-dimension-`D` space the output
/// is a `(1+ε)`-core-set (Theorem 1), in `O((1/ε)^D k)` memory.
pub struct Smm<P, M> {
    core: DoublingCore<P, ()>,
    metric: M,
    k: usize,
}

/// Output of [`Smm::finish`].
#[derive(Clone, Debug)]
pub struct SmmResult<P> {
    /// The core-set `T` (padded from `M` to ≥ k points when needed).
    pub coreset: Vec<P>,
    /// Stream arrival positions (0-based) of `coreset`, in lockstep.
    pub positions: Vec<u64>,
    /// The center budget `k'` the pass ran with.
    pub k_prime: usize,
    /// Number of phases executed.
    pub phases: usize,
    /// Final threshold `d_ℓ`; every processed point is within
    /// `4·d_ℓ` of the (unpadded) centers.
    pub final_threshold: f64,
    /// Peak resident points observed (centers + removed), for the
    /// memory experiments.
    pub peak_memory_points: usize,
}

impl<P> SmmResult<P> {
    /// Covering-radius certificate of the core-set over the processed
    /// stream: `4·d_ℓ` (Lemma 3's `r_T ≤ 4 d_ℓ`).
    pub fn radius(&self) -> f64 {
        4.0 * self.final_threshold
    }

    /// Converts the result into the typed composable [`Coreset`]
    /// artifact: sources are stream arrival positions, weights are 1,
    /// and the certificate is [`radius`](Self::radius).
    pub fn into_coreset(self) -> Coreset<P> {
        let radius = self.radius();
        Coreset::unweighted(self.coreset, self.positions, self.k_prime, radius)
    }
}

impl<P: Clone, M: Metric<P>> Smm<P, M> {
    /// Creates the stream processor.
    ///
    /// # Panics
    /// Panics unless `1 <= k <= k_prime`.
    pub fn new(metric: M, k: usize, k_prime: usize) -> Self {
        Self {
            core: DoublingCore::new(k, k_prime),
            metric,
            k,
        }
    }

    /// Processes one stream point.
    pub fn push(&mut self, point: P) {
        self.core.push(point, &self.metric);
    }

    /// Current resident points (for live memory tracking).
    pub fn memory_points(&self) -> usize {
        self.core.memory_points()
    }

    /// The checkpointable state: serialize it with serde to persist a
    /// long-running stream across restarts, then [`Self::resume`].
    pub fn state(&self) -> &DoublingCore<P, ()> {
        &self.core
    }

    /// Resumes from a checkpointed state.
    pub fn resume(metric: M, state: DoublingCore<P, ()>) -> Self {
        let k = state.k();
        Self {
            core: state,
            metric,
            k,
        }
    }

    /// Ends the stream and extracts the core-set.
    pub fn finish(self) -> SmmResult<P> {
        let peak = self.core.memory_points();
        let k = self.k;
        let k_prime = self.core.k_prime();
        let fin = self.core.finish();
        let mut coreset: Vec<P> = Vec::with_capacity(fin.centers.len());
        let mut positions: Vec<u64> = Vec::with_capacity(fin.centers.len());
        for c in fin.centers {
            coreset.push(c.point);
            positions.push(c.pos);
        }
        // Pad from M: |M ∪ I| = k'+1 >= k guarantees enough points
        // whenever the stream itself had >= k.
        let mut m_iter = fin.removed.into_iter().zip(fin.removed_positions);
        while coreset.len() < k {
            match m_iter.next() {
                Some((p, pos)) => {
                    coreset.push(p);
                    positions.push(pos);
                }
                None => break,
            }
        }
        SmmResult {
            coreset,
            positions,
            k_prime,
            phases: fin.phases,
            final_threshold: fin.final_threshold,
            peak_memory_points: peak,
        }
    }

    /// Convenience: run over an iterator and finish.
    pub fn run(
        metric: M,
        k: usize,
        k_prime: usize,
        stream: impl IntoIterator<Item = P>,
    ) -> SmmResult<P> {
        let mut smm = Self::new(metric, k, k_prime);
        for p in stream {
            smm.push(p);
        }
        smm.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{Euclidean, VecPoint};

    fn stream(xs: &[f64]) -> Vec<VecPoint> {
        xs.iter().map(|&x| VecPoint::from([x])).collect()
    }

    #[test]
    fn output_at_least_k_points() {
        // A long clustered stream that forces many merges.
        let xs: Vec<f64> = (0..400)
            .map(|i| (i % 4) as f64 * 1000.0 + (i as f64) * 0.001)
            .collect();
        let res = Smm::run(Euclidean, 8, 12, stream(&xs));
        assert!(
            res.coreset.len() >= 8,
            "padding must bring the core-set to k (got {})",
            res.coreset.len()
        );
    }

    #[test]
    fn memory_stays_bounded() {
        let xs: Vec<f64> = (0..5000).map(|i| ((i * 97) % 4099) as f64).collect();
        let mut smm = Smm::new(Euclidean, 4, 16);
        let mut peak = 0usize;
        for p in stream(&xs) {
            smm.push(p);
            peak = peak.max(smm.memory_points());
        }
        // Centers (k'+1) plus the removed set of one merge (≤ k'+1).
        assert!(peak <= 2 * (16 + 1), "peak {peak}");
        let res = smm.finish();
        assert!(res.coreset.len() <= 2 * (16 + 1));
    }

    #[test]
    fn short_stream_passes_through() {
        let res = Smm::run(Euclidean, 3, 5, stream(&[1.0, 2.0, 3.0]));
        assert_eq!(res.coreset.len(), 3);
        assert_eq!(res.phases, 0);
    }

    #[test]
    fn coreset_quality_on_planted_line() {
        // Points 0..1000 dense, plus two far outliers; the core-set
        // must keep (a neighbourhood of) the outliers for remote-edge.
        let mut xs: Vec<f64> = (0..1000).map(|i| i as f64 * 0.01).collect();
        xs.push(1e6);
        xs.push(-1e6);
        let res = Smm::run(Euclidean, 2, 8, stream(&xs));
        let max = res
            .coreset
            .iter()
            .map(|p| p.coords()[0])
            .fold(f64::NEG_INFINITY, f64::max);
        let min = res
            .coreset
            .iter()
            .map(|p| p.coords()[0])
            .fold(f64::INFINITY, f64::min);
        assert_eq!(max, 1e6);
        assert_eq!(min, -1e6);
    }

    #[test]
    fn positions_recover_stream_items() {
        let xs: Vec<f64> = (0..700).map(|i| ((i * 43) % 311) as f64).collect();
        let res = Smm::run(Euclidean, 6, 9, stream(&xs));
        assert_eq!(res.positions.len(), res.coreset.len());
        for (p, &pos) in res.coreset.iter().zip(&res.positions) {
            assert_eq!(p.coords()[0], xs[pos as usize], "position {pos}");
        }
        let artifact = res.into_coreset();
        assert_eq!(artifact.k_prime(), 9);
        assert!(artifact.is_unweighted());
        assert!(
            artifact.certifies(&stream(&xs), &Euclidean, 1e-9),
            "4·d_ℓ radius certificate must cover the whole stream"
        );
    }

    #[test]
    fn deterministic() {
        let xs: Vec<f64> = (0..2000).map(|i| ((i * 31) % 503) as f64).collect();
        let a = Smm::run(Euclidean, 4, 8, stream(&xs));
        let b = Smm::run(Euclidean, 4, 8, stream(&xs));
        assert_eq!(a.coreset.len(), b.coreset.len());
        assert_eq!(a.phases, b.phases);
        for (x, y) in a.coreset.iter().zip(b.coreset.iter()) {
            assert_eq!(x, y);
        }
    }
}
