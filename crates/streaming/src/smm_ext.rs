//! SMM-EXT: streaming core-set with delegates (Section 4, Theorem 2).

use crate::doubling::DoublingCore;
use diversity_core::coreset::Coreset;
use metric::Metric;

// The delegate-set payload is shared with the dynamic engine and lives
// in `diversity_core::doubling`; re-exported here for compatibility.
pub use crate::doubling::DelegateSet;

/// One-pass core-set construction for remote-clique, remote-star,
/// remote-bipartition and remote-tree: each center accumulates up to
/// `k` delegates, ensuring the injective proxy function Lemma 2 needs.
///
/// With `k' = (64/ε')^D·k` the output `T' = ∪E_t` is a `(1+ε)`-core-set
/// (Theorem 2), in `O((1/ε)^D k²)` memory.
pub struct SmmExt<P, M> {
    core: DoublingCore<P, DelegateSet<P>>,
    metric: M,
    k: usize,
}

/// Output of [`SmmExt::finish`].
#[derive(Clone, Debug)]
pub struct SmmExtResult<P> {
    /// The core-set `T' = ∪_t E_t` (center-first per delegate set).
    pub coreset: Vec<P>,
    /// Stream arrival positions (0-based) of `coreset`, in lockstep.
    pub positions: Vec<u64>,
    /// The kernel `T` (centers only).
    pub kernel: Vec<P>,
    /// The center budget `k'` the pass ran with.
    pub k_prime: usize,
    /// Number of phases executed.
    pub phases: usize,
    /// Final threshold `d_ℓ`.
    pub final_threshold: f64,
    /// Peak resident points, for the memory experiments.
    pub peak_memory_points: usize,
}

impl<P> SmmExtResult<P> {
    /// Covering-radius certificate over the processed stream: `4·d_ℓ`
    /// (the core-set contains the kernel, so Lemma 3's bound applies).
    pub fn radius(&self) -> f64 {
        4.0 * self.final_threshold
    }

    /// Converts the result into the typed composable [`Coreset`]
    /// artifact: sources are stream arrival positions, weights are 1.
    pub fn into_coreset(self) -> Coreset<P> {
        let radius = self.radius();
        Coreset::unweighted(self.coreset, self.positions, self.k_prime, radius)
    }
}

impl<P: Clone, M: Metric<P>> SmmExt<P, M> {
    /// Creates the stream processor.
    ///
    /// # Panics
    /// Panics unless `1 <= k <= k_prime`.
    pub fn new(metric: M, k: usize, k_prime: usize) -> Self {
        Self {
            core: DoublingCore::new(k, k_prime),
            metric,
            k,
        }
    }

    /// Processes one stream point.
    pub fn push(&mut self, point: P) {
        self.core.push(point, &self.metric);
    }

    /// Current resident points (centers + delegates + removed).
    pub fn memory_points(&self) -> usize {
        self.core.memory_points()
    }

    /// The checkpointable state (serialize it with serde to persist a
    /// long-running stream; the metric is re-supplied on [`Self::resume`]).
    pub fn state(&self) -> &DoublingCore<P, DelegateSet<P>> {
        &self.core
    }

    /// Resumes from a checkpointed state.
    pub fn resume(metric: M, state: DoublingCore<P, DelegateSet<P>>) -> Self {
        let k = state.k();
        Self {
            core: state,
            metric,
            k,
        }
    }

    /// Ends the stream and extracts the delegate-augmented core-set.
    pub fn finish(self) -> SmmExtResult<P> {
        let peak = self.core.memory_points();
        let k = self.k;
        let k_prime = self.core.k_prime();
        let fin = self.core.finish();
        let kernel: Vec<P> = fin.centers.iter().map(|c| c.point.clone()).collect();
        let mut coreset: Vec<P> = Vec::new();
        let mut positions: Vec<u64> = Vec::new();
        for c in fin.centers {
            let (points, poss) = c.payload.into_indexed_delegates();
            coreset.extend(points);
            positions.extend(poss);
        }
        // Safety net mirroring SMM's padding: delegates normally keep
        // |T'| >= k for streams of >= k points, but pad from M anyway
        // so downstream code can rely on it unconditionally.
        let mut m_iter = fin.removed.into_iter().zip(fin.removed_positions);
        while coreset.len() < k {
            match m_iter.next() {
                Some((p, pos)) => {
                    coreset.push(p);
                    positions.push(pos);
                }
                None => break,
            }
        }
        SmmExtResult {
            coreset,
            positions,
            kernel,
            k_prime,
            phases: fin.phases,
            final_threshold: fin.final_threshold,
            peak_memory_points: peak,
        }
    }

    /// Convenience: run over an iterator and finish.
    pub fn run(
        metric: M,
        k: usize,
        k_prime: usize,
        stream: impl IntoIterator<Item = P>,
    ) -> SmmExtResult<P> {
        let mut s = Self::new(metric, k, k_prime);
        for p in stream {
            s.push(p);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{Euclidean, VecPoint};

    fn stream(xs: &[f64]) -> Vec<VecPoint> {
        xs.iter().map(|&x| VecPoint::from([x])).collect()
    }

    #[test]
    fn coreset_at_least_k_for_long_streams() {
        let xs: Vec<f64> = (0..500)
            .map(|i| (i % 3) as f64 * 100.0 + i as f64 * 1e-4)
            .collect();
        let res = SmmExt::run(Euclidean, 6, 8, stream(&xs));
        assert!(res.coreset.len() >= 6, "got {}", res.coreset.len());
    }

    #[test]
    fn memory_bounded_by_k_times_centers() {
        let xs: Vec<f64> = (0..3000).map(|i| ((i * 131) % 1009) as f64).collect();
        let k = 5;
        let k_prime = 9;
        let mut s = SmmExt::new(Euclidean, k, k_prime);
        let mut peak = 0;
        for p in stream(&xs) {
            s.push(p);
            peak = peak.max(s.memory_points());
        }
        // k delegates per center, k'+1 centers, plus one phase's
        // removed set.
        assert!(peak <= k * (k_prime + 1) + (k_prime + 1), "peak {peak}");
    }

    #[test]
    fn delegates_stay_near_their_center() {
        let xs: Vec<f64> = (0..400).map(|i| ((i * 71) % 307) as f64).collect();
        let mut s = SmmExt::new(Euclidean, 4, 6);
        for p in stream(&xs) {
            s.push(p);
        }
        let bound = s.core.radius_bound();
        let res = s.finish();
        // Every delegate is within the coverage bound of some kernel
        // point (delegates were absorbed at <= 4d_i <= 4d_ell, then
        // their center may have merged, adding <= 2d_j hops; 3x the
        // bound is a safe envelope for the test).
        for p in &res.coreset {
            let d = Euclidean.distance_to_set(p, &res.kernel);
            assert!(d <= 3.0 * bound + 1e-9, "delegate at {d}, bound {bound}");
        }
    }

    #[test]
    fn kernel_is_subset_of_coreset() {
        let xs: Vec<f64> = (0..300).map(|i| ((i * 17) % 97) as f64 * 3.3).collect();
        let res = SmmExt::run(Euclidean, 3, 5, stream(&xs));
        for kp in &res.kernel {
            assert!(
                res.coreset.iter().any(|p| p == kp),
                "kernel point missing from coreset"
            );
        }
    }

    #[test]
    fn short_stream_keeps_all() {
        let res = SmmExt::run(Euclidean, 3, 6, stream(&[0.0, 1.0, 2.0, 3.0]));
        assert_eq!(res.coreset.len(), 4);
    }

    #[test]
    fn positions_recover_stream_items() {
        let xs: Vec<f64> = (0..600).map(|i| ((i * 67) % 283) as f64).collect();
        let res = SmmExt::run(Euclidean, 5, 8, stream(&xs));
        assert_eq!(res.positions.len(), res.coreset.len());
        for (p, &pos) in res.coreset.iter().zip(&res.positions) {
            assert_eq!(p.coords()[0], xs[pos as usize], "position {pos}");
        }
        let artifact = res.into_coreset();
        assert_eq!(artifact.k_prime(), 8);
        assert!(
            artifact.certifies(&stream(&xs), &Euclidean, 1e-9),
            "radius certificate must cover the whole stream"
        );
    }
}
