//! The one-pass streaming algorithm of Theorem 3.
//!
//! One pass of SMM (remote-edge/cycle) or SMM-EXT (the other four
//! problems) builds a core-set in memory; the sequential `α`-
//! approximation then runs on the core-set, for a combined `α + ε`
//! approximation with memory independent of the stream length.

use crate::{Smm, SmmExt, StreamSolution};
use diversity_core::coreset::Coreset;
use diversity_core::{seq, Problem};
use metric::Metric;

/// Runs the 1-pass streaming algorithm for `problem` over `stream`,
/// with solution size `k` and center budget `k_prime`.
///
/// This is the stable low-level entry point (zero overhead, panicking
/// contract). Note that an empty stream is only detected *after* the
/// pass completes; the `diversity` facade's `Task::run_stream` instead
/// rejects it on the first poll with a typed `EmptyStream` error, and
/// additionally reports the selected points' arrival positions.
///
/// # Panics
/// Panics unless `1 <= k <= k_prime`, or if the stream is empty.
pub fn one_pass<P, M, I>(
    problem: Problem,
    metric: M,
    k: usize,
    k_prime: usize,
    stream: I,
) -> StreamSolution<P>
where
    P: Clone + Sync,
    M: Metric<P>,
    I: IntoIterator<Item = P>,
{
    let coreset = one_pass_coreset(problem, &metric, k, k_prime, stream);
    assert!(!coreset.is_empty(), "empty stream");
    let (points, _, _, _, _) = coreset.into_parts();
    solve_on(problem, &metric, k, points)
}

/// Runs just the core-set pass of the one-pass algorithm, returning
/// the typed composable [`Coreset`] artifact: owned points, stream
/// arrival positions as provenance, and the `4·d_ℓ` covering-radius
/// certificate. This is the streaming substrate's hand-off to the
/// composition layer (and what `diversity::Task::run_stream` solves
/// on); an empty stream yields an empty artifact.
pub fn one_pass_coreset<P, M, I>(
    problem: Problem,
    metric: &M,
    k: usize,
    k_prime: usize,
    stream: I,
) -> Coreset<P>
where
    P: Clone + Sync,
    M: Metric<P>,
    I: IntoIterator<Item = P>,
{
    if problem.needs_injective_proxy() {
        SmmExt::run(metric, k, k_prime, stream).into_coreset()
    } else {
        Smm::run(metric, k, k_prime, stream).into_coreset()
    }
}

/// Runs the sequential algorithm on an in-memory core-set, producing a
/// [`StreamSolution`]. Shared by [`one_pass`] and the experiment
/// harnesses (which need to time the two stages separately).
pub fn solve_on<P: Clone + Sync, M: Metric<P>>(
    problem: Problem,
    metric: &M,
    k: usize,
    coreset: Vec<P>,
) -> StreamSolution<P> {
    let sol = seq::solve(problem, &coreset, metric, k);
    let points = sol.indices.iter().map(|&i| coreset[i].clone()).collect();
    StreamSolution {
        points,
        value: sol.value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{Euclidean, VecPoint};

    fn stream(xs: &[f64]) -> Vec<VecPoint> {
        xs.iter().map(|&x| VecPoint::from([x])).collect()
    }

    #[test]
    fn one_pass_returns_k_points_for_all_problems() {
        let xs: Vec<f64> = (0..800).map(|i| ((i * 37) % 509) as f64).collect();
        for problem in Problem::ALL {
            let sol = one_pass(problem, Euclidean, 5, 10, stream(&xs));
            assert_eq!(sol.points.len(), 5, "{problem}");
            assert!(sol.value.is_finite(), "{problem}");
            assert!(sol.value > 0.0, "{problem}");
        }
    }

    #[test]
    fn planted_extremes_respect_the_2_approximation() {
        let mut xs: Vec<f64> = (0..2000).map(|i| (i % 100) as f64 * 0.01).collect();
        xs.insert(777, 500.0);
        xs.insert(1234, -500.0);
        let sol = one_pass(Problem::RemoteEdge, Euclidean, 2, 8, stream(&xs));
        // The optimum is {−500, 500} = 1000. GMM's k-prefix starts from
        // an arbitrary point, so it may return {0, 500} — the 2-approx
        // guarantee (≥ 500) is what the theorem promises, and at least
        // one planted extreme must be selected.
        assert!(sol.value >= 500.0, "value {} below α-guarantee", sol.value);
        assert!(sol.points.iter().any(|p| p.coords()[0].abs() == 500.0));
    }

    #[test]
    fn coreset_retains_both_planted_extremes() {
        // The stronger property that Theorem 1 actually gives: the
        // *core-set* must contain points near both extremes.
        let mut xs: Vec<f64> = (0..2000).map(|i| (i % 100) as f64 * 0.01).collect();
        xs.insert(777, 500.0);
        xs.insert(1234, -500.0);
        let res = crate::Smm::run(Euclidean, 2, 8, stream(&xs));
        let max = res
            .coreset
            .iter()
            .map(|p| p.coords()[0])
            .fold(f64::NEG_INFINITY, f64::max);
        let min = res
            .coreset
            .iter()
            .map(|p| p.coords()[0])
            .fold(f64::INFINITY, f64::min);
        assert_eq!(max, 500.0);
        assert_eq!(min, -500.0);
    }

    #[test]
    fn larger_k_prime_does_not_regress_on_line() {
        let xs: Vec<f64> = (0..3000).map(|i| ((i * 101) % 997) as f64).collect();
        let small = one_pass(Problem::RemoteEdge, Euclidean, 8, 8, stream(&xs));
        let large = one_pass(Problem::RemoteEdge, Euclidean, 8, 64, stream(&xs));
        // Not a theorem point-for-point, but holds on this regular
        // instance and guards the k'-accuracy trend of Figure 2.
        assert!(large.value >= small.value * 0.95);
    }
}
