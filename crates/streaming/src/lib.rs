//! # diversity-streaming
//!
//! One- and two-pass streaming diversity maximization (Sections 4 and
//! 6.1 of the paper).
//!
//! The workhorse is a variant of the Charikar–Chekuri–Feder–Motwani
//! *doubling algorithm* for streaming k-center: it maintains at most
//! `k'+1` centers and a distance threshold `d_i` that doubles from
//! phase to phase, giving an 8-approximation to the `k'`-center optimum
//! — which, in bounded-doubling-dimension spaces, makes the kept
//! centers an arbitrarily accurate *core-set* for all six diversity
//! problems once `k'` is a suitable multiple of `k` (Lemmas 3–4).
//!
//! Three bookkeeping flavours share the phase machinery
//! ([`doubling::DoublingCore`]):
//!
//! * [`Smm`] — centers only; `(1+ε)`-core-set for remote-edge and
//!   remote-cycle with `k' = (32/ε')^D·k` (Theorem 1), `O((1/ε)^D k)`
//!   memory;
//! * [`SmmExt`] — centers plus up to `k` *delegates* each; core-set for
//!   remote-clique/star/bipartition/tree with `k' = (64/ε')^D·k`
//!   (Theorem 2), `O((1/ε)^D k²)` memory;
//! * [`SmmGen`] — centers plus delegate *counts*: a generalized
//!   core-set in `O((1/ε)^D k)` memory, which the two-pass algorithm of
//!   Theorem 9 ([`two_pass`]) instantiates on a second pass.
//!
//! [`pipeline`] assembles the one-pass algorithm of Theorem 3
//! (core-set + sequential algorithm), and [`throughput`] measures the
//! per-point processing rate of the kernel, reproducing Figure 3.

pub mod doubling;
pub mod pipeline;
mod smm;
mod smm_ext;
mod smm_gen;
pub mod throughput;
pub mod two_pass;

pub use smm::{Smm, SmmResult};
pub use smm_ext::{SmmExt, SmmExtResult};
pub use smm_gen::{SmmGen, SmmGenResult};

/// A solution produced by a streaming algorithm: the selected points
/// themselves (a stream has no global index space) plus their objective
/// value.
#[derive(Clone, Debug)]
pub struct StreamSolution<P> {
    /// The selected `k` points.
    pub points: Vec<P>,
    /// `div(points)` under the problem's objective.
    pub value: f64,
}
