//! SMM-GEN: streaming *generalized* core-set — delegate counts instead
//! of delegate points (Section 6.1, first pass of Theorem 9).

use crate::doubling::DoublingCore;
use diversity_core::coreset::Coreset;
use diversity_core::{GenPair, GeneralizedCoreset};
use metric::Metric;

// The count payload is shared machinery and lives in
// `diversity_core::doubling`; re-exported here for compatibility.
pub use crate::doubling::DelegateCount;

/// One-pass generalized core-set: the SMM-EXT bookkeeping with counts
/// instead of materialized delegates, shrinking memory from
/// `O((1/ε)^D k²)` to `O((1/ε)^D k)` — the second pass of Theorem 9
/// turns the counts back into real points.
pub struct SmmGen<P, M> {
    core: DoublingCore<P, DelegateCount>,
    metric: M,
}

/// Output of [`SmmGen::finish`].
#[derive(Clone, Debug)]
pub struct SmmGenResult<P> {
    /// The kernel points, owned (a stream has no index space).
    pub kernel: Vec<P>,
    /// Stream arrival positions (0-based) of `kernel`, in lockstep.
    pub kernel_positions: Vec<u64>,
    /// The generalized core-set; `GenPair::index` refers into
    /// `kernel`.
    pub coreset: GeneralizedCoreset,
    /// The center budget `k'` the pass ran with.
    pub k_prime: usize,
    /// Instantiation radius: every counted point was within this
    /// distance of (a predecessor of) its kernel point — `4·d_ℓ`.
    pub delta: f64,
    /// Number of phases executed.
    pub phases: usize,
    /// Peak resident points.
    pub peak_memory_points: usize,
}

impl<P> SmmGenResult<P> {
    /// Converts the result into the typed composable [`Coreset`]
    /// artifact — **weighted**: each kernel point carries its delegate
    /// count as multiplicity, sources are stream arrival positions,
    /// and `delta` is the radius certificate.
    pub fn into_coreset(self) -> Coreset<P> {
        let weights: Vec<usize> = self
            .coreset
            .pairs()
            .iter()
            .map(|p| p.multiplicity)
            .collect();
        Coreset::new(
            self.kernel,
            self.kernel_positions,
            weights,
            self.k_prime,
            self.delta,
        )
    }
}

impl<P: Clone, M: Metric<P>> SmmGen<P, M> {
    /// Creates the stream processor.
    ///
    /// # Panics
    /// Panics unless `1 <= k <= k_prime`.
    pub fn new(metric: M, k: usize, k_prime: usize) -> Self {
        Self {
            core: DoublingCore::new(k, k_prime),
            metric,
        }
    }

    /// Processes one stream point.
    pub fn push(&mut self, point: P) {
        self.core.push(point, &self.metric);
    }

    /// Current resident points.
    pub fn memory_points(&self) -> usize {
        self.core.memory_points()
    }

    /// The checkpointable state (see [`crate::SmmExt::state`]).
    pub fn state(&self) -> &DoublingCore<P, DelegateCount> {
        &self.core
    }

    /// Resumes from a checkpointed state.
    pub fn resume(metric: M, state: DoublingCore<P, DelegateCount>) -> Self {
        Self {
            core: state,
            metric,
        }
    }

    /// Ends the stream, returning kernel + counts.
    pub fn finish(self) -> SmmGenResult<P> {
        let peak = self.core.memory_points();
        let delta = self.core.radius_bound();
        let k_prime = self.core.k_prime();
        let fin = self.core.finish();
        let mut kernel = Vec::with_capacity(fin.centers.len());
        let mut kernel_positions = Vec::with_capacity(fin.centers.len());
        let mut pairs = Vec::with_capacity(fin.centers.len());
        for (i, c) in fin.centers.into_iter().enumerate() {
            pairs.push(GenPair {
                index: i,
                multiplicity: c.payload.count(),
            });
            kernel.push(c.point);
            kernel_positions.push(c.pos);
        }
        SmmGenResult {
            kernel,
            kernel_positions,
            coreset: GeneralizedCoreset::new(pairs),
            k_prime,
            delta,
            phases: fin.phases,
            peak_memory_points: peak,
        }
    }

    /// Convenience: run over an iterator and finish.
    pub fn run(
        metric: M,
        k: usize,
        k_prime: usize,
        stream: impl IntoIterator<Item = P>,
    ) -> SmmGenResult<P> {
        let mut s = Self::new(metric, k, k_prime);
        for p in stream {
            s.push(p);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{Euclidean, VecPoint};

    fn stream(xs: &[f64]) -> Vec<VecPoint> {
        xs.iter().map(|&x| VecPoint::from([x])).collect()
    }

    #[test]
    fn counts_capped_at_k() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 2) as f64 * 100.0).collect();
        let res = SmmGen::run(Euclidean, 3, 4, stream(&xs));
        assert!(res.coreset.pairs().iter().all(|p| p.multiplicity <= 3));
    }

    #[test]
    fn memory_excludes_delegates() {
        let xs: Vec<f64> = (0..3000).map(|i| ((i * 131) % 1009) as f64).collect();
        let k_prime = 9;
        let mut s = SmmGen::new(Euclidean, 5, k_prime);
        let mut peak = 0;
        for p in stream(&xs) {
            s.push(p);
            peak = peak.max(s.memory_points());
        }
        // Centers plus one phase's removed set — no k-factor.
        assert!(peak <= 2 * (k_prime + 1), "peak {peak}");
    }

    #[test]
    fn expanded_size_reaches_k_on_long_streams() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 211) as f64).collect();
        let k = 7;
        let res = SmmGen::run(Euclidean, k, 10, stream(&xs));
        assert!(
            res.coreset.expanded_size() >= k,
            "m(T) = {} < k",
            res.coreset.expanded_size()
        );
    }

    #[test]
    fn kernel_indices_consistent() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 61) % 157) as f64).collect();
        let res = SmmGen::run(Euclidean, 4, 6, stream(&xs));
        assert_eq!(res.coreset.size(), res.kernel.len());
        for p in res.coreset.pairs() {
            assert!(p.index < res.kernel.len());
        }
    }

    #[test]
    fn delta_positive_after_phases() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 211) as f64).collect();
        let res = SmmGen::run(Euclidean, 4, 6, stream(&xs));
        assert!(res.phases > 0);
        assert!(res.delta > 0.0);
    }
}
