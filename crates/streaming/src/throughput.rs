//! Throughput instrumentation for the streaming kernel (Figure 3).
//!
//! The paper measures "the time taken by the algorithm to process each
//! point, ignoring the cost of streaming data from memory": the rate at
//! which `push` calls are absorbed. The harness here pre-materializes
//! the stream, then times only the push loop.

use crate::{Smm, SmmExt};
use diversity_core::Problem;
use metric::Metric;
use std::time::Instant;

/// Result of a throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Points processed.
    pub points: usize,
    /// Wall-clock seconds spent inside `push` calls.
    pub seconds: f64,
    /// Points per second.
    pub points_per_sec: f64,
}

/// Measures the kernel throughput of the problem-appropriate SMM
/// variant on an in-memory stream.
pub fn measure<P, M>(
    problem: Problem,
    metric: M,
    k: usize,
    k_prime: usize,
    stream: &[P],
) -> Throughput
where
    P: Clone,
    M: Metric<P>,
{
    let n = stream.len();
    let start;
    let seconds;
    if problem.needs_injective_proxy() {
        let mut s = SmmExt::new(metric, k, k_prime);
        start = Instant::now();
        for p in stream {
            s.push(p.clone());
        }
        seconds = start.elapsed().as_secs_f64();
        let _ = s.finish();
    } else {
        let mut s = Smm::new(metric, k, k_prime);
        start = Instant::now();
        for p in stream {
            s.push(p.clone());
        }
        seconds = start.elapsed().as_secs_f64();
        let _ = s.finish();
    }
    Throughput {
        points: n,
        seconds,
        points_per_sec: if seconds > 0.0 {
            n as f64 / seconds
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{Euclidean, VecPoint};

    #[test]
    fn reports_positive_rate() {
        let stream: Vec<VecPoint> = (0..2000)
            .map(|i| VecPoint::from([((i * 37) % 211) as f64, (i % 17) as f64]))
            .collect();
        let t = measure(Problem::RemoteEdge, Euclidean, 4, 8, &stream);
        assert_eq!(t.points, 2000);
        assert!(t.points_per_sec > 0.0);
    }
}
