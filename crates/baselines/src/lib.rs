//! # diversity-baselines
//!
//! The state-of-the-art comparators the paper evaluates against
//! (Section 7.3, Table 4) and compares with in theory (Table 2):
//!
//! * [`afz`] — Aghamolaei–Farhadi–Zarrabi-Zadeh (CCCG'15) composable
//!   core-sets: GMM with `k' = k` for remote-edge (3-composable), and a
//!   per-partition *local search* for remote-clique (√3·(6+ε)-style
//!   constant) whose running time "may exhibit highly superlinear
//!   complexity" — the property Table 4 quantifies.
//! * [`immm`] — Indyk–Mahabadi–Mahdian–Mirrokni (PODS'14) constructions
//!   for the remaining problems (constant composable factors of
//!   Table 2's left column).
//!
//! Neither paper ships public code; like the original authors, we
//! implement them from their descriptions, with the same optimizations
//! (shared GMM kernel, cached distances) as the main algorithms so the
//! Table 4 comparison is apples-to-apples.

pub mod afz;
pub mod immm;
