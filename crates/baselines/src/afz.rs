//! The AFZ composable core-sets (Aghamolaei–Farhadi–Zarrabi-Zadeh,
//! CCCG 2015), reimplemented from the paper as the CPPU authors did.

use diversity_core::local_search::{local_search_clique, GainMode, LocalSearchOptions};
use diversity_core::{gmm_default, seq, Problem, Solution};
use diversity_mapreduce::runtime::MapReduceRuntime;
use diversity_mapreduce::{MrOutcome, MrStats, Partitions};
use metric::Metric;

/// Statistics of one AFZ core-set construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct AfzCoresetStats {
    /// Local-search swaps executed (0 for the GMM-based remote-edge
    /// construction).
    pub swaps: usize,
    /// Whether the local search converged before its swap cap.
    pub converged: bool,
}

/// AFZ per-partition core-set for **remote-clique**: the `k` points of
/// a single-swap local optimum of the sum-of-pairwise-distances
/// objective, seeded from the partition's first `k` points (the CCCG
/// paper's initialization is arbitrary; a fixed seed keeps runs
/// deterministic).
///
/// Each improvement sweep costs `Θ(k·(n−k))` distance evaluations and
/// the number of sweeps is not polynomially bounded — the superlinear
/// behaviour Table 4 exposes. `max_swaps` caps runaway instances; the
/// cap and whether it was hit are reported.
pub fn afz_clique_coreset<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    k: usize,
    max_swaps: usize,
    gain_mode: GainMode,
) -> (Vec<usize>, AfzCoresetStats) {
    let k = k.min(points.len());
    if k == 0 {
        return (Vec::new(), AfzCoresetStats::default());
    }
    let init: Vec<usize> = (0..k).collect();
    let out = local_search_clique(
        points,
        metric,
        &init,
        &LocalSearchOptions {
            max_swaps,
            min_relative_gain: 0.0,
            gain_mode,
        },
    );
    (
        out.solution.indices,
        AfzCoresetStats {
            swaps: out.swaps,
            converged: out.converged,
        },
    )
}

/// AFZ per-partition core-set for **remote-edge**: `GMM(S_i, k)` — as
/// the paper notes, "for remote-edge, AFZ is equivalent to CPPU with
/// k' = k".
pub fn afz_edge_coreset<P: Sync, M: Metric<P>>(points: &[P], metric: &M, k: usize) -> Vec<usize> {
    gmm_default(points, metric, k.min(points.len())).selected
}

/// Outcome of an AFZ MapReduce run, with the baseline's construction
/// statistics attached.
#[derive(Clone, Debug)]
pub struct AfzOutcome {
    /// The MapReduce result (solution in global indices + round stats).
    pub mr: MrOutcome,
    /// Total local-search swaps across reducers.
    pub total_swaps: usize,
    /// Number of reducers whose local search hit the swap cap.
    pub capped_reducers: usize,
}

/// The AFZ 2-round MapReduce algorithm for remote-edge or remote-clique
/// (the two problems Section 7.3 compares): round 1 builds the AFZ
/// core-set on each partition, round 2 unions and runs the same
/// sequential algorithm CPPU uses.
///
/// # Panics
/// Panics if `problem` is not remote-edge or remote-clique, or on empty
/// input / `k == 0`.
pub fn afz_two_round<P, M>(
    problem: Problem,
    partitions: &Partitions<P>,
    metric: &M,
    k: usize,
    max_swaps_per_reducer: usize,
    gain_mode: GainMode,
    runtime: &MapReduceRuntime,
) -> AfzOutcome
where
    P: Clone + Send + Sync,
    M: Metric<P>,
{
    assert!(
        matches!(problem, Problem::RemoteEdge | Problem::RemoteClique),
        "AFZ comparison covers remote-edge and remote-clique"
    );
    assert!(k > 0, "k must be positive");
    assert!(partitions.total_points() > 0, "empty input");

    let mut stats = MrStats::default();

    let (round1_out, round1_stats) = runtime.run_round(
        "round1:afz-coreset",
        &partitions.parts,
        |_, part: &Vec<P>| {
            if part.is_empty() {
                return (Vec::new(), AfzCoresetStats::default());
            }
            match problem {
                Problem::RemoteEdge => (
                    afz_edge_coreset(part, metric, k),
                    AfzCoresetStats::default(),
                ),
                _ => afz_clique_coreset(part, metric, k, max_swaps_per_reducer, gain_mode),
            }
        },
        Vec::len,
        |(cs, _)| cs.len(),
    );
    stats.rounds.push(round1_stats);

    let total_swaps: usize = round1_out.iter().map(|(_, s)| s.swaps).sum();
    let capped_reducers = round1_out
        .iter()
        .filter(|(cs, s)| !cs.is_empty() && !s.converged)
        .count();

    let mut union_points: Vec<P> = Vec::new();
    let mut union_globals: Vec<usize> = Vec::new();
    for (part_id, (locals, _)) in round1_out.iter().enumerate() {
        for &local in locals {
            union_points.push(partitions.parts[part_id][local].clone());
            union_globals.push(partitions.global_indices[part_id][local]);
        }
    }

    let solve_input_size = union_points.len();
    let union_input = vec![(union_points, union_globals)];
    let (mut round2_out, round2_stats) = runtime.run_round(
        "round2:solve",
        &union_input,
        |_, (points, globals): &(Vec<P>, Vec<usize>)| {
            let local = seq::solve(problem, points, metric, k);
            Solution {
                indices: local.indices.iter().map(|&i| globals[i]).collect(),
                value: local.value,
            }
        },
        |(points, _)| points.len(),
        |sol| sol.indices.len(),
    );
    stats.rounds.push(round2_stats);

    AfzOutcome {
        mr: MrOutcome {
            solution: round2_out.pop().expect("single reducer"),
            solve_input_size,
            // AFZ's round-1 output is a local-search *solution*, not a
            // covering core-set: it makes no radius claim over the
            // points it dropped (exactly the gap the composable-coreset
            // algorithms close), so no finite certificate exists.
            coreset_radius: f64::INFINITY,
            stats,
        },
        total_swaps,
        capped_reducers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversity_mapreduce::partition::split_round_robin;
    use metric::{Euclidean, VecPoint};

    fn line(xs: &[f64]) -> Vec<VecPoint> {
        xs.iter().map(|&x| VecPoint::from([x])).collect()
    }

    fn rt() -> MapReduceRuntime {
        MapReduceRuntime::with_threads(4)
    }

    #[test]
    fn clique_coreset_is_locally_optimal() {
        let pts = line(&[0.0, 0.1, 0.2, 50.0, 100.0]);
        let (cs, stats) = afz_clique_coreset(&pts, &Euclidean, 2, 1000, GainMode::Incremental);
        assert!(stats.converged);
        let mut s = cs.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 4], "local search must find the extremes");
    }

    #[test]
    fn edge_coreset_is_gmm_prefix() {
        let pts = line(&[0.0, 4.0, 9.0, 10.0]);
        let cs = afz_edge_coreset(&pts, &Euclidean, 2);
        assert_eq!(cs, vec![0, 3]);
    }

    #[test]
    fn afz_two_round_clique_produces_k_points() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 43) % 151) as f64).collect();
        let points = line(&xs);
        let parts = split_round_robin(points.clone(), 4);
        let out = afz_two_round(
            Problem::RemoteClique,
            &parts,
            &Euclidean,
            4,
            10_000,
            GainMode::Incremental,
            &rt(),
        );
        assert_eq!(out.mr.solution.indices.len(), 4);
        assert!(
            out.total_swaps > 0,
            "local search should move from the seed"
        );
        assert_eq!(out.capped_reducers, 0);
        let direct = diversity_core::eval::evaluate_subset(
            Problem::RemoteClique,
            &points,
            &Euclidean,
            &out.mr.solution.indices,
        );
        assert!((out.mr.solution.value - direct).abs() < 1e-9);
    }

    #[test]
    fn afz_edge_equals_cppu_with_k_prime_k() {
        let xs: Vec<f64> = (0..300).map(|i| ((i * 29) % 211) as f64).collect();
        let points = line(&xs);
        let parts = split_round_robin(points, 5);
        let afz = afz_two_round(
            Problem::RemoteEdge,
            &parts,
            &Euclidean,
            6,
            0,
            GainMode::Incremental,
            &rt(),
        );
        let cppu = diversity_mapreduce::two_round::two_round(
            Problem::RemoteEdge,
            &parts,
            &Euclidean,
            6,
            6,
            &rt(),
        );
        assert_eq!(afz.mr.solution.value, cppu.solution.value);
    }

    #[test]
    fn swap_cap_reported() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 977) as f64).collect();
        let points = line(&xs);
        let parts = split_round_robin(points, 2);
        let out = afz_two_round(
            Problem::RemoteClique,
            &parts,
            &Euclidean,
            8,
            1,
            GainMode::Incremental,
            &rt(),
        );
        // With a cap of one swap per reducer the searches cannot
        // converge on this instance.
        assert!(out.capped_reducers > 0);
        assert_eq!(out.mr.solution.indices.len(), 8);
    }

    #[test]
    #[should_panic]
    fn rejects_unsupported_problem() {
        let points = line(&[0.0, 1.0, 2.0]);
        let parts = split_round_robin(points, 1);
        let _ = afz_two_round(
            Problem::RemoteTree,
            &parts,
            &Euclidean,
            2,
            10,
            GainMode::Incremental,
            &rt(),
        );
    }
}
