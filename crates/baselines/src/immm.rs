//! IMMM-style composable core-sets
//! (Indyk–Mahabadi–Mahdian–Mirrokni, PODS 2014).
//!
//! IMMM (the paper's reference \[23\]) introduced composable core-sets
//! for diversity maximization and
//! gave *per-problem* constructions with the constant factors of
//! Table 2's left column (remote-edge 3, remote-clique 6+ε, remote-star
//! 12, remote-bipartition 18, remote-tree 4, remote-cycle 3). The
//! min-based problems use a GMM kernel of size `k`; the sum-based ones
//! a local-search solution of size `k`. The crucial contrast with the
//! paper's construction is that the IMMM core-sets are of size exactly
//! `k` and their factors do **not** improve with extra space — whereas
//! the CPPU `(1+ε)` factor improves as `k'` grows. The ablation bench
//! `ablation_budget` measures exactly that gap.

use diversity_core::local_search::{local_search_clique, LocalSearchOptions};
use diversity_core::{gmm_default, Problem};
use metric::Metric;

/// Builds the IMMM per-partition core-set (`k` indices into `points`)
/// for the given problem.
pub fn immm_coreset<P: Sync, M: Metric<P>>(
    problem: Problem,
    points: &[P],
    metric: &M,
    k: usize,
) -> Vec<usize> {
    let k = k.min(points.len());
    if k == 0 {
        return Vec::new();
    }
    match problem {
        // Min-based objectives: farthest-point kernel.
        Problem::RemoteEdge
        | Problem::RemoteTree
        | Problem::RemoteCycle
        | Problem::RemoteBipartition
        | Problem::RemoteStar => gmm_default(points, metric, k).selected,
        // Sum-based objective: local-search solution.
        Problem::RemoteClique => {
            let init: Vec<usize> = gmm_default(points, metric, k).selected;
            local_search_clique(
                points,
                metric,
                &init,
                &LocalSearchOptions {
                    max_swaps: 4 * points.len(),
                    ..Default::default()
                },
            )
            .solution
            .indices
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{Euclidean, VecPoint};

    fn line(xs: &[f64]) -> Vec<VecPoint> {
        xs.iter().map(|&x| VecPoint::from([x])).collect()
    }

    #[test]
    fn coreset_has_size_k() {
        let pts = line(&(0..40).map(|i| (i * 7 % 31) as f64).collect::<Vec<_>>());
        for problem in Problem::ALL {
            let cs = immm_coreset(problem, &pts, &Euclidean, 5);
            assert_eq!(cs.len(), 5, "{problem}");
            let mut s = cs.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 5, "{problem}: duplicates");
        }
    }

    #[test]
    fn k_larger_than_n_truncates() {
        let pts = line(&[0.0, 1.0]);
        assert_eq!(
            immm_coreset(Problem::RemoteEdge, &pts, &Euclidean, 5).len(),
            2
        );
    }

    #[test]
    fn clique_coreset_improves_on_gmm_seed() {
        // A configuration where GMM's max-min choice is suboptimal for
        // the sum objective: local search must not do worse.
        let pts = line(&[0.0, 1.0, 2.0, 3.0, 50.0, 51.0, 99.0, 100.0]);
        let gmm_sel = gmm_default(&pts, &Euclidean, 4).selected;
        let gmm_val = diversity_core::eval::evaluate_subset(
            Problem::RemoteClique,
            &pts,
            &Euclidean,
            &gmm_sel,
        );
        let ls = immm_coreset(Problem::RemoteClique, &pts, &Euclidean, 4);
        let ls_val =
            diversity_core::eval::evaluate_subset(Problem::RemoteClique, &pts, &Euclidean, &ls);
        assert!(ls_val >= gmm_val - 1e-9);
    }
}
