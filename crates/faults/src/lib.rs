//! # diversity-faults
//!
//! Deterministic, seeded fault injection for the diversity-maximization
//! serving stack — the chaos-engineering counterpart of the
//! `diversity-obs` recorder.
//!
//! A [`FaultPlan`] decides, at **named injection points** threaded
//! through the workspace, whether to fire one of five fault kinds:
//!
//! | site constant                | kind                  | effect at the call site |
//! |------------------------------|-----------------------|--------------------------|
//! | [`sites::SHARD_MUTATE`]      | [`FaultKind::ShardPanic`]    | `panic!` inside a shard engine mutation (the pool's `catch_unwind` isolates it and quarantines the shard) |
//! | [`sites::LOCK_HOLD`]         | [`FaultKind::SlowLock`]      | sleeps `slow_ms` while a shard lock is **held** (a straggler / lock-convoy) |
//! | [`sites::CHECKPOINT_BYTES`]  | [`FaultKind::CorruptBytes`]  | truncates serialized checkpoint text so the restore path must reject it |
//! | [`sites::MR_PARTITION`]      | [`FaultKind::DropPartition`] | drops one reducer's output, forcing the round driver's retry-with-reshuffle |
//! | [`sites::QUERY`]             | [`FaultKind::Transient`]     | a transient query-path error the pool retries with bounded backoff |
//! | [`sites::RECOVERY`]          | [`FaultKind::Transient`]     | a transient failure *during* shard recovery, exercising the backoff loop |
//! | [`sites::REBALANCE`]         | [`FaultKind::ShardPanic`]    | `panic!` mid-rebalance, before the shard-set swap commits (the pool's `catch_unwind` keeps the old set serving — rebalance is all-or-nothing) |
//!
//! ## Determinism
//!
//! Every decision is a pure function of `(seed, site, seq)` where `seq`
//! is a per-site call counter: the `seq`-th visit to a site fires iff
//! `hash(seed, site, seq)` maps below the site's configured rate. Which
//! *operation* gets hit can vary with thread interleaving (a different
//! op may make the `seq`-th visit), but the **fault log** — the ordered
//! per-site set of `(site, seq, kind)` events in [`FaultPlan::log`] —
//! is identical across runs with the same seed and the same per-site
//! visit counts. A single-threaded schedule is therefore bit-for-bit
//! reproducible, which is what the chaos harness's determinism audit
//! checks.
//!
//! ## Cost model
//!
//! Mirrors the obs recorder exactly: nothing happens unless a plan is
//! [`install`]ed — every hook first checks one process-global relaxed
//! `AtomicBool`, so production builds pay ~one atomic load per
//! potential fault. With a plan installed, each visit takes a short
//! mutex-protected counter bump.
//!
//! ## Enabling
//!
//! ```
//! use diversity_faults as faults;
//! use std::sync::Arc;
//!
//! let plan = Arc::new(faults::FaultPlan::from_spec(
//!     faults::FaultSpec { drop: 1.0, ..faults::FaultSpec::from_seed(7) },
//! ));
//! faults::install(plan.clone());
//! assert!(faults::should_drop(faults::sites::MR_PARTITION));
//! faults::uninstall();
//! assert!(!faults::should_drop(faults::sites::MR_PARTITION)); // inert again
//! assert_eq!(plan.log().len(), 1);
//! ```
//!
//! The `DIVMAX_FAULTS` environment spec ([`install_from_env`],
//! strict-parsed — see [`FaultSpec::parse`]) lets CI chaos jobs pin a
//! seed without code changes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// The named injection points threaded through the workspace. Each
/// constant documents which layer visits it; rates come from the
/// installed [`FaultSpec`].
pub mod sites {
    /// Inside a shard engine **mutation** (insert/delete), under the
    /// shard's write lock — fires [`super::FaultKind::ShardPanic`].
    pub const SHARD_MUTATE: &str = "serve.shard.mutate";
    /// While a shard write lock is **held** — fires
    /// [`super::FaultKind::SlowLock`] (sleeps `slow_ms`).
    pub const LOCK_HOLD: &str = "serve.lock.hold";
    /// Where checkpoint text crosses a process boundary — fires
    /// [`super::FaultKind::CorruptBytes`] (truncates the text).
    pub const CHECKPOINT_BYTES: &str = "serve.checkpoint.bytes";
    /// After a MapReduce reducer produced its output — fires
    /// [`super::FaultKind::DropPartition`] (output discarded, the round
    /// driver retries).
    pub const MR_PARTITION: &str = "mr.partition";
    /// At warm-query admission — fires [`super::FaultKind::Transient`]
    /// (the pool retries with bounded backoff).
    pub const QUERY: &str = "serve.query";
    /// During shard recovery — fires [`super::FaultKind::Transient`]
    /// (the recovery loop backs off and retries).
    pub const RECOVERY: &str = "serve.recovery";
    /// Mid-rebalance, after the cut is imaged but before the new shard
    /// set is committed — fires [`super::FaultKind::ShardPanic`]. The
    /// pool's `catch_unwind` makes the swap all-or-nothing: an injected
    /// panic here must leave the old shard set serving unchanged
    /// answers.
    pub const REBALANCE: &str = "serve.rebalance";
}

/// What kind of fault an event injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A `panic!` inside an engine mutation.
    ShardPanic,
    /// A sleep while holding a lock.
    SlowLock,
    /// Corrupted (truncated) checkpoint text.
    CorruptBytes,
    /// A dropped MapReduce partition output.
    DropPartition,
    /// A transient, retryable failure.
    Transient,
}

impl FaultKind {
    /// The obs counter bumped when this kind fires.
    fn counter(self) -> &'static str {
        match self {
            FaultKind::ShardPanic => "fault.panic",
            FaultKind::SlowLock => "fault.slow",
            FaultKind::CorruptBytes => "fault.corrupt",
            FaultKind::DropPartition => "fault.drop",
            FaultKind::Transient => "fault.transient",
        }
    }
}

/// One injected fault: the site, the per-site visit number that fired,
/// and the kind. The ordered log of these ([`FaultPlan::log`]) is the
/// deterministic artifact two same-seed runs must agree on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The injection point ([`sites`]).
    pub site: &'static str,
    /// The per-site visit counter value that fired.
    pub seq: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// The rates and seed of a fault plan. Each rate is a probability in
/// `[0, 1]` applied independently at the matching [`sites`] constant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Seed of the deterministic decision hash.
    pub seed: u64,
    /// [`sites::SHARD_MUTATE`] panic rate.
    pub panic: f64,
    /// [`sites::LOCK_HOLD`] slow-lock rate.
    pub slow: f64,
    /// Milliseconds a fired slow-lock sleeps while holding the lock.
    pub slow_ms: u64,
    /// [`sites::CHECKPOINT_BYTES`] corruption rate.
    pub corrupt: f64,
    /// [`sites::MR_PARTITION`] drop rate.
    pub drop: f64,
    /// [`sites::QUERY`] / [`sites::RECOVERY`] transient-failure rate.
    pub transient: f64,
}

impl FaultSpec {
    /// The documented default chaos mix for `seed`: low but non-zero
    /// rates across every kind, sized so a few hundred operations see
    /// a handful of faults of each kind.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            panic: 0.01,
            slow: 0.002,
            slow_ms: 1,
            corrupt: 0.02,
            drop: 0.02,
            transient: 0.01,
        }
    }

    /// Strict-parses a `DIVMAX_FAULTS` spec: comma-separated
    /// `key=value` pairs, e.g.
    /// `seed=42,panic=0.02,slow=0.01,slow_ms=2,corrupt=0.1,drop=0.05,transient=0.02`.
    ///
    /// `seed` is **required**; every rate defaults to `0.0` (`slow_ms`
    /// to `1`), so a spec enables exactly the kinds it names. Parsing
    /// is strict in the `DIVMAX_THREADS` tradition: unknown keys,
    /// duplicate keys, malformed numbers, and rates outside `[0, 1]`
    /// reject the **whole spec** — a typo must never half-install a
    /// chaos plan.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let mut spec = Self {
            seed: 0,
            panic: 0.0,
            slow: 0.0,
            slow_ms: 1,
            corrupt: 0.0,
            drop: 0.0,
            transient: 0.0,
        };
        let mut seen: Vec<&str> = Vec::new();
        let mut has_seed = false;
        for pair in raw.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                return Err("empty key=value pair".into());
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("`{pair}` is not key=value"))?;
            let key = key.trim();
            if seen.contains(&key) {
                return Err(format!("duplicate key `{key}`"));
            }
            let rate = |v: &str| {
                diversity_obs::env::parse_unit_f64(v).map_err(|why| format!("{key}: {why}"))
            };
            match key {
                "seed" => {
                    spec.seed = diversity_obs::env::parse_u64(value)
                        .map_err(|why| format!("seed: {why}"))?;
                    has_seed = true;
                }
                "slow_ms" => {
                    spec.slow_ms = diversity_obs::env::parse_u64(value)
                        .map_err(|why| format!("slow_ms: {why}"))?;
                }
                "panic" => spec.panic = rate(value)?,
                "slow" => spec.slow = rate(value)?,
                "corrupt" => spec.corrupt = rate(value)?,
                "drop" => spec.drop = rate(value)?,
                "transient" => spec.transient = rate(value)?,
                other => return Err(format!("unknown key `{other}`")),
            }
            seen.push(key);
        }
        if !has_seed {
            return Err("missing required key `seed`".into());
        }
        Ok(spec)
    }
}

/// SplitMix64 finalizer — the same integer hash the dataset generators
/// use; full-period and avalanche-complete, so per-seq decisions are
/// independent for any fixed rate.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site name, mixed into the decision hash so distinct
/// sites see independent fault streams under one seed.
fn site_hash(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The decision value for `(seed, site, seq)` as a unit-interval float
/// (53 mantissa bits): the visit fires iff this is `< rate`.
fn decision(seed: u64, site: &str, seq: u64) -> f64 {
    let h = splitmix64(
        seed ^ site_hash(site).rotate_left(17) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded fault plan: per-site visit counters, the spec's rates, and
/// the ordered log of fired events. Install one process-globally with
/// [`install`]; the injection free functions below consult it.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Per-site visit counters: the `seq` of the decision hash.
    counters: Mutex<HashMap<&'static str, u64>>,
    /// Every fired event, in firing order.
    log: Mutex<Vec<FaultEvent>>,
}

impl FaultPlan {
    /// A plan with the default chaos mix for `seed`
    /// ([`FaultSpec::from_seed`]).
    pub fn from_seed(seed: u64) -> Self {
        Self::from_spec(FaultSpec::from_seed(seed))
    }

    /// A plan with explicit rates.
    pub fn from_spec(spec: FaultSpec) -> Self {
        Self {
            spec,
            counters: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The spec this plan decides with.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Every fault fired so far, in firing order — the deterministic
    /// artifact the chaos harness compares across same-seed runs.
    pub fn log(&self) -> Vec<FaultEvent> {
        self.log.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Visits `site`: bumps its counter and fires `kind` at `rate`.
    /// Returns the firing visit's `seq`, or `None` when the visit
    /// passes clean.
    fn roll(&self, site: &'static str, kind: FaultKind, rate: f64) -> Option<u64> {
        let seq = {
            let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            let c = counters.entry(site).or_insert(0);
            let seq = *c;
            *c += 1;
            seq
        };
        if decision(self.spec.seed, site, seq) < rate {
            self.log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(FaultEvent { site, seq, kind });
            diversity_obs::count("fault.injected", 1);
            diversity_obs::count(kind.counter(), 1);
            Some(seq)
        } else {
            None
        }
    }
}

/// Fast path: is any plan installed? One relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed plan. Only consulted after [`ENABLED`] reads true.
static GLOBAL: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

/// Installs `plan` as the process-global fault source, replacing any
/// previous one. Every injection point in the workspace starts
/// consulting it immediately.
pub fn install(plan: Arc<FaultPlan>) {
    let mut slot = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(plan);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the installed plan (injection points revert to the
/// one-atomic disabled path) and returns it, so a harness can audit
/// its [`FaultPlan::log`].
pub fn uninstall() -> Option<Arc<FaultPlan>> {
    let mut slot = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Release);
    slot.take()
}

/// Whether a fault plan is installed — the single relaxed atomic load
/// every injection point pays when disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed plan, if any (for log audits mid-run).
pub fn plan() -> Option<Arc<FaultPlan>> {
    if !enabled() {
        return None;
    }
    GLOBAL.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Runs `f` against the installed plan, if any.
#[inline]
fn with_plan(f: impl FnOnce(&FaultPlan)) {
    if !enabled() {
        return;
    }
    let slot = GLOBAL.read().unwrap_or_else(|e| e.into_inner());
    if let Some(p) = slot.as_deref() {
        f(p);
    }
}

/// Installs a plan from the `DIVMAX_FAULTS` environment spec
/// ([`FaultSpec::parse`]). Unset → no plan, returns `false`. Set but
/// invalid → **no plan** (never a half-parsed one), a once-per-process
/// stderr warning plus the `env.invalid_value` counters through the
/// obs machinery, returns `false`.
pub fn install_from_env() -> bool {
    let Ok(raw) = std::env::var("DIVMAX_FAULTS") else {
        return false;
    };
    match FaultSpec::parse(&raw) {
        Ok(spec) => {
            install(Arc::new(FaultPlan::from_spec(spec)));
            true
        }
        Err(why) => {
            diversity_obs::env::report_rejected("DIVMAX_FAULTS", &raw, &why, "no fault plan");
            false
        }
    }
}

/// [`sites::SHARD_MUTATE`]-style injection: `panic!`s when the visit
/// fires. Call **inside** the `catch_unwind` scope whose isolation is
/// under test.
#[inline]
pub fn panic_point(site: &'static str) {
    if !enabled() {
        return;
    }
    trip_panic(site);
}

#[cold]
fn trip_panic(site: &'static str) {
    let mut fired = None;
    with_plan(|p| fired = p.roll(site, FaultKind::ShardPanic, p.spec.panic));
    if let Some(seq) = fired {
        panic!("injected fault: shard panic at {site} (seq {seq})");
    }
}

/// [`sites::LOCK_HOLD`]-style injection: sleeps `slow_ms` when the
/// visit fires (call while holding the lock being stressed).
#[inline]
pub fn slow_point(site: &'static str) {
    if !enabled() {
        return;
    }
    let mut sleep_ms = None;
    with_plan(|p| {
        if p.roll(site, FaultKind::SlowLock, p.spec.slow).is_some() {
            sleep_ms = Some(p.spec.slow_ms);
        }
    });
    if let Some(ms) = sleep_ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// [`sites::MR_PARTITION`]-style injection: `true` when this visit's
/// output should be discarded (forcing the caller's retry path).
#[inline]
pub fn should_drop(site: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    let mut fired = false;
    with_plan(|p| {
        fired = p
            .roll(site, FaultKind::DropPartition, p.spec.drop)
            .is_some()
    });
    fired
}

/// [`sites::QUERY`]/[`sites::RECOVERY`]-style injection: `true` when
/// this visit should fail transiently (the caller retries with
/// backoff).
#[inline]
pub fn should_fail(site: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    let mut fired = false;
    with_plan(|p| {
        fired = p
            .roll(site, FaultKind::Transient, p.spec.transient)
            .is_some()
    });
    fired
}

/// [`sites::CHECKPOINT_BYTES`]-style injection: when the visit fires,
/// truncates `text` at a deterministic interior position (guaranteed
/// to make serialized JSON unparseable — the closing delimiter is
/// lost) and returns `true`.
#[inline]
pub fn corrupt_text(site: &'static str, text: &mut String) -> bool {
    if !enabled() {
        return false;
    }
    let mut fired = None;
    with_plan(|p| fired = p.roll(site, FaultKind::CorruptBytes, p.spec.corrupt));
    let Some(seq) = fired else {
        return false;
    };
    if text.len() < 2 {
        text.clear();
        return true;
    }
    let mut pos = 1 + (splitmix64(seq ^ 0xC0DE_C0DE) as usize) % (text.len() - 1);
    while !text.is_char_boundary(pos) {
        pos -= 1;
    }
    text.truncate(pos);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-install tests share process state; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn all_rates(seed: u64, rate: f64) -> FaultSpec {
        FaultSpec {
            seed,
            panic: rate,
            slow: rate,
            slow_ms: 0,
            corrupt: rate,
            drop: rate,
            transient: rate,
        }
    }

    #[test]
    fn disabled_hooks_are_inert() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        panic_point(sites::SHARD_MUTATE); // must not panic
        slow_point(sites::LOCK_HOLD);
        assert!(!should_drop(sites::MR_PARTITION));
        assert!(!should_fail(sites::QUERY));
        let mut s = String::from("{\"k\":1}");
        assert!(!corrupt_text(sites::CHECKPOINT_BYTES, &mut s));
        assert_eq!(s, "{\"k\":1}");
        assert!(plan().is_none());
    }

    #[test]
    fn same_seed_same_schedule_same_log() {
        // No global install needed: drive two plans directly.
        let drive = |plan: &FaultPlan| {
            let mut fired = Vec::new();
            for _ in 0..500 {
                if plan
                    .roll(
                        sites::MR_PARTITION,
                        FaultKind::DropPartition,
                        plan.spec.drop,
                    )
                    .is_some()
                {
                    fired.push(true);
                } else {
                    fired.push(false);
                }
                plan.roll(sites::QUERY, FaultKind::Transient, plan.spec.transient);
            }
            (fired, plan.log())
        };
        let a = drive(&FaultPlan::from_spec(all_rates(42, 0.1)));
        let b = drive(&FaultPlan::from_spec(all_rates(42, 0.1)));
        assert_eq!(a, b, "same seed must reproduce the exact fault log");
        assert!(!a.1.is_empty(), "rate 0.1 over 1000 visits must fire");
        let c = drive(&FaultPlan::from_spec(all_rates(43, 0.1)));
        assert_ne!(a.1, c.1, "a different seed decides differently");
    }

    #[test]
    fn rates_are_respected_at_the_extremes() {
        let never = FaultPlan::from_spec(all_rates(1, 0.0));
        let always = FaultPlan::from_spec(all_rates(1, 1.0));
        for _ in 0..100 {
            assert!(never
                .roll(sites::QUERY, FaultKind::Transient, never.spec.transient)
                .is_none());
            assert!(always
                .roll(sites::QUERY, FaultKind::Transient, always.spec.transient)
                .is_some());
        }
        assert!(never.log().is_empty());
        assert_eq!(always.log().len(), 100);
        // Seqs ascend per site.
        for (i, ev) in always.log().iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.site, sites::QUERY);
            assert_eq!(ev.kind, FaultKind::Transient);
        }
    }

    #[test]
    fn sites_decide_independently() {
        let plan = FaultPlan::from_spec(all_rates(9, 0.5));
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..256 {
            a.push(plan.roll(sites::QUERY, FaultKind::Transient, 0.5).is_some());
            b.push(
                plan.roll(sites::MR_PARTITION, FaultKind::DropPartition, 0.5)
                    .is_some(),
            );
        }
        assert_ne!(a, b, "distinct sites must not share a decision stream");
    }

    #[test]
    fn injected_panic_carries_the_site() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(Arc::new(FaultPlan::from_spec(all_rates(3, 1.0))));
        let err = std::panic::catch_unwind(|| panic_point(sites::SHARD_MUTATE))
            .expect_err("rate 1.0 must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected fault"), "got: {msg}");
        assert!(msg.contains(sites::SHARD_MUTATE), "got: {msg}");
        uninstall();
    }

    #[test]
    fn corruption_always_breaks_json() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(Arc::new(FaultPlan::from_spec(all_rates(11, 1.0))));
        for payload in ["{}", "{\"nodes\":[1,2,3],\"root\":0}", "x"] {
            let mut text = payload.to_string();
            assert!(corrupt_text(sites::CHECKPOINT_BYTES, &mut text));
            assert!(
                text.len() < payload.len(),
                "corruption must shorten {payload:?}"
            );
        }
        uninstall();
    }

    #[test]
    fn spec_parse_accepts_full_and_partial_specs() {
        let full = FaultSpec::parse(
            "seed=42,panic=0.02,slow=0.01,slow_ms=2,corrupt=0.1,drop=0.05,transient=0.02",
        )
        .expect("full spec");
        assert_eq!(full.seed, 42);
        assert_eq!(full.slow_ms, 2);
        assert_eq!(full.panic, 0.02);
        assert_eq!(full.drop, 0.05);

        let partial = FaultSpec::parse("seed=7,drop=1.0").expect("partial spec");
        assert_eq!(partial.seed, 7);
        assert_eq!(partial.drop, 1.0);
        assert_eq!(partial.panic, 0.0, "unnamed kinds stay disabled");
        assert_eq!(partial.slow_ms, 1);

        let spaced = FaultSpec::parse(" seed=1 , panic=0.5 ").expect("whitespace tolerated");
        assert_eq!(spaced.seed, 1);
        assert_eq!(spaced.panic, 0.5);
    }

    #[test]
    fn spec_parse_rejects_garbage_wholesale() {
        for bad in [
            "",                      // empty
            "panic=0.1",             // missing seed
            "seed=x",                // bad seed
            "seed=1,panic=1.5",      // rate out of range
            "seed=1,panic=-0.1",     // negative rate
            "seed=1,panic=abc",      // non-numeric rate
            "seed=1,frobnicate=0.1", // unknown key
            "seed=1,seed=2",         // duplicate key
            "seed=1,panic",          // not key=value
            "seed=1,,panic=0.1",     // empty pair
            "seed=1,slow_ms=-2",     // bad u64
            "seed=1,panic=NaN",      // non-finite rate
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted garbage {bad:?}");
        }
    }
}
