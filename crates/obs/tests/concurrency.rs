//! The contention-free aggregation contract: per-thread
//! [`LocalRecorder`]s merged at a join point produce *exactly* the
//! snapshot a single shared recorder would have produced for the same
//! operations — which is what lets hot fan-out loops (churn readers,
//! GMM workers) record without sharing a cache line.

use diversity_obs::{LocalRecorder, Recorder, Registry, Snapshot};

/// A deterministic per-thread op script: counters, gauges (adds only —
/// `gauge_set` is last-write-wins and so inherently order-dependent),
/// and histogram observations.
fn run_script(r: &dyn Recorder, thread: u64, ops: u64) {
    for i in 0..ops {
        let x = thread * 1_000 + i;
        r.count("ops.total", 1);
        r.count(&format!("ops.thread_kind_{}", thread % 3), 2);
        r.gauge_add("inflight", if i % 2 == 0 { 3 } else { -1 });
        r.observe("latency_ns", x * 37 % 50_000);
        r.observe(&format!("latency_kind_{}_ns", thread % 2), x % 1_000);
    }
}

#[test]
fn per_thread_merge_equals_single_threaded() {
    const THREADS: u64 = 8;
    const OPS: u64 = 500;

    // Route A: one shared thread-safe registry, truly concurrent.
    let shared = Registry::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shared = &shared;
            s.spawn(move || run_script(shared, t, OPS));
        }
    });

    // Route B: per-thread local recorders, merged at the join — in
    // reverse order, to exercise merge-order independence.
    let locals: Vec<Snapshot> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let local = LocalRecorder::new();
                    run_script(&local, t, OPS);
                    local.into_snapshot()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = Snapshot::new();
    for snap in locals.iter().rev() {
        merged.merge(snap);
    }

    assert_eq!(
        merged,
        shared.snapshot_now(),
        "merged per-thread snapshots must equal the shared recorder"
    );

    // And absorbing the locals into a registry is the same aggregate.
    let absorbed = Registry::new();
    for snap in &locals {
        absorbed.absorb(snap);
    }
    assert_eq!(absorbed.snapshot_now(), merged);

    // Spot-check the aggregate itself.
    assert_eq!(merged.counter("ops.total"), Some(THREADS * OPS));
    let h = merged.histogram("latency_ns").unwrap();
    assert_eq!(h.count, THREADS * OPS);
    assert!(h.p99() >= h.p50());
}
