//! Histogram correctness properties: bucket boundaries exact at powers
//! of two, merge associativity/commutativity, quantile monotonicity,
//! and snapshot serde round-trips. These are the invariants the whole
//! observability layer leans on — per-thread merge produces the same
//! aggregate in any order *because* merge is exactly associative and
//! commutative.

use diversity_obs::{bucket_index, bucket_low, Histogram, HistogramSnapshot, SUB_BITS};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every power of two is exactly a bucket boundary: it is the
    /// smallest value of its bucket.
    #[test]
    fn powers_of_two_are_exact_boundaries(k in 0u32..64) {
        let v = 1u64 << k;
        prop_assert_eq!(bucket_low(bucket_index(v)), v);
        if k > 0 {
            // ...and the previous value lands strictly below it.
            prop_assert!(bucket_index(v - 1) < bucket_index(v));
        }
    }

    /// `bucket_low` under-approximates within the guaranteed relative
    /// error, and indexing is monotone.
    #[test]
    fn bucket_error_is_bounded(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        let low = bucket_low(i);
        prop_assert!(low <= v);
        prop_assert!(bucket_index(low) == i, "low maps back to the same bucket");
        let err = (v - low) as f64 / (v.max(1)) as f64;
        prop_assert!(err <= 1.0 / (1u64 << SUB_BITS) as f64 + 1e-12);
    }

    /// Merge is commutative and associative — per-thread snapshots can
    /// fold in any order.
    #[test]
    fn merge_is_commutative_and_associative(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..60),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..60),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..60),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "commutativity");

        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associativity");

        // Merging equals recording the concatenation.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&ab_c, &hist_of(&all));
    }

    /// Quantiles are monotone in `q`, bounded by [min, max], and the
    /// extremes are exact.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        qs in proptest::collection::vec(0.0f64..1.0, 2..10),
    ) {
        let h = hist_of(&values);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        prop_assert_eq!(h.quantile(1.0), hi, "q=1 is the exact max");

        let mut sorted = qs.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = 0u64;
        for q in sorted {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile not monotone at q={q}");
            prop_assert!((lo..=hi).contains(&v));
            prev = v;
        }
    }

    /// The sparse snapshot is lossless: dense → snapshot → dense is
    /// the identity, serde round-trips, and quantiles agree.
    #[test]
    fn snapshot_roundtrips(values in proptest::collection::vec(0u64..1_000_000_000, 0..100)) {
        let h = hist_of(&values);
        let snap = h.snapshot();
        prop_assert_eq!(&Histogram::from_snapshot(&snap), &h);

        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &snap);

        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(snap.quantile(q), h.quantile(q));
        }
    }
}
