//! The [`Recorder`] trait and its two built-in implementations: the
//! thread-safe [`Registry`] (install one globally) and the
//! single-thread [`LocalRecorder`] (per-worker recording that merges
//! into an aggregate at a join point, for hot loops where even an
//! uncontended atomic is too much sharing).

use crate::histogram::Histogram;
use crate::snapshot::{CounterEntry, GaugeEntry, HistogramEntry, Snapshot};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// A sink for metric events.
///
/// Names are dot-separated lowercase paths (`serve.query.e2e_ns`); by
/// convention histograms of durations carry a `_ns` suffix and record
/// nanoseconds. A name is bound to the kind that first records under
/// it — events of another kind under the same name are ignored rather
/// than panicking, since metrics must never take a process down.
///
/// The trait is object-safe and deliberately *not* `Send + Sync` by
/// itself: [`install`](crate::install) adds those bounds, while the
/// [`LocalRecorder`] stays single-threaded and lock-free.
pub trait Recorder {
    /// Adds `delta` to the counter `name`.
    fn count(&self, name: &str, delta: u64);
    /// Sets the gauge `name` to `value`.
    fn gauge_set(&self, name: &str, value: i64);
    /// Adds `delta` (possibly negative) to the gauge `name`.
    fn gauge_add(&self, name: &str, delta: i64);
    /// Records `value` into the histogram `name`.
    fn observe(&self, name: &str, value: u64);
    /// A point-in-time copy of everything recorded so far.
    fn snapshot(&self) -> Snapshot;
}

enum Slot {
    Counter(AtomicU64),
    Gauge(AtomicI64),
    Hist(Mutex<Histogram>),
}

/// The thread-safe default recorder: a registry of named counters,
/// gauges and histograms behind one `RwLock`-ed map.
///
/// The map lock is held only for lookup/insert; counters and gauges
/// are atomics (one RMW per event) and each histogram has its own
/// mutex, so unrelated metrics never contend. For the hottest
/// fan-out loops, prefer a [`LocalRecorder`] per worker merged at the
/// join — the concurrency test in `tests/concurrency.rs` pins that
/// both routes produce the identical [`Snapshot`].
#[derive(Default)]
pub struct Registry {
    slots: RwLock<HashMap<String, Slot>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` on the slot for `name`, creating it with `make` first
    /// if absent (double-checked under the write lock).
    fn with_slot<R>(&self, name: &str, make: impl FnOnce() -> Slot, f: impl Fn(&Slot) -> R) -> R {
        {
            let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
            if let Some(slot) = slots.get(name) {
                return f(slot);
            }
        }
        let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        let slot = slots.entry(name.to_string()).or_insert_with(make);
        f(slot)
    }

    /// Inherent alias for [`Recorder::snapshot`], so holders of a
    /// concrete `Arc<Registry>` can snapshot without importing the
    /// trait.
    pub fn snapshot_now(&self) -> Snapshot {
        Recorder::snapshot(self)
    }

    /// Folds a finished [`Snapshot`] (e.g. from a per-thread
    /// [`LocalRecorder`]) into this registry: counters and gauges add,
    /// histograms merge.
    pub fn absorb(&self, snap: &Snapshot) {
        for c in &snap.counters {
            self.count(&c.name, c.value);
        }
        for g in &snap.gauges {
            self.gauge_add(&g.name, g.value);
        }
        for h in &snap.histograms {
            self.with_slot(
                &h.name,
                || Slot::Hist(Mutex::new(Histogram::new())),
                |slot| {
                    if let Slot::Hist(m) = slot {
                        m.lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .merge(&Histogram::from_snapshot(&h.hist));
                    }
                },
            );
        }
    }
}

impl Recorder for Registry {
    fn count(&self, name: &str, delta: u64) {
        self.with_slot(
            name,
            || Slot::Counter(AtomicU64::new(0)),
            |slot| {
                if let Slot::Counter(c) = slot {
                    c.fetch_add(delta, Ordering::Relaxed);
                }
            },
        );
    }

    fn gauge_set(&self, name: &str, value: i64) {
        self.with_slot(
            name,
            || Slot::Gauge(AtomicI64::new(0)),
            |slot| {
                if let Slot::Gauge(g) = slot {
                    g.store(value, Ordering::Relaxed);
                }
            },
        );
    }

    fn gauge_add(&self, name: &str, delta: i64) {
        self.with_slot(
            name,
            || Slot::Gauge(AtomicI64::new(0)),
            |slot| {
                if let Slot::Gauge(g) = slot {
                    g.fetch_add(delta, Ordering::Relaxed);
                }
            },
        );
    }

    fn observe(&self, name: &str, value: u64) {
        self.with_slot(
            name,
            || Slot::Hist(Mutex::new(Histogram::new())),
            |slot| {
                if let Slot::Hist(m) = slot {
                    m.lock().unwrap_or_else(|e| e.into_inner()).record(value);
                }
            },
        );
    }

    fn snapshot(&self) -> Snapshot {
        let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
        let mut snap = Snapshot::new();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => snap.counters.push(CounterEntry {
                    name: name.clone(),
                    value: c.load(Ordering::Relaxed),
                }),
                Slot::Gauge(g) => snap.gauges.push(GaugeEntry {
                    name: name.clone(),
                    value: g.load(Ordering::Relaxed),
                }),
                Slot::Hist(m) => snap.histograms.push(HistogramEntry {
                    name: name.clone(),
                    hist: m.lock().unwrap_or_else(|e| e.into_inner()).snapshot(),
                }),
            }
        }
        snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }
}

enum LocalSlot {
    Counter(u64),
    Gauge(i64),
    Hist(Histogram),
}

/// A single-thread recorder: plain map, no atomics, no locks. Not
/// `Sync`, so it cannot be installed globally — hand one to each
/// worker, then [`merge`](Snapshot::merge) or
/// [`absorb`](Registry::absorb) the snapshots at the join point. The
/// aggregate equals what one shared recorder would have seen (counters
/// and histograms are order-independent; for gauges, use `gauge_add`).
#[derive(Default)]
pub struct LocalRecorder {
    slots: RefCell<HashMap<String, LocalSlot>>,
}

impl LocalRecorder {
    /// An empty local recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder into its snapshot.
    pub fn into_snapshot(self) -> Snapshot {
        self.snapshot()
    }
}

impl Recorder for LocalRecorder {
    fn count(&self, name: &str, delta: u64) {
        let mut slots = self.slots.borrow_mut();
        if let LocalSlot::Counter(c) = slots
            .entry(name.to_string())
            .or_insert(LocalSlot::Counter(0))
        {
            *c = c.saturating_add(delta);
        }
    }

    fn gauge_set(&self, name: &str, value: i64) {
        let mut slots = self.slots.borrow_mut();
        if let LocalSlot::Gauge(g) = slots.entry(name.to_string()).or_insert(LocalSlot::Gauge(0)) {
            *g = value;
        }
    }

    fn gauge_add(&self, name: &str, delta: i64) {
        let mut slots = self.slots.borrow_mut();
        if let LocalSlot::Gauge(g) = slots.entry(name.to_string()).or_insert(LocalSlot::Gauge(0)) {
            *g = g.saturating_add(delta);
        }
    }

    fn observe(&self, name: &str, value: u64) {
        let mut slots = self.slots.borrow_mut();
        if let LocalSlot::Hist(h) = slots
            .entry(name.to_string())
            .or_insert_with(|| LocalSlot::Hist(Histogram::new()))
        {
            h.record(value);
        }
    }

    fn snapshot(&self) -> Snapshot {
        let slots = self.slots.borrow();
        let mut snap = Snapshot::new();
        for (name, slot) in slots.iter() {
            match slot {
                LocalSlot::Counter(c) => snap.counters.push(CounterEntry {
                    name: name.clone(),
                    value: *c,
                }),
                LocalSlot::Gauge(g) => snap.gauges.push(GaugeEntry {
                    name: name.clone(),
                    value: *g,
                }),
                LocalSlot::Hist(h) => snap.histograms.push(HistogramEntry {
                    name: name.clone(),
                    hist: h.snapshot(),
                }),
            }
        }
        snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_records_all_three_kinds() {
        let r = Registry::new();
        r.count("c", 2);
        r.count("c", 3);
        r.gauge_set("g", 7);
        r.gauge_add("g", -2);
        r.observe("h", 100);
        r.observe("h", 200);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(5));
        assert_eq!(s.gauge("g"), Some(5));
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 200);
    }

    #[test]
    fn kind_mismatch_is_ignored_not_fatal() {
        let r = Registry::new();
        r.count("x", 1);
        r.observe("x", 99); // wrong kind: dropped
        r.gauge_set("x", -5); // wrong kind: dropped
        let s = r.snapshot();
        assert_eq!(s.counter("x"), Some(1));
        assert!(s.histogram("x").is_none());
        assert!(s.gauge("x").is_none());
    }

    #[test]
    fn local_recorder_matches_registry() {
        let local = LocalRecorder::new();
        let shared = Registry::new();
        for r in [&local as &dyn Recorder, &shared as &dyn Recorder] {
            r.count("ops", 4);
            r.observe("lat", 10);
            r.observe("lat", 30);
            r.gauge_add("size", 6);
        }
        assert_eq!(local.into_snapshot(), shared.snapshot());
    }

    #[test]
    fn absorb_equals_direct_recording() {
        let direct = Registry::new();
        let local = LocalRecorder::new();
        for i in 0..10u64 {
            direct.count("n", 1);
            direct.observe("v", i * 100);
            local.count("n", 1);
            local.observe("v", i * 100);
        }
        let via_absorb = Registry::new();
        via_absorb.absorb(&local.into_snapshot());
        assert_eq!(via_absorb.snapshot(), direct.snapshot());
    }
}
