//! Strict environment-knob parsing with warn-once reporting.
//!
//! The workspace's tuning knobs (`DIVMAX_THREADS`, `SERVE_CHURN_OPS`)
//! used to fall back silently on garbage values — a typo like
//! `DIVMAX_THREADS=fourteen` quietly ran single-threaded-by-default
//! and skewed every benchmark. Parsing is now strict: a set-but-invalid
//! value is *rejected*, reported once per variable (a line on stderr
//! plus the `env.invalid_value` counter and a per-variable
//! `env.invalid.<NAME>` counter through the installed recorder), and
//! replaced by the documented default.
//!
//! The pure parser [`parse_positive_usize`] is separated from the
//! env-reading wrapper so the rejection paths are unit-testable
//! without mutating process-global environment state (which races
//! under the parallel test runner).

use std::sync::Mutex;

/// Variables already warned about (process lifetime).
static WARNED: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Strictly parses a positive (`>= 1`) `usize` knob value: leading and
/// trailing whitespace is tolerated, anything else — empty strings,
/// signs, zero, non-digits, overflow — is an error describing the
/// rejection.
pub fn parse_positive_usize(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".into());
    }
    // `usize::parse` tolerates a leading `+`; a strict knob does not.
    if !trimmed.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("not a positive integer: `{trimmed}`"));
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("must be >= 1".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("not a positive integer: `{trimmed}`")),
    }
}

/// Reads env knob `name` as a positive `usize`: `default` when unset;
/// strict-parsed when set, with invalid values rejected via
/// [`report_invalid`] (warn once, count always) and replaced by
/// `default`.
pub fn positive_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => positive_usize_value(name, &raw, default),
    }
}

/// The testable core of [`positive_usize`]: decides on an
/// already-fetched raw value.
pub fn positive_usize_value(name: &str, raw: &str, default: usize) -> usize {
    match parse_positive_usize(raw) {
        Ok(n) => n,
        Err(why) => {
            report_invalid(name, raw, &why, default);
            default
        }
    }
}

/// Reports a rejected knob value: increments the `env.invalid_value`
/// and `env.invalid.<NAME>` counters on the installed recorder every
/// time, and prints one stderr warning per variable per process.
pub fn report_invalid(name: &str, raw: &str, why: &str, default: usize) {
    report_rejected(name, raw, why, &default.to_string());
}

/// The general form of [`report_invalid`] for knobs whose fallback is
/// not a number (e.g. `DIVMAX_FAULTS`, where the fallback is "no fault
/// plan"): same counters, same warn-once-per-variable stderr line.
pub fn report_rejected(name: &str, raw: &str, why: &str, fallback: &str) {
    crate::count("env.invalid_value", 1);
    crate::count(&format!("env.invalid.{name}"), 1);
    let mut warned = WARNED.lock().unwrap_or_else(|e| e.into_inner());
    if !warned.iter().any(|w| w == name) {
        warned.push(name.to_string());
        eprintln!("[divmax-obs] ignoring invalid {name}={raw:?} ({why}); using {fallback}");
    }
}

/// Strictly parses an enumerated-choice knob value: the trimmed value
/// must match one of `allowed` **exactly** (case-sensitive — strict
/// knobs don't guess at `OFF` vs `off`). Returns the index into
/// `allowed`, so callers map it onto their own enum without string
/// plumbing.
pub fn parse_choice(raw: &str, allowed: &[&str]) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".into());
    }
    allowed
        .iter()
        .position(|a| *a == trimmed)
        .ok_or_else(|| format!("expected one of {allowed:?}, got `{trimmed}`"))
}

/// Reads env knob `name` as one of `allowed`: `default` (an index into
/// `allowed`) when unset; strict-parsed when set, with invalid values
/// rejected via [`report_rejected`] (warn once, count always) and
/// replaced by the default choice.
///
/// # Panics
/// Panics if `default >= allowed.len()`.
pub fn choice(name: &str, allowed: &[&str], default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => choice_value(name, &raw, allowed, default),
    }
}

/// The testable core of [`choice`]: decides on an already-fetched raw
/// value.
pub fn choice_value(name: &str, raw: &str, allowed: &[&str], default: usize) -> usize {
    assert!(default < allowed.len(), "default index out of range");
    match parse_choice(raw, allowed) {
        Ok(i) => i,
        Err(why) => {
            report_rejected(name, raw, &why, allowed[default]);
            default
        }
    }
}

/// Strictly parses an unsigned integer knob value (zero allowed —
/// seeds are u64s, not counts): trimmed digits only; signs, empties,
/// non-digits, and overflow are rejections.
pub fn parse_u64(raw: &str) -> Result<u64, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".into());
    }
    if !trimmed.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("not an unsigned integer: `{trimmed}`"));
    }
    trimmed
        .parse::<u64>()
        .map_err(|_| format!("not an unsigned integer: `{trimmed}`"))
}

/// Strictly parses a probability knob value: a finite float in
/// `[0, 1]`. Leading `+`, NaN, infinities, and out-of-range values are
/// rejections (never clamped).
pub fn parse_unit_f64(raw: &str) -> Result<f64, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".into());
    }
    if trimmed.starts_with('+') {
        return Err(format!("not a probability: `{trimmed}`"));
    }
    match trimmed.parse::<f64>() {
        Ok(v) if v.is_finite() && (0.0..=1.0).contains(&v) => Ok(v),
        Ok(v) => Err(format!("probability {v} outside [0, 1]")),
        Err(_) => Err(format!("not a probability: `{trimmed}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_values_parse() {
        assert_eq!(parse_positive_usize("1"), Ok(1));
        assert_eq!(parse_positive_usize("64"), Ok(64));
        assert_eq!(parse_positive_usize("  8  "), Ok(8));
    }

    #[test]
    fn rejection_paths() {
        for bad in ["", "   ", "0", "-3", "+2", "1.5", "fourteen", "8 threads"] {
            assert!(
                parse_positive_usize(bad).is_err(),
                "accepted garbage value {bad:?}"
            );
        }
        // usize overflow is a rejection, not a wrap.
        assert!(parse_positive_usize("99999999999999999999999999").is_err());
    }

    #[test]
    fn invalid_value_falls_back_to_default() {
        assert_eq!(positive_usize_value("TEST_KNOB_A", "garbage", 7), 7);
        assert_eq!(positive_usize_value("TEST_KNOB_A", "0", 7), 7);
        assert_eq!(positive_usize_value("TEST_KNOB_A", "12", 7), 12);
    }

    #[test]
    fn unset_variable_is_the_default_not_a_warning() {
        assert_eq!(positive_usize("DIVMAX_OBS_NO_SUCH_VAR_12345", 3), 3);
    }

    #[test]
    fn choice_values_parse_strictly() {
        const MODES: &[&str] = &["off", "auto", "on"];
        assert_eq!(parse_choice("off", MODES), Ok(0));
        assert_eq!(parse_choice("auto", MODES), Ok(1));
        assert_eq!(parse_choice(" on ", MODES), Ok(2));
        // Per-value rejections: empties, case drift, typos, numerics,
        // and multi-token values must all be rejected, never guessed.
        for bad in [
            "", "   ", "OFF", "On", "AUTO", "0", "1", "true", "of", "onn", "on off",
        ] {
            assert!(parse_choice(bad, MODES).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn invalid_choice_falls_back_to_default() {
        const MODES: &[&str] = &["off", "auto", "on"];
        assert_eq!(choice_value("TEST_KNOB_B", "garbage", MODES, 1), 1);
        assert_eq!(choice_value("TEST_KNOB_B", "on", MODES, 1), 2);
        assert_eq!(choice("DIVMAX_OBS_NO_SUCH_VAR_99887", MODES, 0), 0);
    }

    #[test]
    fn u64_values_parse_strictly() {
        assert_eq!(parse_u64("0"), Ok(0));
        assert_eq!(parse_u64("42"), Ok(42));
        assert_eq!(parse_u64(" 7 "), Ok(7));
        for bad in ["", "  ", "-1", "+2", "1.5", "seed", "0x10"] {
            assert!(parse_u64(bad).is_err(), "accepted garbage value {bad:?}");
        }
        assert!(parse_u64("99999999999999999999999999").is_err());
    }

    #[test]
    fn unit_f64_values_parse_strictly() {
        assert_eq!(parse_unit_f64("0"), Ok(0.0));
        assert_eq!(parse_unit_f64("1"), Ok(1.0));
        assert_eq!(parse_unit_f64("0.25"), Ok(0.25));
        assert_eq!(parse_unit_f64(" 5e-2 "), Ok(0.05));
        for bad in ["", "+0.5", "-0.1", "1.01", "NaN", "inf", "-inf", "half"] {
            assert!(
                parse_unit_f64(bad).is_err(),
                "accepted garbage value {bad:?}"
            );
        }
    }
}
