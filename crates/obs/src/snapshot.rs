//! The in-memory sink: a point-in-time, serde-able [`Snapshot`] of
//! every metric a recorder has seen.
//!
//! Snapshots are *mergeable* — counters and gauges add, histograms
//! merge bucket-wise — so per-thread [`LocalRecorder`]s fold into one
//! aggregate with plain data operations, off the hot path. Entries are
//! kept sorted by name, which makes the JSON wire format deterministic
//! (it is pinned in `tests/task_serde.rs`) and `merge` order-independent.
//!
//! [`LocalRecorder`]: crate::LocalRecorder

use crate::histogram::HistogramSnapshot;
use serde::{Deserialize, Serialize};

/// One named counter value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name (dot-separated, e.g. `gmm.rounds`).
    pub name: String,
    /// Monotonic total.
    pub value: u64,
}

/// One named gauge value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name (e.g. `serve.pool0.shard2.occupancy`).
    pub name: String,
    /// Last set (or accumulated) value.
    pub value: i64,
}

/// One named histogram.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric name (e.g. `serve.query.e2e_ns`).
    pub name: String,
    /// The sparse histogram state.
    pub hist: HistogramSnapshot,
}

/// A point-in-time view of every metric a recorder holds, sorted by
/// name within each kind. Serde-able (the wire format is pinned), and
/// mergeable: counters/gauges add, histograms merge exactly.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotonic counters, ascending by name.
    pub counters: Vec<CounterEntry>,
    /// Point-in-time gauges, ascending by name.
    pub gauges: Vec<GaugeEntry>,
    /// Latency/size histograms, ascending by name.
    pub histograms: Vec<HistogramEntry>,
}

impl Snapshot {
    /// A snapshot with no metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no metric of any kind is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter total by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].value)
    }

    /// Looks up a gauge value by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].value)
    }

    /// Looks up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].hist)
    }

    /// Sums every gauge whose name starts with `prefix` — e.g. the
    /// per-shard occupancy gauges of one pool, whose sum must equal the
    /// pool's live point count at a quiescent point.
    pub fn gauge_prefix_sum(&self, prefix: &str) -> i64 {
        self.gauges
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .map(|e| e.value)
            .sum()
    }

    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise. Associative and commutative, so any fold
    /// order over per-thread snapshots yields the same aggregate.
    pub fn merge(&mut self, other: &Snapshot) {
        for c in &other.counters {
            match self
                .counters
                .binary_search_by(|e| e.name.as_str().cmp(&c.name))
            {
                Ok(i) => {
                    self.counters[i].value = self.counters[i].value.saturating_add(c.value);
                }
                // Insert in place: the sorted invariant must hold for
                // the next iteration's binary search.
                Err(pos) => self.counters.insert(pos, c.clone()),
            }
        }
        for g in &other.gauges {
            match self
                .gauges
                .binary_search_by(|e| e.name.as_str().cmp(&g.name))
            {
                Ok(i) => self.gauges[i].value = self.gauges[i].value.saturating_add(g.value),
                Err(pos) => self.gauges.insert(pos, g.clone()),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|e| e.name.as_str().cmp(&h.name))
            {
                Ok(i) => self.histograms[i].hist.merge(&h.hist),
                Err(pos) => self.histograms.insert(pos, h.clone()),
            }
        }
    }

    /// Renders the snapshot as the human-readable table `divmax-stats`
    /// prints: one section per kind, histograms with
    /// count/mean/p50/p90/p99/max.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            let w = col_width(self.counters.iter().map(|e| e.name.len()));
            for e in &self.counters {
                out.push_str(&format!("  {:w$}  {}\n", e.name, e.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            let w = col_width(self.gauges.iter().map(|e| e.name.len()));
            for e in &self.gauges {
                out.push_str(&format!("  {:w$}  {}\n", e.name, e.value));
            }
        }
        if !self.histograms.is_empty() {
            let w = col_width(self.histograms.iter().map(|e| e.name.len()));
            out.push_str(&format!(
                "histograms\n  {:w$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "name", "count", "mean", "p50", "p90", "p99", "max"
            ));
            for e in &self.histograms {
                let h = &e.hist;
                out.push_str(&format!(
                    "  {:w$}  {:>10} {:>12.1} {:>12} {:>12} {:>12} {:>12}\n",
                    e.name,
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(empty snapshot)\n");
        }
        out
    }
}

fn col_width(lens: impl Iterator<Item = usize>) -> usize {
    lens.max().unwrap_or(4).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counters: &[(&str, u64)]) -> Snapshot {
        let mut s = Snapshot::new();
        for &(name, value) in counters {
            s.counters.push(CounterEntry {
                name: name.into(),
                value,
            });
        }
        s.counters.sort_by(|a, b| a.name.cmp(&b.name));
        s
    }

    #[test]
    fn merge_adds_and_keeps_sorted() {
        let mut a = snap(&[("b", 1), ("d", 2)]);
        let b = snap(&[("a", 10), ("b", 5)]);
        a.merge(&b);
        let names: Vec<&str> = a.counters.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "d"]);
        assert_eq!(a.counter("b"), Some(6));
        assert_eq!(a.counter("a"), Some(10));
        assert_eq!(a.counter("missing"), None);
    }

    #[test]
    fn gauge_prefix_sum_scopes_by_prefix() {
        let mut s = Snapshot::new();
        for (name, value) in [("p0.shard0", 3), ("p0.shard1", 4), ("p1.shard0", 9)] {
            s.gauges.push(GaugeEntry {
                name: name.into(),
                value,
            });
        }
        s.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(s.gauge_prefix_sum("p0."), 7);
        assert_eq!(s.gauge_prefix_sum("p1."), 9);
        assert_eq!(s.gauge_prefix_sum(""), 16);
    }

    #[test]
    fn render_mentions_every_metric() {
        let mut s = snap(&[("gmm.rounds", 12)]);
        s.histograms.push(HistogramEntry {
            name: "q_ns".into(),
            hist: {
                let mut h = crate::Histogram::new();
                h.record(100);
                h.snapshot()
            },
        });
        let table = s.render();
        assert!(table.contains("gmm.rounds"));
        assert!(table.contains("q_ns"));
        assert!(table.contains("p99"));
    }
}
