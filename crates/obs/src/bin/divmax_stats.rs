//! `divmax-stats` — pretty-print a `DIVMAX_OBS` JSONL export (or a
//! serialized `Snapshot`) as a human-readable table.
//!
//! ```text
//! divmax-stats METRICS.jsonl                      # render the table
//! divmax-stats METRICS.jsonl --assert-keys a,b,c  # CI: exit 1 unless
//!                                                 # every named metric
//!                                                 # is present
//! ```
//!
//! Each appended dump is a *cumulative* snapshot of its recorder, so
//! aggregation is last-wins per metric name: the table shows the most
//! recent state of every metric ever exported to the file.

use diversity_obs::{CounterEntry, GaugeEntry, HistogramEntry, JsonLine, Snapshot};

fn usage() -> ! {
    eprintln!("usage: divmax-stats <metrics.jsonl> [--assert-keys name,name,...]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut assert_keys: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--assert-keys" => {
                i += 1;
                let Some(list) = args.get(i) else { usage() };
                assert_keys.extend(list.split(',').map(|s| s.trim().to_string()));
            }
            "-h" | "--help" => usage(),
            arg if path.is_none() => path = Some(arg.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let Some(path) = path else { usage() };

    // A JSONL export is the common input; a whole-`Snapshot` JSON file
    // (e.g. the `telemetry` field cut out of a Report) also works.
    let snap = match diversity_obs::read_jsonl(std::path::Path::new(&path)) {
        Ok(lines) => aggregate(lines),
        Err(jsonl_err) => match std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str::<Snapshot>(&text).ok())
        {
            Some(snap) => snap,
            None => {
                eprintln!("divmax-stats: cannot read {path}: {jsonl_err}");
                std::process::exit(1);
            }
        },
    };

    print!("{}", snap.render());

    let mut missing: Vec<&String> = assert_keys
        .iter()
        .filter(|k| {
            snap.counter(k).is_none() && snap.gauge(k).is_none() && snap.histogram(k).is_none()
        })
        .collect();
    missing.sort();
    if !missing.is_empty() {
        eprintln!(
            "divmax-stats: missing expected metrics: {}",
            missing
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }
}

/// Folds exported lines into one snapshot, last-wins per name (each
/// dump appended to the file is cumulative already).
fn aggregate(lines: Vec<JsonLine>) -> Snapshot {
    let mut counters: std::collections::BTreeMap<String, u64> = Default::default();
    let mut gauges: std::collections::BTreeMap<String, i64> = Default::default();
    let mut hists: std::collections::BTreeMap<String, diversity_obs::HistogramSnapshot> =
        Default::default();
    for line in lines {
        match (line.kind.as_str(), line.histogram) {
            ("counter", _) => {
                counters.insert(line.name, u64::try_from(line.value).unwrap_or(0));
            }
            ("gauge", _) => {
                gauges.insert(line.name, line.value);
            }
            ("histogram", Some(hist)) => {
                hists.insert(line.name, hist);
            }
            _ => {}
        }
    }
    let mut snap = Snapshot::new();
    snap.counters = counters
        .into_iter()
        .map(|(name, value)| CounterEntry { name, value })
        .collect();
    snap.gauges = gauges
        .into_iter()
        .map(|(name, value)| GaugeEntry { name, value })
        .collect();
    snap.histograms = hists
        .into_iter()
        .map(|(name, hist)| HistogramEntry { name, hist })
        .collect();
    snap
}
