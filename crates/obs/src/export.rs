//! The offline sink: a JSON-lines exporter gated by the `DIVMAX_OBS`
//! environment variable.
//!
//! Every metric becomes one self-contained [`JsonLine`] appended to
//! the target file, so long-running harnesses (the churn stress, CI
//! smokes) can dump successive snapshots into one file and an offline
//! tool — `divmax-stats`, or anything that reads JSON lines — can
//! aggregate them later. Lines carry a uniform shape (the vendored
//! serde requires every field present), with `histogram: null` on
//! counter/gauge lines.

use crate::histogram::HistogramSnapshot;
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// The environment variable naming the JSONL export path.
pub const ENV_VAR: &str = "DIVMAX_OBS";

/// One exported metric: the uniform JSONL line shape.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JsonLine {
    /// `"counter"`, `"gauge"` or `"histogram"`.
    pub kind: String,
    /// Metric name.
    pub name: String,
    /// Counter/gauge value (counters are non-negative); 0 for
    /// histograms.
    pub value: i64,
    /// Histogram state; `null` for counters and gauges.
    pub histogram: Option<HistogramSnapshot>,
}

/// Flattens a snapshot into its JSONL lines, in snapshot order
/// (counters, then gauges, then histograms; each sorted by name).
pub fn to_lines(snap: &Snapshot) -> Vec<JsonLine> {
    let mut lines = Vec::new();
    for c in &snap.counters {
        lines.push(JsonLine {
            kind: "counter".into(),
            name: c.name.clone(),
            value: i64::try_from(c.value).unwrap_or(i64::MAX),
            histogram: None,
        });
    }
    for g in &snap.gauges {
        lines.push(JsonLine {
            kind: "gauge".into(),
            name: g.name.clone(),
            value: g.value,
            histogram: None,
        });
    }
    for h in &snap.histograms {
        lines.push(JsonLine {
            kind: "histogram".into(),
            name: h.name.clone(),
            value: 0,
            histogram: Some(h.hist.clone()),
        });
    }
    lines
}

/// Appends one JSONL line per metric in `snap` to `path` (creating the
/// file if needed).
pub fn export_jsonl(snap: &Snapshot, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf = String::new();
    for line in to_lines(snap) {
        buf.push_str(&serde_json::to_string(&line).map_err(std::io::Error::other)?);
        buf.push('\n');
    }
    file.write_all(buf.as_bytes())
}

/// The `DIVMAX_OBS` path, if set to a non-empty value.
pub fn env_path() -> Option<PathBuf> {
    std::env::var(ENV_VAR)
        .ok()
        .filter(|s| !s.trim().is_empty())
        .map(PathBuf::from)
}

/// Appends `snap` to the `DIVMAX_OBS` path when the variable is set;
/// returns whether anything was written. The no-variable case is the
/// common one and costs one env lookup.
pub fn export_to_env_path(snap: &Snapshot) -> std::io::Result<bool> {
    match env_path() {
        Some(path) => export_jsonl(snap, &path).map(|()| true),
        None => Ok(false),
    }
}

/// Reads a JSONL export back: one [`JsonLine`] per non-empty line.
/// Fails on the first malformed line — the CI smoke uses this as the
/// "output parses" assertion.
pub fn read_jsonl(path: &Path) -> std::io::Result<Vec<JsonLine>> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed: JsonLine = serde_json::from_str(line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", i + 1),
            )
        })?;
        lines.push(parsed);
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, Registry};

    #[test]
    fn jsonl_roundtrips_through_a_file() {
        let r = Registry::new();
        r.count("gmm.rounds", 7);
        r.gauge_set("pool.occupancy", -1);
        r.observe("query_ns", 12_345);
        let snap = r.snapshot();

        let path = std::env::temp_dir().join(format!("obs_jsonl_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        export_jsonl(&snap, &path).unwrap();
        export_jsonl(&snap, &path).unwrap(); // appends, still parses
        let lines = read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0].kind, "counter");
        assert_eq!(lines[0].name, "gmm.rounds");
        assert_eq!(lines[0].value, 7);
        let hist = lines[2].histogram.as_ref().unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.max, 12_345);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let path = std::env::temp_dir().join(format!("obs_bad_{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"kind\":\"counter\"}\n").unwrap();
        assert!(read_jsonl(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
