//! # diversity-obs
//!
//! Zero-cost-when-disabled structured observability for the
//! diversity-maximization stack: counters, gauges, log2-bucketed
//! latency [`Histogram`]s with mergeable [`Snapshot`]s, and lightweight
//! [`span!`] guards — vendored-deps-only, like the rest of the
//! workspace.
//!
//! The paper's whole argument is quantitative (coreset sizes, round
//! counts, `M_L`/`M_T` memory, update/query latencies — §5 of
//! Ceccarello et al., PVLDB 2017), so every layer of the repro is
//! instrumented through this crate: GMM rounds in `diversity-core`,
//! batch kernels in `metric`, the streaming `DoublingCore`'s phases,
//! the MapReduce round driver, the dynamic engine's per-op latencies,
//! and the serving pool's lock/query/checkpoint timings.
//!
//! ## The cost model
//!
//! Nothing records unless a [`Recorder`] is installed. Every
//! instrumentation hook first checks one process-global relaxed
//! `AtomicBool` — so with no recorder the instrumented hot paths pay
//! ~one atomic load per *batch-level* event (never per point; the
//! `BENCH_obs.json` bench records both modes side by side). With a
//! recorder installed, events go to the installed sink: the default
//! [`Registry`] (atomic counters/gauges, per-histogram mutexes), or
//! per-thread [`LocalRecorder`]s merged at a join point when even
//! uncontended atomics are too much sharing.
//!
//! ## Enabling
//!
//! ```
//! use std::sync::Arc;
//! use diversity_obs as obs;
//!
//! let registry = Arc::new(obs::Registry::new());
//! obs::install(registry.clone());
//!
//! obs::count("demo.events", 3);
//! {
//!     let _span = obs::span!("demo.work_ns"); // records elapsed ns on drop
//! }
//! let snap = registry.snapshot_now();
//! assert_eq!(snap.counter("demo.events"), Some(3));
//! assert_eq!(snap.histogram("demo.work_ns").unwrap().count, 1);
//!
//! // Optional offline sink: appends JSON lines when DIVMAX_OBS=path.
//! obs::export_to_env_path(&snap).unwrap();
//! obs::uninstall();
//! ```
//!
//! The `divmax-stats` binary (this crate) pretty-prints a `DIVMAX_OBS`
//! JSONL file — or asserts it contains expected metric keys, which is
//! how CI checks the churn-stress export.

mod export;
mod histogram;
mod recorder;
mod snapshot;

pub mod env;

pub use export::{
    env_path, export_jsonl, export_to_env_path, read_jsonl, to_lines, JsonLine, ENV_VAR,
};
pub use histogram::{bucket_index, bucket_low, Bucket, Histogram, HistogramSnapshot, SUB_BITS};
pub use recorder::{LocalRecorder, Recorder, Registry};
pub use snapshot::{CounterEntry, GaugeEntry, HistogramEntry, Snapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Fast path: is any recorder installed? One relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder. Only consulted after [`ENABLED`] reads true.
static GLOBAL: RwLock<Option<Arc<dyn Recorder + Send + Sync>>> = RwLock::new(None);

/// Installs `recorder` as the process-global sink, replacing any
/// previous one. Instrumented code all over the workspace starts
/// recording into it immediately.
pub fn install(recorder: Arc<dyn Recorder + Send + Sync>) {
    let mut slot = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the installed recorder (instrumentation reverts to the
/// ~one-atomic disabled path) and returns it, so a harness can drain
/// its final snapshot.
pub fn uninstall() -> Option<Arc<dyn Recorder + Send + Sync>> {
    let mut slot = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Release);
    slot.take()
}

/// Whether a recorder is installed — the single relaxed atomic load
/// every hook pays when disabled. Instrumented code may use this to
/// skip preparing event data (formatting names, diffing stats) when
/// nobody is listening.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f` against the installed recorder, if any.
#[inline]
fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !enabled() {
        return;
    }
    let slot = GLOBAL.read().unwrap_or_else(|e| e.into_inner());
    if let Some(r) = slot.as_deref() {
        f(r);
    }
}

/// Adds `delta` to counter `name` on the installed recorder (no-op
/// when disabled).
#[inline]
pub fn count(name: &str, delta: u64) {
    with_recorder(|r| r.count(name, delta));
}

/// Sets gauge `name` on the installed recorder (no-op when disabled).
#[inline]
pub fn gauge_set(name: &str, value: i64) {
    with_recorder(|r| r.gauge_set(name, value));
}

/// Adds `delta` to gauge `name` on the installed recorder (no-op when
/// disabled).
#[inline]
pub fn gauge_add(name: &str, delta: i64) {
    with_recorder(|r| r.gauge_add(name, delta));
}

/// Records `value` into histogram `name` on the installed recorder
/// (no-op when disabled).
#[inline]
pub fn observe(name: &str, value: u64) {
    with_recorder(|r| r.observe(name, value));
}

/// A point-in-time snapshot of the installed recorder, or `None` when
/// disabled — exactly what `Report.telemetry` carries.
pub fn snapshot() -> Option<Snapshot> {
    let mut out = None;
    with_recorder(|r| out = Some(r.snapshot()));
    out
}

/// A guard that records its elapsed nanoseconds into histogram `name`
/// when dropped. Created by [`span()`] / [`span!`]; nestable (each
/// guard is independent). When no recorder is installed the guard is
/// inert: construction is one atomic load and drop is a `None` check.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    live: Option<(&'static str, Instant)>,
}

impl Span {
    /// Elapsed time so far, when the span is live (recorder installed
    /// at creation).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.live
            .map(|(_, t0)| u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Discards the span without recording.
    pub fn cancel(mut self) {
        self.live = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, t0)) = self.live.take() {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            observe(name, ns);
        }
    }
}

/// Starts a span recording elapsed-ns into histogram `name` on drop.
/// See [`Span`]; the [`span!`] macro is the conventional spelling at
/// instrumentation sites.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        live: enabled().then(|| (name, Instant::now())),
    }
}

/// `span!("gmm.relax_ns")` — starts a [`Span`] guard that records its
/// elapsed nanoseconds into the named histogram when it goes out of
/// scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-install tests share process state; serialize them.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_hooks_are_inert() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        count("nobody.listening", 1);
        observe("nobody.listening_ns", 5);
        assert!(snapshot().is_none());
        let s = span("nobody.span_ns");
        assert!(s.elapsed_ns().is_none());
        drop(s);
    }

    #[test]
    fn install_routes_events_and_uninstall_stops_them() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let registry = Arc::new(Registry::new());
        install(registry.clone());
        count("lib.events", 2);
        gauge_set("lib.level", 9);
        gauge_add("lib.level", -4);
        {
            let _s = span!("lib.block_ns");
        }
        let snap = snapshot().expect("recorder installed");
        assert_eq!(snap.counter("lib.events"), Some(2));
        assert_eq!(snap.gauge("lib.level"), Some(5));
        assert_eq!(snap.histogram("lib.block_ns").unwrap().count, 1);

        let back = uninstall().expect("was installed");
        count("lib.events", 50);
        assert_eq!(back.snapshot().counter("lib.events"), Some(2));
        assert!(snapshot().is_none());
    }

    #[test]
    fn cancelled_spans_do_not_record() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let registry = Arc::new(Registry::new());
        install(registry.clone());
        span!("lib.cancelled_ns").cancel();
        assert!(registry
            .snapshot_now()
            .histogram("lib.cancelled_ns")
            .is_none());
        uninstall();
    }
}
