//! The log2-bucketed latency/size histogram.
//!
//! The design target is the paper's experimental tables: update-time
//! and query-time *distributions* (p50/p90/p99), not just means — the
//! successor dynamic-engine papers (arXiv 2302.07771) evaluate entirely
//! on amortized update-time distributions, so the repro needs the same
//! lens. The constraints are those of a hot-path metrics layer:
//!
//! * **O(1) record** with no allocation after warm-up;
//! * **mergeable**: per-thread histograms combine by bucket-wise
//!   addition, exactly associative and commutative, so concurrent
//!   recorders aggregate without sharing a cache line;
//! * **bounded error**: each power of two is split into
//!   2^[`SUB_BITS`] linear sub-buckets, so any recorded value lands in
//!   a bucket whose lower boundary is within `1/2^SUB_BITS` (6.25%)
//!   of it — and every power of two is *exactly* a bucket boundary;
//! * **exact extremes**: `count`, `sum`, `min` and `max` are tracked
//!   exactly alongside the buckets, so `quantile(1.0)` is the true
//!   maximum, not a bucket edge.
//!
//! Values are unitless `u64`s; by convention the instrumented crates
//! record nanoseconds for spans and raw counts for sizes.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: each power of two is split into
/// `2^SUB_BITS = 16` linear sub-buckets (≤ 6.25% relative error).
pub const SUB_BITS: u32 = 4;

const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Maps a value to its bucket index. Monotone in `value`; values below
/// `2^SUB_BITS` get exact singleton buckets.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return value as usize;
    }
    let b = 63 - value.leading_zeros(); // floor(log2), >= SUB_BITS
    let octave = (b - SUB_BITS + 1) as u64;
    let offset = (value >> (b - SUB_BITS)) - SUB_COUNT; // 0..SUB_COUNT
    (octave * SUB_COUNT + offset) as usize
}

/// Inverse of [`bucket_index`]: the smallest value mapping to `index`.
/// In particular `bucket_low(bucket_index(1 << k)) == 1 << k` for every
/// `k` — powers of two are exact bucket boundaries.
#[inline]
pub fn bucket_low(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        return index;
    }
    let octave = index >> SUB_BITS; // >= 1
    let offset = index & (SUB_COUNT - 1);
    (SUB_COUNT + offset) << (octave - 1)
}

/// A mergeable log2-bucketed histogram with exact count/sum/min/max.
///
/// `record` is O(1); `merge` is bucket-wise saturating addition and is
/// exactly associative and commutative (the property tests in
/// `tests/histogram_props.rs` pin this), which is what lets per-thread
/// recorders aggregate into one [`Snapshot`](crate::Snapshot) without
/// hot-path contention. Quantiles resolve to the lower boundary of the
/// containing bucket (≤ 6.25% relative error), except `quantile(1.0)`,
/// which returns the exact maximum.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Dense bucket counts; grown on demand, highest bucket non-zero.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] = self.buckets[idx].saturating_add(n);
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Folds `other` into `self` (bucket-wise addition). Associative
    /// and commutative, so merge order never changes the result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(o);
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the lower boundary of the
    /// bucket holding the `⌈q·count⌉`-th smallest observation, clamped
    /// to `[min, max]`. `quantile(1.0)` is the exact maximum;
    /// monotone in `q`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_impl(
            self.count,
            self.min(),
            self.max(),
            q,
            self.buckets.iter().enumerate().map(|(i, &c)| (i, c)),
        )
    }

    /// Shorthand for `quantile(0.5)`.
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Shorthand for `quantile(0.9)`.
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// Shorthand for `quantile(0.99)`.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Condenses into the serde-able sparse wire form.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| Bucket {
                    index: i as u64,
                    low: bucket_low(i),
                    count: c,
                })
                .collect(),
        }
    }

    /// Rebuilds a dense histogram from a snapshot (inverse of
    /// [`Histogram::snapshot`]).
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Self {
        let mut buckets = Vec::new();
        for b in &snap.buckets {
            let idx = b.index as usize;
            if idx >= buckets.len() {
                buckets.resize(idx + 1, 0);
            }
            buckets[idx] = b.count;
        }
        Self {
            buckets,
            count: snap.count,
            sum: snap.sum,
            min: snap.min,
            max: snap.max,
        }
    }
}

/// Shared quantile walk over `(index, count)` pairs in ascending index
/// order — used by both the dense and the sparse (snapshot) forms.
fn quantile_impl(
    count: u64,
    min: u64,
    max: u64,
    q: f64,
    buckets: impl Iterator<Item = (usize, u64)>,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    if rank == count {
        return max;
    }
    let mut seen = 0u64;
    for (i, c) in buckets {
        seen = seen.saturating_add(c);
        if seen >= rank {
            return bucket_low(i).clamp(min, max);
        }
    }
    max
}

/// One non-empty bucket of a [`HistogramSnapshot`]. `low` is redundant
/// with `index` (it is `bucket_low(index)`) but makes the exported
/// JSONL self-describing for offline analysis.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Bucket index (see [`bucket_index`]).
    pub index: u64,
    /// Smallest value mapping to this bucket (see [`bucket_low`]).
    pub low: u64,
    /// Observations in this bucket.
    pub count: u64,
}

/// The serde-able sparse form of a [`Histogram`]: only non-empty
/// buckets, ascending by index, plus the exact count/sum/min/max.
/// This is the wire format pinned in `tests/task_serde.rs`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Same contract as [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_impl(
            self.count,
            self.min,
            self.max,
            q,
            self.buckets.iter().map(|b| (b.index as usize, b.count)),
        )
    }

    /// Shorthand for `quantile(0.5)`.
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Shorthand for `quantile(0.9)`.
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// Shorthand for `quantile(0.99)`.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` in via the dense form's exact merge.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut dense = Histogram::from_snapshot(self);
        dense.merge(&Histogram::from_snapshot(other));
        *self = dense.snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = h.quantile(q);
            assert_eq!(bucket_low(bucket_index(v)), v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
    }

    #[test]
    fn bucket_index_is_monotone_and_low_is_inverse() {
        let mut values: Vec<u64> = (0..63u32)
            .flat_map(|k| [(1u64 << k).saturating_sub(1), 1 << k, (1 << k) + 1])
            .chain([u64::MAX])
            .collect();
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            assert!(bucket_low(i) <= v, "low({i}) <= {v}");
            let rel = (v - bucket_low(i)) as f64 / v.max(1) as f64;
            assert!(rel <= 1.0 / SUB_COUNT as f64 + 1e-12);
        }
        for k in 0..63u32 {
            assert_eq!(bucket_low(bucket_index(1 << k)), 1 << k);
        }
    }

    #[test]
    fn p99_sees_the_tail() {
        let mut h = Histogram::new();
        h.record_n(100, 985);
        h.record_n(10_000, 15);
        assert!(h.p50() <= 110);
        assert!(h.p99() >= 9_000, "p99 {} missed the tail", h.p99());
        assert_eq!(h.quantile(1.0), 10_000);
    }
}
