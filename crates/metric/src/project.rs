//! Seeded Johnson–Lindenstrauss projection for high-dimensional
//! Euclidean inputs.
//!
//! *Randomized Dimensionality Reduction for Euclidean Maximization and
//! Diversity Measures* (arXiv 2506.00165) shows that remote-clique-style
//! diversity objectives survive projection down to `t = O(log k / ε²)`
//! dimensions: with high probability every pairwise distance among the
//! relevant points is preserved within a `(1 ± ε)` factor, and since
//! every objective in this workspace is a monotone combination (sum /
//! min) of pairwise distances, the *objective value* of any k-subset
//! is preserved within the same factor.
//!
//! ## Distortion accounting vs the paper's Lemmas 3–4
//!
//! The source paper's composable-coreset argument (Lemmas 3–4) bounds
//! the solution quality by a certificate factor `α + ε_c`, where `α`
//! is the sequential approximation factor and `ε_c` the coreset
//! slack; the certified claim is `value ≥ OPT / (α + ε_c)`. Running
//! the pipeline in projected space adds one multiplicative layer:
//!
//! * distances the solver *sees* are at most `(1 + ε)` times the
//!   original ones, so the projected optimum `OPT' ≥ OPT·(1 − ε)`;
//! * the returned subset's projected value `v'` satisfies
//!   `v' ≥ OPT' / (α + ε_c)`;
//! * evaluating the same indices on the **original** points gives
//!   `v ≥ v' / (1 + ε)`.
//!
//! Chaining: `v ≥ OPT·(1 − ε) / ((α + ε_c)·(1 + ε))`, i.e. the
//! certificate factor widens by exactly `(1 + ε)/(1 − ε)`. That is the
//! adjustment `Task::run_projected` applies to the `(α + ε_c)`
//! certificate in `Report` — the distortion is surfaced honestly
//! instead of silently claiming the unprojected bound. The coreset
//! radius (Lemma 3's covering radius) is likewise a projected-space
//! measurement; scaling it by `1/(1 − ε)` upper-bounds the radius in
//! the original space.
//!
//! ## Determinism
//!
//! The matrix is generated from a `u64` seed by an inline splitmix64
//! stream — no external RNG dependency, no platform variation — so the
//! same `(source_dim, target_dim, seed, kind)` always produces the
//! same matrix, byte for byte. Reports and certificates obtained
//! through a projection are therefore reproducible, and the seed is
//! enough to re-derive the entire run.

use crate::{DenseStore, VecPoint};
use serde::{Deserialize, Serialize};

/// The two JL matrix families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JlKind {
    /// Dense sign matrix: entries `±1/√t` with equal probability
    /// (Achlioptas 2003, database-friendly variant 1).
    Sign,
    /// Sparse ternary matrix: entries `{+s, 0, −s}` with probabilities
    /// `{1/6, 2/3, 1/6}` and `s = √(3/t)` (Achlioptas 2003, variant
    /// 2) — two thirds of the multiplies vanish, same guarantee.
    Sparse,
}

/// A seeded JL projection `R^d → R^t`, deterministic from a `u64`
/// seed. See the module docs for the distortion accounting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JlProjection {
    /// Row-major `target_dim × source_dim` matrix.
    matrix: Vec<f64>,
    source_dim: usize,
    target_dim: usize,
    seed: u64,
    kind: JlKind,
}

/// One step of the splitmix64 stream — the standard constants, fixed
/// here forever (the matrix bytes are part of the reproducibility
/// contract).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl JlProjection {
    /// A target dimension sufficient for distortion `eps` over
    /// `k`-subset objectives: `⌈8·ln(max(k, 2)) / eps²⌉` (the standard
    /// JL bound with the union over the O(k²) pairs the objective
    /// reads folded into the constant).
    ///
    /// # Panics
    /// Panics unless `0 < eps < 1`.
    pub fn target_dim(k: usize, eps: f64) -> usize {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        let t = (8.0 * (k.max(2) as f64).ln() / (eps * eps)).ceil();
        (t as usize).max(1)
    }

    /// A dense sign projection (`JlKind::Sign`).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn sign(source_dim: usize, target_dim: usize, seed: u64) -> Self {
        Self::generate(source_dim, target_dim, seed, JlKind::Sign)
    }

    /// A sparse ternary projection (`JlKind::Sparse`).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn sparse(source_dim: usize, target_dim: usize, seed: u64) -> Self {
        Self::generate(source_dim, target_dim, seed, JlKind::Sparse)
    }

    fn generate(source_dim: usize, target_dim: usize, seed: u64, kind: JlKind) -> Self {
        assert!(source_dim > 0, "source dimension must be positive");
        assert!(target_dim > 0, "target dimension must be positive");
        let t = target_dim as f64;
        let mut state = seed;
        let matrix: Vec<f64> = match kind {
            JlKind::Sign => {
                let scale = 1.0 / t.sqrt();
                (0..source_dim * target_dim)
                    .map(|_| {
                        if splitmix64(&mut state) & 1 == 0 {
                            scale
                        } else {
                            -scale
                        }
                    })
                    .collect()
            }
            JlKind::Sparse => {
                let scale = (3.0 / t).sqrt();
                (0..source_dim * target_dim)
                    .map(|_| match splitmix64(&mut state) % 6 {
                        0 => scale,
                        1 => -scale,
                        _ => 0.0,
                    })
                    .collect()
            }
        };
        Self {
            matrix,
            source_dim,
            target_dim,
            seed,
            kind,
        }
    }

    /// The input dimension `d`.
    #[inline]
    pub fn source_dim(&self) -> usize {
        self.source_dim
    }

    /// The output dimension `t`.
    #[inline]
    pub fn output_dim(&self) -> usize {
        self.target_dim
    }

    /// The generating seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The matrix family.
    #[inline]
    pub fn kind(&self) -> JlKind {
        self.kind
    }

    /// Projects one coordinate row into `out` (`out.len() ==
    /// output_dim()`). Fixed ascending-`j` accumulation order, so the
    /// result is deterministic across layouts and platforms.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn project_row(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.source_dim, "input dimension mismatch");
        assert_eq!(out.len(), self.target_dim, "output dimension mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            let m = &self.matrix[r * self.source_dim..(r + 1) * self.source_dim];
            let mut sum = 0.0;
            for (x, w) in row.iter().zip(m) {
                sum += x * w;
            }
            *o = sum;
        }
    }

    /// Projects one point.
    pub fn project_point(&self, coords: &[f64]) -> VecPoint {
        let mut out = vec![0.0; self.target_dim];
        self.project_row(coords, &mut out);
        VecPoint::new(out)
    }

    /// Projects a whole store, preserving point order (index `i` of
    /// the output is the projection of index `i` of the input — solve
    /// indices in projected space are valid in the original).
    ///
    /// # Panics
    /// Panics if `store.dim() != source_dim()`.
    pub fn project_store(&self, store: &DenseStore) -> DenseStore {
        assert_eq!(store.dim(), self.source_dim, "input dimension mismatch");
        let mut out = DenseStore::with_capacity(self.target_dim, store.len());
        let mut buf = vec![0.0; self.target_dim];
        for row in store.iter_rows() {
            self.project_row(row, &mut buf);
            out.push(&buf);
        }
        out
    }

    /// Widens a certificate factor by this projection's distortion:
    /// `factor · (1 + eps) / (1 − eps)` (module docs, chaining step).
    pub fn widen_factor(factor: f64, eps: f64) -> f64 {
        factor * (1.0 + eps) / (1.0 - eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        let a = JlProjection::sign(64, 16, 42);
        let b = JlProjection::sign(64, 16, 42);
        assert_eq!(a, b);
        let c = JlProjection::sign(64, 16, 43);
        assert_ne!(a, c, "different seeds must diverge");
        let s1 = JlProjection::sparse(64, 16, 42);
        let s2 = JlProjection::sparse(64, 16, 42);
        assert_eq!(s1, s2);
        assert_ne!(a.matrix, s1.matrix, "kinds draw different matrices");
    }

    #[test]
    fn sparse_matrix_is_two_thirds_zero() {
        let p = JlProjection::sparse(128, 32, 7);
        let zeros = p.matrix.iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / p.matrix.len() as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.05, "zero fraction {frac}");
        let s = (3.0 / 32.0f64).sqrt();
        assert!(p.matrix.iter().all(|&v| v == 0.0 || v.abs() == s));
    }

    #[test]
    fn target_dim_shrinks_with_eps() {
        assert!(JlProjection::target_dim(16, 0.5) < JlProjection::target_dim(16, 0.25));
        assert!(JlProjection::target_dim(4, 0.3) <= JlProjection::target_dim(64, 0.3));
        assert!(JlProjection::target_dim(1, 0.5) >= 1);
    }

    #[test]
    fn projection_roughly_preserves_distances() {
        // Not a tail-bound test — just a sanity check that the scaling
        // is right: mean squared norm should be preserved.
        let d = 256;
        let t = 64;
        let p = JlProjection::sign(d, t, 9);
        let mut state = 1234u64;
        let mut ratio_sum = 0.0;
        let trials = 40;
        for _ in 0..trials {
            let v: Vec<f64> = (0..d)
                .map(|_| (splitmix64(&mut state) as f64 / u64::MAX as f64) - 0.5)
                .collect();
            let orig: f64 = v.iter().map(|x| x * x).sum();
            let proj = p.project_point(&v);
            let new: f64 = proj.coords().iter().map(|x| x * x).sum();
            ratio_sum += new / orig;
        }
        let mean = ratio_sum / trials as f64;
        assert!((mean - 1.0).abs() < 0.2, "mean norm ratio {mean}");
    }

    #[test]
    fn store_projection_preserves_order() {
        let store = DenseStore::from_flat((0..40).map(|i| i as f64).collect(), 8);
        let p = JlProjection::sparse(8, 4, 3);
        let out = p.project_store(&store);
        assert_eq!(out.len(), store.len());
        assert_eq!(out.dim(), 4);
        for i in 0..store.len() {
            assert_eq!(out.point(i), p.project_point(store.row(i)));
        }
    }

    #[test]
    fn widen_factor_is_monotone_in_eps() {
        let f = 2.0;
        assert!(JlProjection::widen_factor(f, 0.1) > f);
        assert!(JlProjection::widen_factor(f, 0.3) > JlProjection::widen_factor(f, 0.1));
    }
}
