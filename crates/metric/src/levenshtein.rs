//! Levenshtein (edit) distance on strings.

use crate::Metric;

/// Levenshtein distance: the minimum number of single-character
/// insertions, deletions and substitutions transforming one string into
/// the other. A classical true metric on strings; useful for
/// diversifying textual result sets (titles, queries, SKUs) where a
/// vector embedding is unavailable.
///
/// Implementation: two-row dynamic programming over characters,
/// `O(|a|·|b|)` time and `O(min(|a|,|b|))` memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Levenshtein;

impl Levenshtein {
    /// Computes the edit distance between two strings (as `usize`).
    pub fn distance_usize(a: &str, b: &str) -> usize {
        if a == b {
            return 0;
        }
        let a_chars: Vec<char> = a.chars().collect();
        let b_chars: Vec<char> = b.chars().collect();
        // Keep the shorter string in the inner dimension.
        let (short, long) = if a_chars.len() <= b_chars.len() {
            (&a_chars, &b_chars)
        } else {
            (&b_chars, &a_chars)
        };
        let mut prev: Vec<usize> = (0..=short.len()).collect();
        let mut cur = vec![0usize; short.len() + 1];
        for (i, &lc) in long.iter().enumerate() {
            cur[0] = i + 1;
            for (j, &sc) in short.iter().enumerate() {
                let sub = prev[j] + usize::from(lc != sc);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[short.len()]
    }
}

impl Metric<String> for Levenshtein {
    #[inline]
    fn distance(&self, a: &String, b: &String) -> f64 {
        Self::distance_usize(a, b) as f64
    }
}

impl Metric<str> for Levenshtein {
    #[inline]
    fn distance(&self, a: &str, b: &str) -> f64 {
        Self::distance_usize(a, b) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_pairs() {
        assert_eq!(Levenshtein::distance_usize("kitten", "sitting"), 3);
        assert_eq!(Levenshtein::distance_usize("flaw", "lawn"), 2);
        assert_eq!(Levenshtein::distance_usize("", "abc"), 3);
        assert_eq!(Levenshtein::distance_usize("abc", ""), 3);
        assert_eq!(Levenshtein::distance_usize("", ""), 0);
    }

    #[test]
    fn identity_and_symmetry() {
        assert_eq!(Levenshtein::distance_usize("same", "same"), 0);
        assert_eq!(
            Levenshtein::distance_usize("abcde", "xbcdz"),
            Levenshtein::distance_usize("xbcdz", "abcde"),
        );
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(Levenshtein::distance_usize("caffè", "caffe"), 1);
        assert_eq!(Levenshtein::distance_usize("日本語", "日本"), 1);
    }

    #[test]
    fn metric_trait_on_string_and_str() {
        let a = "hello".to_string();
        let b = "hallo".to_string();
        assert_eq!(Levenshtein.distance(&a, &b), 1.0);
        assert_eq!(Levenshtein.distance("abc", "abd"), 1.0);
    }

    #[test]
    fn bounded_by_longer_length() {
        let a = "short";
        let b = "a-much-longer-string";
        let d = Levenshtein::distance_usize(a, b);
        assert!(d <= b.chars().count());
        assert!(d >= b.chars().count() - a.chars().count());
    }
}
