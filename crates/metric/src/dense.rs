//! Dense fixed-dimension points backed by a `Vec<f64>`.

use serde::{Deserialize, Serialize};

/// A point in `R^d`, stored densely.
///
/// This is the point type used by the paper's synthetic experiments
/// (`R^2` for Table 4, `R^3` for Figures 2, 4, 5). Coordinates must be
/// finite; constructors check this in debug builds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VecPoint {
    coords: Vec<f64>,
}

impl VecPoint {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    /// In debug builds, panics if any coordinate is non-finite.
    pub fn new(coords: Vec<f64>) -> Self {
        debug_assert!(
            coords.iter().all(|c| c.is_finite()),
            "VecPoint coordinates must be finite"
        );
        Self { coords }
    }

    /// The origin of `R^dim`.
    pub fn zero(dim: usize) -> Self {
        Self {
            coords: vec![0.0; dim],
        }
    }

    /// The dimension `d` of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate slice view.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The Euclidean norm `‖p‖₂`.
    pub fn norm(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Approximate number of bytes this point occupies, used by the
    /// MapReduce runtime's memory accounting.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.coords.len() * std::mem::size_of::<f64>()
    }
}

impl std::ops::Index<usize> for VecPoint {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl From<Vec<f64>> for VecPoint {
    fn from(coords: Vec<f64>) -> Self {
        Self::new(coords)
    }
}

impl From<&[f64]> for VecPoint {
    fn from(coords: &[f64]) -> Self {
        Self::new(coords.to_vec())
    }
}

impl<const N: usize> From<[f64; N]> for VecPoint {
    fn from(coords: [f64; N]) -> Self {
        Self::new(coords.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = VecPoint::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p[1], 2.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_point() {
        let z = VecPoint::zero(4);
        assert_eq!(z.dim(), 4);
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn norm_is_euclidean() {
        let p = VecPoint::from([3.0, 4.0]);
        assert_eq!(p.norm(), 5.0);
    }

    #[test]
    fn from_array_and_slice() {
        let a = VecPoint::from([1.0, 2.0]);
        let b = VecPoint::from(&[1.0, 2.0][..]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn rejects_nan_in_debug() {
        let _ = VecPoint::new(vec![f64::NAN]);
    }

    #[test]
    fn memory_bytes_counts_coords() {
        let p = VecPoint::zero(10);
        assert!(p.memory_bytes() >= 80);
    }
}
