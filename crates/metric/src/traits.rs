//! The [`Metric`] trait: the single abstraction every algorithm in the
//! workspace is generic over.

/// A distance function `d : P × P → R≥0` satisfying the metric axioms.
///
/// Implementors must guarantee, for all `a`, `b`, `c`:
///
/// 1. `d(a, b) >= 0`, and `d(a, b) == 0` iff `a` and `b` are
///    indistinguishable under the metric;
/// 2. `d(a, b) == d(b, a)` (symmetry);
/// 3. `d(a, c) <= d(a, b) + d(b, c)` (triangle inequality).
///
/// The triangle inequality is load-bearing: every approximation guarantee
/// in the paper (Lemmas 1, 2, 7) is a triangle-inequality argument, so a
/// non-metric "distance" (e.g. squared Euclidean) silently voids them.
/// The property tests in `tests/axioms.rs` check all shipped metrics.
///
/// Metrics are required to be `Send + Sync` so the simulated MapReduce
/// runtime can share one metric instance across reducer threads; all
/// metrics in this crate are zero-sized, so this costs nothing.
pub trait Metric<P: ?Sized>: Send + Sync {
    /// Computes the distance between `a` and `b`. Must never return NaN
    /// or a negative value for valid points.
    fn distance(&self, a: &P, b: &P) -> f64;

    /// Returns the minimum distance from `p` to any point of `set`
    /// (`d(p, S) = min_{q in S} d(p, q)` in the paper's notation), or
    /// `f64::INFINITY` if `set` is empty.
    fn distance_to_set(&self, p: &P, set: &[P]) -> f64
    where
        P: Sized,
    {
        set.iter()
            .map(|q| self.distance(p, q))
            .fold(f64::INFINITY, f64::min)
    }
}

// A reference to a metric is itself a metric: this lets algorithms take
// metrics by value while callers keep ownership.
impl<P: ?Sized, M: Metric<P> + ?Sized> Metric<P> for &M {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        (**self).distance(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Euclidean, VecPoint};

    #[test]
    fn distance_to_set_of_empty_is_infinite() {
        let p = VecPoint::new(vec![0.0]);
        assert_eq!(Euclidean.distance_to_set(&p, &[]), f64::INFINITY);
    }

    #[test]
    fn distance_to_set_takes_minimum() {
        let p = VecPoint::new(vec![0.0]);
        let set = vec![
            VecPoint::new(vec![5.0]),
            VecPoint::new(vec![2.0]),
            VecPoint::new(vec![9.0]),
        ];
        assert_eq!(Euclidean.distance_to_set(&p, &set), 2.0);
    }

    #[test]
    fn reference_to_metric_is_metric() {
        fn takes_metric<M: Metric<VecPoint>>(m: M) -> f64 {
            m.distance(&VecPoint::new(vec![0.0]), &VecPoint::new(vec![1.0]))
        }
        let e = Euclidean;
        assert_eq!(takes_metric(e), 1.0);
        assert_eq!(takes_metric(e), 1.0);
    }
}
