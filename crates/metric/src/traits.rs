//! The [`Metric`] trait: the single abstraction every algorithm in the
//! workspace is generic over.

/// A distance function `d : P × P → R≥0` satisfying the metric axioms.
///
/// Implementors must guarantee, for all `a`, `b`, `c`:
///
/// 1. `d(a, b) >= 0`, and `d(a, b) == 0` iff `a` and `b` are
///    indistinguishable under the metric;
/// 2. `d(a, b) == d(b, a)` (symmetry);
/// 3. `d(a, c) <= d(a, b) + d(b, c)` (triangle inequality).
///
/// The triangle inequality is load-bearing: every approximation guarantee
/// in the paper (Lemmas 1, 2, 7) is a triangle-inequality argument, so a
/// non-metric "distance" (e.g. squared Euclidean) silently voids them.
/// The property tests in `tests/axioms.rs` check all shipped metrics.
///
/// Metrics are required to be `Send + Sync` so the simulated MapReduce
/// runtime can share one metric instance across reducer threads; all
/// metrics in this crate are zero-sized, so this costs nothing.
pub trait Metric<P: ?Sized>: Send + Sync {
    /// Computes the distance between `a` and `b`. Must never return NaN
    /// or a negative value for valid points.
    fn distance(&self, a: &P, b: &P) -> f64;

    /// Returns the minimum distance from `p` to any point of `set`
    /// (`d(p, S) = min_{q in S} d(p, q)` in the paper's notation), or
    /// `f64::INFINITY` if `set` is empty.
    fn distance_to_set(&self, p: &P, set: &[P]) -> f64
    where
        P: Sized,
    {
        set.iter()
            .map(|q| self.distance(p, q))
            .fold(f64::INFINITY, f64::min)
    }

    /// Batch hook: writes `d(p, others[i])` into `out[i]` for every `i`.
    ///
    /// The default is the obvious loop over [`Metric::distance`];
    /// metrics with a cheap coordinate representation (Euclidean,
    /// Manhattan, Lp) override it with an auto-vectorizable kernel.
    /// Overrides MUST be *bitwise-identical* to the default loop — the
    /// algorithms in `diversity-core` rely on this for deterministic,
    /// layout-independent results, and the property tests in
    /// `tests/batch_equivalence.rs` enforce it.
    ///
    /// # Panics
    /// Panics if `out.len() != others.len()`.
    fn distance_many(&self, p: &P, others: &[P], out: &mut [f64])
    where
        P: Sized,
    {
        assert_eq!(out.len(), others.len(), "output length mismatch");
        for (o, q) in out.iter_mut().zip(others.iter()) {
            *o = self.distance(p, q);
        }
    }

    /// Batch hook: the GMM relaxation step. For every `i`, computes
    /// `d = d(center, points[i])` and, **iff `d < dists[i]`**, sets
    /// `dists[i] = d` and `assignment[i] = cj` (strict `<` keeps ties
    /// assigned to the earliest center, matching Algorithm 1). Returns
    /// the farthest survivor — `(index, value)` of the maximum of the
    /// *updated* `dists`, ties to the smallest index (the argmax GMM
    /// needs next, folded in so the traversal saves a second sweep) —
    /// or `None` when `points` is empty.
    ///
    /// This is *threshold-aware*: an override may skip the expensive
    /// part of a distance (e.g. the square root) whenever it can prove
    /// the comparison fails, but the observable effect on `dists` /
    /// `assignment` and the returned argmax MUST be bitwise-identical
    /// to the default loop, and each index must be treated
    /// independently (element-wise) so the parallel GMM may relax
    /// disjoint chunks on separate threads.
    ///
    /// # Panics
    /// Panics if `dists.len()` or `assignment.len()` differ from
    /// `points.len()`.
    fn relax(
        &self,
        center: &P,
        points: &[P],
        dists: &mut [f64],
        assignment: &mut [usize],
        cj: usize,
    ) -> Option<(usize, f64)>
    where
        P: Sized,
    {
        assert_eq!(dists.len(), points.len(), "dists length mismatch");
        assert_eq!(assignment.len(), points.len(), "assignment length mismatch");
        for (i, p) in points.iter().enumerate() {
            let d = self.distance(center, p);
            if d < dists[i] {
                dists[i] = d;
                assignment[i] = cj;
            }
        }
        // The scalar fallback still fuses the argmax into the round,
        // but records itself as non-kernel so the fused-argmax hit
        // ratio in `gmm.*` reflects batch-kernel coverage.
        diversity_obs::count("kernel.relax_scalar_rounds", 1);
        crate::argmax(dists).map(|i| (i, dists[i]))
    }

    /// Early-exit membership check: `true` iff some `q ∈ set` has
    /// `d(p, q) <= threshold`. Scanning stops at the first hit, so on
    /// covered inputs this inspects far fewer points than
    /// [`Metric::distance_to_set`]; overrides may additionally skip the
    /// expensive tail of each distance (see the Euclidean kernel), but
    /// must decide every comparison exactly as the default does.
    fn distance_to_set_within(&self, p: &P, set: &[P], threshold: f64) -> bool
    where
        P: Sized,
    {
        set.iter().any(|q| self.distance(p, q) <= threshold)
    }
}

// A reference to a metric is itself a metric: this lets algorithms take
// metrics by value while callers keep ownership. Every method forwards
// so batch-kernel overrides survive the indirection.
impl<P: ?Sized, M: Metric<P> + ?Sized> Metric<P> for &M {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        (**self).distance(a, b)
    }

    #[inline]
    fn distance_to_set(&self, p: &P, set: &[P]) -> f64
    where
        P: Sized,
    {
        (**self).distance_to_set(p, set)
    }

    #[inline]
    fn distance_many(&self, p: &P, others: &[P], out: &mut [f64])
    where
        P: Sized,
    {
        (**self).distance_many(p, others, out)
    }

    #[inline]
    fn relax(
        &self,
        center: &P,
        points: &[P],
        dists: &mut [f64],
        assignment: &mut [usize],
        cj: usize,
    ) -> Option<(usize, f64)>
    where
        P: Sized,
    {
        (**self).relax(center, points, dists, assignment, cj)
    }

    #[inline]
    fn distance_to_set_within(&self, p: &P, set: &[P], threshold: f64) -> bool
    where
        P: Sized,
    {
        (**self).distance_to_set_within(p, set, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Euclidean, VecPoint};

    #[test]
    fn distance_to_set_of_empty_is_infinite() {
        let p = VecPoint::new(vec![0.0]);
        assert_eq!(Euclidean.distance_to_set(&p, &[]), f64::INFINITY);
    }

    #[test]
    fn distance_to_set_takes_minimum() {
        let p = VecPoint::new(vec![0.0]);
        let set = vec![
            VecPoint::new(vec![5.0]),
            VecPoint::new(vec![2.0]),
            VecPoint::new(vec![9.0]),
        ];
        assert_eq!(Euclidean.distance_to_set(&p, &set), 2.0);
    }

    #[test]
    fn reference_to_metric_is_metric() {
        fn takes_metric<M: Metric<VecPoint>>(m: M) -> f64 {
            m.distance(&VecPoint::new(vec![0.0]), &VecPoint::new(vec![1.0]))
        }
        let e = Euclidean;
        assert_eq!(takes_metric(e), 1.0);
        assert_eq!(takes_metric(e), 1.0);
    }
}
