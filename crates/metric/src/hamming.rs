//! Hamming distance.

use crate::{BitSetPoint, Metric};

/// Hamming distance: the number of positions where two points differ.
///
/// Provided for bit sets (symmetric-difference size) and for byte
/// strings of equal length.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hamming;

impl Metric<BitSetPoint> for Hamming {
    #[inline]
    fn distance(&self, a: &BitSetPoint, b: &BitSetPoint) -> f64 {
        a.symmetric_difference_size(b) as f64
    }
}

impl Metric<[u8]> for Hamming {
    fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "length mismatch");
        a.iter().zip(b.iter()).filter(|(x, y)| x != y).count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_hamming() {
        let a = BitSetPoint::from_elements(10, &[0, 1, 2]);
        let b = BitSetPoint::from_elements(10, &[1, 2, 3]);
        assert_eq!(Hamming.distance(&a, &b), 2.0);
    }

    #[test]
    fn byte_hamming() {
        assert_eq!(
            Hamming.distance(b"karolin".as_slice(), b"kathrin".as_slice()),
            3.0
        );
    }

    #[test]
    fn identity() {
        let a = BitSetPoint::from_elements(10, &[7]);
        assert_eq!(Hamming.distance(&a, &a), 0.0);
    }
}
