//! A contiguous structure-of-arrays point store for dense `R^d` data.
//!
//! [`crate::VecPoint`] keeps each point's coordinates in its own heap
//! allocation; a batch scan over `&[VecPoint]` therefore hops the heap
//! once per point, which defeats hardware prefetching on exactly the
//! `O(n·k)` loops the stack spends its time in. [`DenseStore`] packs
//! all coordinates into one flat `Vec<f64>` (row-major, fixed
//! dimension) so batched kernels stream cache-linearly, and exposes
//! [`DenseRow`] — a zero-copy row view — so the same generic
//! algorithms run unchanged over either representation.

use crate::VecPoint;
use serde::{Deserialize, Serialize};

/// Row-major flat storage of `len` points in `R^dim`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DenseStore {
    data: Vec<f64>,
    dim: usize,
}

impl DenseStore {
    /// An empty store of the given dimension.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            data: Vec::new(),
            dim,
        }
    }

    /// An empty store with room for `capacity` points.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            data: Vec::with_capacity(dim * capacity),
            dim,
        }
    }

    /// Wraps an existing row-major coordinate buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "buffer length not a multiple of dim");
        Self { data, dim }
    }

    /// Copies a slice of [`VecPoint`]s into contiguous storage.
    ///
    /// # Panics
    /// Panics if `points` is empty (the dimension would be unknown) or
    /// the points disagree on dimension.
    pub fn from_points(points: &[VecPoint]) -> Self {
        assert!(!points.is_empty(), "cannot infer dimension of zero points");
        let dim = points[0].dim();
        let mut data = Vec::with_capacity(dim * points.len());
        for p in points {
            assert_eq!(p.dim(), dim, "inconsistent point dimensions");
            data.extend_from_slice(p.coords());
        }
        Self { data, dim }
    }

    /// Appends one point.
    ///
    /// # Panics
    /// Panics if `coords.len() != self.dim()`.
    pub fn push(&mut self, coords: &[f64]) {
        assert_eq!(coords.len(), self.dim, "dimension mismatch");
        debug_assert!(
            coords.iter().all(|c| c.is_finite()),
            "coordinates must be finite"
        );
        self.data.extend_from_slice(coords);
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` when no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The ambient dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The coordinates of point `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole row-major coordinate buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Zero-copy row views, in order — the `&[P]` the generic
    /// algorithms consume. Each view carries the whole-buffer borrow,
    /// so any contiguous chunk of this vector lets the batched kernels
    /// recover the underlying flat slice (see
    /// [`DenseRow::contiguous_run`]).
    pub fn rows(&self) -> Vec<DenseRow<'_>> {
        (0..self.len())
            .map(|i| DenseRow::in_buffer(&self.data, i * self.dim, self.dim))
            .collect()
    }

    /// Iterates over the coordinate rows.
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Materializes row `i` as an owning [`VecPoint`].
    pub fn point(&self, i: usize) -> VecPoint {
        VecPoint::new(self.row(i).to_vec())
    }

    /// Materializes every row (for interop with owning APIs).
    pub fn to_points(&self) -> Vec<VecPoint> {
        (0..self.len()).map(|i| self.point(i)).collect()
    }
}

/// A borrowed view of one [`DenseStore`] row; implements the same
/// metrics as [`VecPoint`], so every algorithm generic over
/// `(P, M: Metric<P>)` accepts `&[DenseRow]` unchanged.
///
/// The view keeps a borrow of the store's *entire* flat buffer plus
/// the row's offset (rather than just the row's own slice). That lets
/// the batched kernels detect when a `&[DenseRow]` batch is a
/// contiguous run of one buffer — the common case, `store.rows()` or
/// any chunk of it — and reassemble the underlying flat slice to
/// stream it with one cache-linear, bounds-check-free blocked loop.
/// Subsets and permutations still work; they just take the per-row
/// path.
#[derive(Clone, Copy, Debug)]
pub struct DenseRow<'a> {
    pub(crate) flat: &'a [f64],
    pub(crate) offset: usize,
    pub(crate) dim: usize,
}

impl<'a> DenseRow<'a> {
    /// Wraps a standalone coordinate slice (a run of one row).
    #[inline]
    pub fn new(coords: &'a [f64]) -> Self {
        Self {
            flat: coords,
            offset: 0,
            dim: coords.len(),
        }
    }

    /// A view of row `offset/dim` inside a shared flat buffer.
    #[inline]
    fn in_buffer(flat: &'a [f64], offset: usize, dim: usize) -> Self {
        debug_assert!(offset + dim <= flat.len());
        Self { flat, offset, dim }
    }

    /// Coordinate slice view.
    #[inline]
    pub fn coords(&self) -> &'a [f64] {
        &self.flat[self.offset..self.offset + self.dim]
    }

    /// The ambient dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// An owning copy.
    pub fn to_point(&self) -> VecPoint {
        VecPoint::new(self.coords().to_vec())
    }

    /// If `rows` is a contiguous run of consecutive rows of one flat
    /// buffer, returns that run as `(flat_slice, dim)`; otherwise
    /// `None`. Exact: every row is checked, so a permuted or subsetted
    /// batch can never masquerade as a run. The scan is branch-free
    /// within 8-row groups (one well-predicted exit branch per group),
    /// so the compare sweep runs near memory speed and stays cheap
    /// relative to even a `d = 1` distance kernel.
    pub fn contiguous_run(rows: &[DenseRow<'a>]) -> Option<(&'a [f64], usize)> {
        let first = rows.first()?;
        let dim = first.dim;
        if dim == 0 {
            return None;
        }
        let base = first.offset;
        let row_ok = |i: usize, r: &DenseRow<'a>| {
            std::ptr::eq(r.flat, first.flat) && r.dim == dim && r.offset == base + i * dim
        };
        let mut i = 0;
        while i + 8 <= rows.len() {
            let mut ok = true;
            for w in 0..8 {
                ok &= row_ok(i + w, &rows[i + w]);
            }
            if !ok {
                return None;
            }
            i += 8;
        }
        for (ii, r) in rows.iter().enumerate().skip(i) {
            if !row_ok(ii, r) {
                return None;
            }
        }
        Some((&first.flat[base..base + rows.len() * dim], dim))
    }
}

impl PartialEq for DenseRow<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.coords() == other.coords()
    }
}

impl std::ops::Index<usize> for DenseRow<'_> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_row_roundtrip() {
        let mut s = DenseStore::new(3);
        s.push(&[1.0, 2.0, 3.0]);
        s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(s.rows()[0].coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_points_matches_to_points() {
        let pts = vec![VecPoint::from([1.0, 2.0]), VecPoint::from([3.0, 4.0])];
        let s = DenseStore::from_points(&pts);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.to_points(), pts);
    }

    #[test]
    fn from_flat_validates_shape() {
        let s = DenseStore::from_flat(vec![0.0; 12], 4);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic]
    fn from_flat_rejects_ragged() {
        let _ = DenseStore::from_flat(vec![0.0; 7], 3);
    }

    #[test]
    #[should_panic]
    fn push_rejects_wrong_dim() {
        let mut s = DenseStore::new(2);
        s.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn rows_are_contiguous() {
        let mut s = DenseStore::new(2);
        s.push(&[1.0, 2.0]);
        s.push(&[3.0, 4.0]);
        let flat = s.as_flat();
        assert_eq!(flat, &[1.0, 2.0, 3.0, 4.0]);
        let r0 = s.row(0).as_ptr();
        let r1 = s.row(1).as_ptr();
        assert_eq!(unsafe { r0.add(2) }, r1, "rows back to back in memory");
    }

    #[test]
    fn contiguous_run_detection() {
        let s = DenseStore::from_flat((0..30).map(|i| i as f64).collect(), 3);
        let rows = s.rows();
        // Full view and any chunk are runs.
        let (flat, dim) = DenseRow::contiguous_run(&rows).expect("full view is a run");
        assert_eq!(dim, 3);
        assert_eq!(flat, s.as_flat());
        let (chunk, _) = DenseRow::contiguous_run(&rows[2..7]).expect("chunk is a run");
        assert_eq!(chunk, &s.as_flat()[6..21]);
        // Permutations, subsets with gaps, and cross-store mixtures are not.
        let perm = vec![rows[0], rows[2], rows[1], rows[3]];
        assert!(DenseRow::contiguous_run(&perm).is_none());
        let gap = vec![rows[0], rows[2]];
        assert!(DenseRow::contiguous_run(&gap).is_none());
        let other = DenseStore::from_flat(vec![0.0; 6], 3);
        let mixed = vec![rows[0], other.rows()[0]];
        assert!(DenseRow::contiguous_run(&mixed).is_none());
        // Standalone rows (DenseRow::new) are single-row runs.
        let lone = [DenseRow::new(&[1.0, 2.0])];
        assert!(DenseRow::contiguous_run(&lone).is_some());
        assert!(DenseRow::contiguous_run(&[]).is_none());
    }

    #[test]
    fn iter_rows_agrees_with_row() {
        let s = DenseStore::from_flat((0..12).map(|i| i as f64).collect(), 3);
        for (i, r) in s.iter_rows().enumerate() {
            assert_eq!(r, s.row(i));
        }
        assert_eq!(s.iter_rows().len(), 4);
    }
}
