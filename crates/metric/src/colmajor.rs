//! A column-major (transposed) dense store for high-dimensional data.
//!
//! [`crate::DenseStore`] is row-major: point `i`'s coordinates are
//! contiguous, so the SIMD kernels must *gather* four points' `j`-th
//! coordinates with strided loads. [`DenseStoreColMajor`] transposes
//! the layout — coordinate `j` of consecutive points sits in adjacent
//! memory — so a 4-lane vector fills with one unit-stride load
//! (`Batch::Col` in [`crate::simd`]). At dim ≥ 128 that roughly halves
//! the load traffic of the gather path and keeps the prefetcher on one
//! stream per coordinate.
//!
//! The trade-off is per-point access: reading a single point touches
//! `dim` cache lines, so this store is for *batch-dominated* phases
//! (GMM over a fixed store) rather than point-at-a-time serving. Both
//! layouts produce bitwise-identical distances — the SIMD lanes and
//! the scalar fallbacks accumulate in the same order regardless of
//! where the coordinates live.

use crate::kernels;
use crate::{DenseStore, Euclidean, Metric, VecPoint};
use serde::{Deserialize, Serialize};

/// Column-major flat storage of `len` points in `R^dim`: coordinate
/// `j` of point `i` lives at `data[j * len + i]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DenseStoreColMajor {
    data: Vec<f64>,
    len: usize,
    dim: usize,
}

impl DenseStoreColMajor {
    /// Transposes a row-major store.
    pub fn from_store(store: &DenseStore) -> Self {
        let (len, dim) = (store.len(), store.dim());
        let flat = store.as_flat();
        let mut data = vec![0.0; len * dim];
        for i in 0..len {
            for j in 0..dim {
                data[j * len + i] = flat[i * dim + j];
            }
        }
        Self { data, len, dim }
    }

    /// Copies a slice of [`VecPoint`]s into column-major storage.
    ///
    /// # Panics
    /// Panics if `points` is empty or the points disagree on dimension.
    pub fn from_points(points: &[VecPoint]) -> Self {
        assert!(!points.is_empty(), "cannot infer dimension of zero points");
        let dim = points[0].dim();
        let len = points.len();
        let mut data = vec![0.0; len * dim];
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.dim(), dim, "inconsistent point dimensions");
            for (j, &c) in p.coords().iter().enumerate() {
                data[j * len + i] = c;
            }
        }
        Self { data, len, dim }
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The ambient dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinate `j` of point `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()` or `j >= dim()`.
    #[inline]
    pub fn coord(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.len && j < self.dim, "index out of bounds");
        self.data[j * self.len + i]
    }

    /// The transposed coordinate buffer (`dim` columns of `len` values).
    #[inline]
    pub fn as_cols(&self) -> &[f64] {
        &self.data
    }

    /// Materializes point `i` (touches `dim` cache lines — batch APIs
    /// are the fast path on this layout).
    pub fn point(&self, i: usize) -> VecPoint {
        assert!(i < self.len, "index out of bounds");
        VecPoint::new((0..self.dim).map(|j| self.data[j * self.len + i]).collect())
    }

    /// Transposes back to a row-major store.
    pub fn to_store(&self) -> DenseStore {
        let mut flat = vec![0.0; self.len * self.dim];
        for i in 0..self.len {
            for j in 0..self.dim {
                flat[i * self.dim + j] = self.data[j * self.len + i];
            }
        }
        DenseStore::from_flat(flat, self.dim)
    }

    /// Zero-copy point views, in order — the `&[P]` the generic
    /// algorithms consume, mirroring [`DenseStore::rows`].
    pub fn rows(&self) -> Vec<ColRow<'_>> {
        (0..self.len)
            .map(|index| ColRow {
                cols: &self.data,
                stride: self.len,
                dim: self.dim,
                index,
            })
            .collect()
    }
}

/// A borrowed view of one [`DenseStoreColMajor`] point. Like
/// [`crate::DenseRow`] it carries the whole-buffer borrow, so any
/// contiguous chunk of `store.rows()` lets the batched kernels prove a
/// unit-stride run (see [`ColRow::contiguous_run`]).
#[derive(Clone, Copy, Debug)]
pub struct ColRow<'a> {
    cols: &'a [f64],
    stride: usize,
    dim: usize,
    index: usize,
}

impl<'a> ColRow<'a> {
    /// The ambient dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The point's index within its store.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Coordinate `j`.
    ///
    /// # Panics
    /// Panics if `j >= dim()`.
    #[inline]
    pub fn coord(&self, j: usize) -> f64 {
        assert!(j < self.dim, "coordinate out of bounds");
        self.cols[j * self.stride + self.index]
    }

    /// An owning copy.
    pub fn to_point(&self) -> VecPoint {
        VecPoint::new((0..self.dim).map(|j| self.coord(j)).collect())
    }

    /// If `rows` are consecutive points of one column-major buffer,
    /// returns `(cols, stride, first)` describing the run; otherwise
    /// `None`. Exact — every row is checked, so a permuted or
    /// subsetted batch can never masquerade as a run.
    pub fn contiguous_run(rows: &[ColRow<'a>]) -> Option<(&'a [f64], usize, usize)> {
        let first = rows.first()?;
        if first.dim == 0 {
            return None;
        }
        let base = first.index;
        for (i, r) in rows.iter().enumerate() {
            if !std::ptr::eq(r.cols, first.cols)
                || r.stride != first.stride
                || r.dim != first.dim
                || r.index != base + i
            {
                return None;
            }
        }
        Some((first.cols, first.stride, base))
    }
}

impl PartialEq for ColRow<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && (0..self.dim).all(|j| self.coord(j) == other.coord(j))
    }
}

/// Scalar distance with the exact scalar association order — the
/// reference every batched `ColRow` path must match bitwise.
fn colrow_dsq(a: &ColRow<'_>, b: &ColRow<'_>) -> f64 {
    debug_assert_eq!(a.dim, b.dim, "dimension mismatch");
    let mut sum = 0.0;
    for j in 0..a.dim {
        let d = a.coord(j) - b.coord(j);
        sum += d * d;
    }
    sum
}

fn col_batch<'a>(run: (&'a [f64], usize, usize), len: usize, dim: usize) -> crate::simd::Batch<'a> {
    let (cols, stride, first) = run;
    crate::simd::Batch::Col {
        cols,
        stride,
        first,
        len,
        dim,
    }
}

/// The `ColRow` hooks prove a unit-stride run upfront and hand it to
/// the SIMD kernels ([`Batch::Col`](crate::simd::Batch::Col) — the
/// layout's whole point); scalar fallbacks accumulate coordinate-wise
/// in the same order, so all paths are bitwise-identical.
impl Metric<ColRow<'_>> for Euclidean {
    #[inline]
    fn distance(&self, a: &ColRow<'_>, b: &ColRow<'_>) -> f64 {
        colrow_dsq(a, b).sqrt()
    }

    fn distance_many(&self, p: &ColRow<'_>, others: &[ColRow<'_>], out: &mut [f64]) {
        assert_eq!(out.len(), others.len(), "output length mismatch");
        if p.dim > 4 && crate::simd::enabled() {
            if let Some(run) = ColRow::contiguous_run(others) {
                let center = p.to_point();
                if crate::simd::try_many(&col_batch(run, others.len(), p.dim), center.coords(), out)
                {
                    return;
                }
            }
        }
        for (o, q) in out.iter_mut().zip(others) {
            *o = colrow_dsq(p, q).sqrt();
        }
        diversity_obs::count("kernel.distances", out.len() as u64);
    }

    fn relax(
        &self,
        center: &ColRow<'_>,
        points: &[ColRow<'_>],
        dists: &mut [f64],
        assignment: &mut [usize],
        cj: usize,
    ) -> Option<(usize, f64)> {
        assert_eq!(dists.len(), points.len(), "dists length mismatch");
        assert_eq!(assignment.len(), points.len(), "assignment length mismatch");
        if center.dim > 4 && crate::simd::enabled() {
            if let Some(run) = ColRow::contiguous_run(points) {
                let c = center.to_point();
                if let Some(best) = crate::simd::try_relax(
                    &col_batch(run, points.len(), center.dim),
                    c.coords(),
                    dists,
                    assignment,
                    cj,
                ) {
                    return best;
                }
            }
        }
        // Scalar fused relax with root elision — same epilogue helpers
        // as every other layout, so bitwise-identical to the SIMD path.
        let mut best: Option<(usize, f64)> = None;
        let mut elided = 0u64;
        for (i, q) in points.iter().enumerate() {
            let d_sq = colrow_dsq(center, q);
            if !kernels::sq_beats_threshold(d_sq, dists[i]) {
                let d = d_sq.sqrt();
                if d < dists[i] {
                    dists[i] = d;
                    assignment[i] = cj;
                }
            } else {
                elided += 1;
            }
            kernels::consider_max(&mut best, i, dists[i]);
        }
        if diversity_obs::enabled() {
            diversity_obs::count("kernel.distances", dists.len() as u64);
            diversity_obs::count("kernel.relax_fused_rounds", 1);
            diversity_obs::count("kernel.roots_elided", elided);
        }
        best
    }

    fn distance_to_set_within(&self, p: &ColRow<'_>, set: &[ColRow<'_>], threshold: f64) -> bool {
        if p.dim > 4 && crate::simd::enabled() {
            if let Some(run) = ColRow::contiguous_run(set) {
                let center = p.to_point();
                if let Some(hit) = crate::simd::try_within(
                    &col_batch(run, set.len(), p.dim),
                    center.coords(),
                    threshold,
                ) {
                    return hit;
                }
            }
        }
        // Same guard as `kernels::euclidean_within`.
        let guard = threshold.next_up();
        let thr_sq = guard * guard;
        for q in set {
            let d_sq = colrow_dsq(p, q);
            if d_sq <= thr_sq && d_sq.sqrt() <= threshold {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> (DenseStore, DenseStoreColMajor) {
        let flat: Vec<f64> = (0..60).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let row = DenseStore::from_flat(flat, 6);
        let col = DenseStoreColMajor::from_store(&row);
        (row, col)
    }

    #[test]
    fn transpose_roundtrips() {
        let (row, col) = sample_store();
        assert_eq!(col.len(), row.len());
        assert_eq!(col.dim(), row.dim());
        assert_eq!(col.to_store(), row);
        for i in 0..row.len() {
            assert_eq!(col.point(i).coords(), row.row(i));
            for j in 0..row.dim() {
                assert_eq!(col.coord(i, j), row.row(i)[j]);
            }
        }
    }

    #[test]
    fn from_points_matches_from_store() {
        let pts = vec![
            VecPoint::from([1.0, 2.0, 3.0]),
            VecPoint::from([4.0, 5.0, 6.0]),
        ];
        let via_points = DenseStoreColMajor::from_points(&pts);
        let via_store = DenseStoreColMajor::from_store(&DenseStore::from_points(&pts));
        assert_eq!(via_points, via_store);
    }

    #[test]
    fn contiguous_run_detection() {
        let (_, col) = sample_store();
        let rows = col.rows();
        let (cols, stride, first) = ColRow::contiguous_run(&rows).expect("full view is a run");
        assert!(std::ptr::eq(cols, col.as_cols()));
        assert_eq!((stride, first), (col.len(), 0));
        let (_, _, first) = ColRow::contiguous_run(&rows[3..7]).expect("chunk is a run");
        assert_eq!(first, 3);
        let perm = vec![rows[0], rows[2], rows[1]];
        assert!(ColRow::contiguous_run(&perm).is_none());
        let gap = vec![rows[0], rows[2]];
        assert!(ColRow::contiguous_run(&gap).is_none());
        assert!(ColRow::contiguous_run(&[]).is_none());
    }

    #[test]
    fn distances_match_row_major_bitwise() {
        let (row, col) = sample_store();
        let rrows = row.rows();
        let crows = col.rows();
        let e = Euclidean;
        for i in 0..row.len() {
            for j in 0..row.len() {
                let dr = e.distance(&rrows[i], &rrows[j]);
                let dc = e.distance(&crows[i], &crows[j]);
                assert_eq!(dr.to_bits(), dc.to_bits(), "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn batch_hooks_match_row_major_bitwise() {
        let (row, col) = sample_store();
        let rrows = row.rows();
        let crows = col.rows();
        let e = Euclidean;
        let n = row.len();

        let mut out_r = vec![0.0; n];
        let mut out_c = vec![0.0; n];
        e.distance_many(&rrows[2], &rrows, &mut out_r);
        e.distance_many(&crows[2], &crows, &mut out_c);
        for (a, b) in out_r.iter().zip(&out_c) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let mut dist_r = vec![f64::INFINITY; n];
        let mut dist_c = vec![f64::INFINITY; n];
        let mut asg_r = vec![0usize; n];
        let mut asg_c = vec![0usize; n];
        for c in [0usize, 4, 7] {
            let br = e.relax(&rrows[c], &rrows, &mut dist_r, &mut asg_r, c);
            let bc = e.relax(&crows[c], &crows, &mut dist_c, &mut asg_c, c);
            assert_eq!(
                br.map(|(i, v)| (i, v.to_bits())),
                bc.map(|(i, v)| (i, v.to_bits()))
            );
        }
        assert_eq!(asg_r, asg_c);

        for (i, (&dr, &dc)) in dist_r.iter().zip(&dist_c).enumerate() {
            assert_eq!(dr.to_bits(), dc.to_bits(), "point {i}");
            assert_eq!(
                e.distance_to_set_within(&rrows[i], &rrows[..4], dr + 0.125),
                e.distance_to_set_within(&crows[i], &crows[..4], dr + 0.125)
            );
        }
    }
}
