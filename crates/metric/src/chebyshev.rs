//! The Chebyshev (`L∞`) metric.

use crate::{DenseRow, Metric, VecPoint};

/// Chebyshev distance `d(u, v) = max |uᵢ − vᵢ|`.
///
/// Included to round out the `Lp` family used in ablation experiments;
/// `(R^d, L∞)` also has doubling dimension `O(d)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric<VecPoint> for Chebyshev {
    #[inline]
    fn distance(&self, a: &VecPoint, b: &VecPoint) -> f64 {
        self.distance(a.coords(), b.coords())
    }
}

impl Metric<DenseRow<'_>> for Chebyshev {
    #[inline]
    fn distance(&self, a: &DenseRow<'_>, b: &DenseRow<'_>) -> f64 {
        self.distance(a.coords(), b.coords())
    }
}

impl Metric<[f64]> for Chebyshev {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_coordinate_difference() {
        let a = VecPoint::from([0.0, 0.0]);
        let b = VecPoint::from([3.0, 4.0]);
        assert_eq!(Chebyshev.distance(&a, &b), 4.0);
    }

    #[test]
    fn sandwiched_by_l1_and_l2() {
        use crate::{Euclidean, Manhattan};
        let a = VecPoint::from([1.0, -2.0, 0.5]);
        let b = VecPoint::from([-1.0, 3.0, 2.0]);
        let linf = Chebyshev.distance(&a, &b);
        assert!(linf <= Euclidean.distance(&a, &b));
        assert!(linf <= Manhattan.distance(&a, &b));
    }
}
