//! The general Minkowski (`Lp`) metric family.

use crate::{DenseRow, Metric, VecPoint};

/// Minkowski distance `d(u, v) = (Σ |uᵢ − vᵢ|^p)^(1/p)` for `p ≥ 1`.
///
/// `p = 1` and `p = 2` have dedicated zero-cost implementations
/// ([`crate::Manhattan`], [`crate::Euclidean`]); this type covers the
/// rest of the family (the triangle inequality holds exactly for
/// `p ≥ 1`, by Minkowski's inequality — `p < 1` is rejected because it
/// yields a *non*-metric and would silently void the stack's
/// guarantees).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lp {
    p: f64,
}

impl Lp {
    /// Creates the `Lp` metric.
    ///
    /// # Panics
    /// Panics unless `p >= 1` and finite.
    pub fn new(p: f64) -> Self {
        assert!(p.is_finite() && p >= 1.0, "Lp requires 1 <= p < inf");
        Self { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Lp {
    /// The root-free inner sum `Σ |xᵢ − yᵢ|^p`, accumulated in the same
    /// order as [`Lp::distance`] so the batched path stays
    /// bitwise-identical.
    #[inline]
    fn powsum(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum()
    }

    /// Batched distances over coordinate rows: inner sums first, then
    /// the `p`-th roots in one contiguous sweep. (`powf` is a libm
    /// call either way, but the split keeps the memory-bound sum loop
    /// tight; no threshold trick here — `powf` carries no strict
    /// monotonicity guarantee, so eliding roots could flip outcomes.)
    fn many_rows<'a>(
        &self,
        p: &[f64],
        rows: impl ExactSizeIterator<Item = &'a [f64]>,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), rows.len(), "output length mismatch");
        for (o, q) in out.iter_mut().zip(rows) {
            *o = self.powsum(p, q);
        }
        let inv = 1.0 / self.p;
        for o in out.iter_mut() {
            *o = o.powf(inv);
        }
    }
}

impl Metric<VecPoint> for Lp {
    #[inline]
    fn distance(&self, a: &VecPoint, b: &VecPoint) -> f64 {
        self.distance(a.coords(), b.coords())
    }

    fn distance_many(&self, p: &VecPoint, others: &[VecPoint], out: &mut [f64]) {
        self.many_rows(p.coords(), others.iter().map(VecPoint::coords), out);
    }
}

impl Metric<DenseRow<'_>> for Lp {
    #[inline]
    fn distance(&self, a: &DenseRow<'_>, b: &DenseRow<'_>) -> f64 {
        self.distance(a.coords(), b.coords())
    }

    fn distance_many(&self, p: &DenseRow<'_>, others: &[DenseRow<'_>], out: &mut [f64]) {
        self.many_rows(p.coords(), others.iter().map(DenseRow::coords), out);
    }
}

impl Metric<[f64]> for Lp {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        self.powsum(a, b).powf(1.0 / self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chebyshev, Euclidean, Manhattan};

    #[test]
    fn p1_matches_manhattan_and_p2_matches_euclidean() {
        let a = VecPoint::from([1.0, -2.0, 0.5]);
        let b = VecPoint::from([-1.0, 3.0, 2.0]);
        assert!((Lp::new(1.0).distance(&a, &b) - Manhattan.distance(&a, &b)).abs() < 1e-12);
        assert!((Lp::new(2.0).distance(&a, &b) - Euclidean.distance(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn large_p_approaches_chebyshev() {
        let a = VecPoint::from([0.0, 0.0]);
        let b = VecPoint::from([3.0, 4.0]);
        let d64 = Lp::new(64.0).distance(&a, &b);
        assert!((d64 - Chebyshev.distance(&a, &b)).abs() < 0.2, "got {d64}");
    }

    #[test]
    fn monotone_decreasing_in_p() {
        let a = VecPoint::from([0.0, 0.0, 0.0]);
        let b = VecPoint::from([1.0, 1.0, 1.0]);
        let d1 = Lp::new(1.0).distance(&a, &b);
        let d3 = Lp::new(3.0).distance(&a, &b);
        let d7 = Lp::new(7.0).distance(&a, &b);
        assert!(d1 > d3 && d3 > d7);
    }

    #[test]
    #[should_panic]
    fn rejects_p_below_one() {
        let _ = Lp::new(0.5);
    }
}
