//! Jaccard distance on sets.

use crate::{BitSetPoint, Metric};

/// Jaccard distance `d(A, B) = 1 − |A∩B| / |A∪B|`.
///
/// A true metric on finite sets (the Steinhaus/Tanimoto distance); the
/// paper cites it (as "dissimilarity distance in database queries") as a
/// practically important space where the algorithms behave well even
/// though the doubling dimension is unbounded in general. Two empty sets
/// are at distance 0 by convention.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Jaccard;

impl Metric<BitSetPoint> for Jaccard {
    fn distance(&self, a: &BitSetPoint, b: &BitSetPoint) -> f64 {
        let union = a.union_size(b);
        if union == 0 {
            return 0.0;
        }
        1.0 - a.intersection_size(b) as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_sets_at_distance_one() {
        let a = BitSetPoint::from_elements(10, &[0, 1]);
        let b = BitSetPoint::from_elements(10, &[2, 3]);
        assert_eq!(Jaccard.distance(&a, &b), 1.0);
    }

    #[test]
    fn equal_sets_at_distance_zero() {
        let a = BitSetPoint::from_elements(10, &[0, 5, 9]);
        assert_eq!(Jaccard.distance(&a, &a), 0.0);
    }

    #[test]
    fn empty_sets_at_distance_zero() {
        let a = BitSetPoint::new(10);
        let b = BitSetPoint::new(10);
        assert_eq!(Jaccard.distance(&a, &b), 0.0);
    }

    #[test]
    fn half_overlap() {
        let a = BitSetPoint::from_elements(10, &[0, 1, 2]);
        let b = BitSetPoint::from_elements(10, &[1, 2, 3]);
        // |A∩B| = 2, |A∪B| = 4.
        assert_eq!(Jaccard.distance(&a, &b), 0.5);
    }
}
