//! Explicit SIMD distance kernels behind runtime feature detection.
//!
//! The batched scalar kernels (`crate::kernels`) are *latency*-bound
//! at high dimension: each point's squared distance is one serial
//! `sum += d*d` dependency chain, so a modern core spends ~4 cycles per
//! coordinate waiting on the add. This module breaks that chain by
//! vectorizing **across points, not across coordinates**: each SIMD
//! lane accumulates one point's sum in exactly the scalar association
//! order (`((0 + t_0) + t_1) + …`), eight points per block (two 4-wide
//! AVX2 vectors, four 2-wide NEON vectors — the independent
//! accumulators also give the out-of-order core parallel chains).
//!
//! ## Why the results are bitwise-identical to the scalar loops
//!
//! * Lane-wise `sub`/`mul`/`add` are IEEE-754 correctly-rounded double
//!   operations — a lane performs the *same* operation sequence as the
//!   scalar loop for that point, so it produces the same bits.
//! * No FMA is ever used (`mul` then `add`, never fused), matching
//!   Rust's scalar semantics, which never contract implicitly.
//! * Square roots, threshold tests, and argmax folds run in the scalar
//!   epilogue on the extracted lane values, via the same helpers
//!   (`sq_beats_threshold`, `consider_max`) the scalar kernels use.
//! * Vectorizing across *coordinates* instead would reassociate the
//!   per-point sum and break the [`crate::Metric`] bitwise-identity
//!   contract — which is why the auto-vectorizer never delivered this
//!   speedup on its own.
//!
//! The equivalence is proptest-pinned in `tests/simd_equivalence.rs`
//! over every layout and a sweep of dimensions.
//!
//! ## Dispatch
//!
//! [`enabled`] decides at runtime: hardware support (`avx2` on x86_64,
//! `neon` on aarch64, cached) gated by the `DIVMAX_SIMD` env knob —
//! strict-parsed (`off` / `auto` / `on`) through
//! [`diversity_obs::env::choice`]; garbage values are rejected loudly
//! and fall back to `auto`. `off` forces the scalar kernels (the CI
//! forced-scalar leg runs the whole metric suite this way); `on`
//! additionally warns when the hardware can't deliver. Each batch call
//! that takes a SIMD path counts `kernel.simd_dispatch`.
//!
//! The crate's [`crate::Euclidean`] impls dispatch here automatically
//! for dimensions above the monomorphized small-dim kernels (`d > 4`);
//! the `try_*` entry points are public so the equivalence tests and the
//! `ablation_dims` bench can pin both paths regardless of the knob.
//!
//! ## Safety audit
//!
//! Every `unsafe` block in this module carries a `// SAFETY:` comment;
//! the crate denies `unsafe_op_in_unsafe_fn`, so none is implicit. The
//! soundness of the unchecked loads rests on `Batch::check_shape`,
//! which every public driver calls first — for [`Batch::Ptrs`] that
//! includes verifying *every* row's length, so a ragged batch panics
//! instead of reading out of bounds.

use crate::kernels::{consider_max, sq_beats_threshold};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Points per SIMD block on every supported architecture.
const W: usize = 8;

// ---------------------------------------------------------------------
// The DIVMAX_SIMD knob
// ---------------------------------------------------------------------

/// The three positions of the `DIVMAX_SIMD` knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdMode {
    /// Force the scalar kernels even when SIMD hardware is available.
    Off,
    /// Use SIMD iff the hardware supports it (the default).
    Auto,
    /// Like `Auto`, but warn (once) if the hardware can't deliver —
    /// for deployments that *expect* the fast path.
    On,
}

/// Knob spellings, aligned with [`MODES`].
const MODE_NAMES: &[&str] = &["off", "auto", "on"];
const MODES: [SimdMode; 3] = [SimdMode::Off, SimdMode::Auto, SimdMode::On];
/// Index of the default (`auto`) in [`MODES`].
const MODE_DEFAULT: usize = 1;

impl SimdMode {
    /// Strictly parses a `DIVMAX_SIMD` value: exactly `off`, `auto`, or
    /// `on` (whitespace-trimmed, case-sensitive); anything else is an
    /// error describing the rejection.
    pub fn parse(raw: &str) -> Result<Self, String> {
        diversity_obs::env::parse_choice(raw, MODE_NAMES).map(|i| MODES[i])
    }
}

fn env_mode() -> SimdMode {
    static MODE: OnceLock<SimdMode> = OnceLock::new();
    *MODE.get_or_init(|| MODES[diversity_obs::env::choice("DIVMAX_SIMD", MODE_NAMES, MODE_DEFAULT)])
}

/// Process-local override of the env knob: `0` = none, else
/// `1 + index into MODES`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Overrides the `DIVMAX_SIMD` knob for this process (`None` restores
/// it). For benches and tests that must compare both paths in one
/// process — the env knob itself is read once and cached.
pub fn force_mode(mode: Option<SimdMode>) {
    FORCED.store(mode.map_or(0, |m| 1 + m as u8), Ordering::SeqCst);
}

/// The effective dispatch mode: a [`force_mode`] override if set, else
/// the strict-parsed `DIVMAX_SIMD` env knob (default `auto`).
pub fn mode() -> SimdMode {
    match FORCED.load(Ordering::SeqCst) {
        0 => env_mode(),
        f => MODES[(f - 1) as usize],
    }
}

/// Whether this host's hardware supports the SIMD kernels (AVX2 on
/// x86_64, NEON on aarch64). Cached after the first call.
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(target_arch = "aarch64")]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| std::arch::is_aarch64_feature_detected!("neon"))
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Whether the crate's metrics should dispatch to the SIMD kernels:
/// [`available`] gated by [`mode`].
pub fn enabled() -> bool {
    match mode() {
        SimdMode::Off => false,
        SimdMode::Auto => available(),
        SimdMode::On => {
            if !available() {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "[metric] DIVMAX_SIMD=on but no SIMD support detected; \
                         falling back to scalar kernels"
                    );
                });
            }
            available()
        }
    }
}

/// The kernel family [`enabled`] dispatch resolves to: `"avx2"`,
/// `"neon"`, or `"scalar"`.
pub fn dispatch_label() -> &'static str {
    if !enabled() {
        return "scalar";
    }
    #[cfg(target_arch = "x86_64")]
    {
        "avx2"
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "scalar"
    }
}

// ---------------------------------------------------------------------
// Batch layouts
// ---------------------------------------------------------------------

/// The memory layouts the SIMD kernels can stream, describing where
/// point `i`'s coordinate `j` lives.
#[derive(Clone, Copy, Debug)]
pub enum Batch<'a> {
    /// Row-major contiguous rows (a [`crate::DenseStore`] run):
    /// `flat[i * dim + j]`.
    Flat {
        /// The coordinate buffer, exactly `len · dim` values.
        flat: &'a [f64],
        /// The ambient dimension.
        dim: usize,
    },
    /// Independent per-point coordinate slices (e.g. [`crate::VecPoint`]s):
    /// `rows[i][j]`. Lanes gather through four row pointers per vector.
    Ptrs {
        /// One coordinate slice per point, all of length `dim`.
        rows: &'a [&'a [f64]],
        /// The ambient dimension.
        dim: usize,
    },
    /// Column-major (a [`crate::DenseStoreColMajor`] run):
    /// `cols[j * stride + first + i]` — consecutive points' `j`-th
    /// coordinates are adjacent, so lanes fill with unit-stride loads.
    Col {
        /// The transposed coordinate buffer, `dim · stride` values.
        cols: &'a [f64],
        /// Points per column (the owning store's `len`).
        stride: usize,
        /// Index of the batch's first point within the store.
        first: usize,
        /// Number of points in the batch.
        len: usize,
        /// The ambient dimension.
        dim: usize,
    },
}

impl Batch<'_> {
    /// Number of points in the batch.
    pub fn len(&self) -> usize {
        match *self {
            Batch::Flat { flat, dim } => flat.len() / dim,
            Batch::Ptrs { rows, .. } => rows.len(),
            Batch::Col { len, .. } => len,
        }
    }

    /// `true` when the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the batch shape against the query dimension. This is
    /// the soundness gate for the kernels' unchecked loads, so it is
    /// exhaustive: for [`Batch::Ptrs`] every row's length is checked (a
    /// ragged batch must panic here, not read out of bounds).
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    fn check_shape(&self, dim: usize) {
        assert!(dim > 0, "dimension must be positive");
        match *self {
            Batch::Flat { flat, dim: d } => {
                assert_eq!(d, dim, "batch/query dimension mismatch");
                assert_eq!(flat.len() % d, 0, "flat buffer not a multiple of dim");
            }
            Batch::Ptrs { rows, dim: d } => {
                assert_eq!(d, dim, "batch/query dimension mismatch");
                for (i, r) in rows.iter().enumerate() {
                    assert_eq!(r.len(), d, "row {i} has wrong dimension");
                }
            }
            Batch::Col {
                cols,
                stride,
                first,
                len,
                dim: d,
            } => {
                assert_eq!(d, dim, "batch/query dimension mismatch");
                assert!(first + len <= stride, "batch range exceeds column stride");
                assert!(
                    d * stride <= cols.len(),
                    "column buffer shorter than dim · stride"
                );
            }
        }
    }

    /// Scalar squared distance of point `i` to `center`, in the exact
    /// scalar association order — the tail path of every driver.
    #[inline(always)]
    fn dsq_scalar(&self, center: &[f64], i: usize) -> f64 {
        match *self {
            Batch::Flat { flat, dim } => crate::kernels::l2_sq(center, &flat[i * dim..][..dim]),
            Batch::Ptrs { rows, .. } => crate::kernels::l2_sq(center, rows[i]),
            Batch::Col {
                cols,
                stride,
                first,
                dim,
                ..
            } => {
                let mut sum = 0.0;
                for (j, &c) in center.iter().enumerate().take(dim) {
                    let d = c - cols[j * stride + first + i];
                    sum += d * d;
                }
                sum
            }
        }
    }
}

// ---------------------------------------------------------------------
// Drivers (safe; shared across architectures)
// ---------------------------------------------------------------------

/// Squared distances of points `i..i+8`, one lane per point.
///
/// # Safety
/// The caller must guarantee that [`available`] returned `true`, that
/// `i + 8 <= batch.len()`, and that `batch.check_shape(center.len())`
/// passed (the kernels load without bounds checks on that basis).
#[inline]
unsafe fn dsq_block(batch: &Batch<'_>, center: &[f64], i: usize, out: &mut [f64; W]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: contract forwarded verbatim; `available()` on x86_64
    // means AVX2 was detected.
    unsafe {
        x86::dsq8_avx2(batch, center, i, out)
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: contract forwarded verbatim; `available()` on aarch64
    // means NEON was detected.
    unsafe {
        arm::dsq8_neon(batch, center, i, out)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = (batch, center, i, out);
        unreachable!("no SIMD backend on this architecture");
    }
}

/// SIMD Euclidean distance sweep: writes `‖center − qᵢ‖₂` into
/// `out[i]`. Returns `false` (without touching `out`) when no SIMD
/// backend is available on this host; bitwise-identical to the scalar
/// kernel otherwise.
///
/// # Panics
/// Panics if the batch shape is inconsistent with `center` or
/// `out.len() != batch.len()`.
pub fn try_many(batch: &Batch<'_>, center: &[f64], out: &mut [f64]) -> bool {
    if !available() {
        return false;
    }
    let n = batch.len();
    batch.check_shape(center.len());
    assert_eq!(out.len(), n, "output length mismatch");
    let mut dsq = [0.0f64; W];
    let mut i = 0;
    while i + W <= n {
        // SAFETY: availability checked above; `i + W <= n`; shape
        // validated by `check_shape`.
        unsafe { dsq_block(batch, center, i, &mut dsq) };
        for w in 0..W {
            // Scalar sqrt per lane: correctly rounded, so identical to
            // both the scalar kernel and a vector sqrt — and it keeps
            // the unsafe surface down to the gather primitives.
            out[i + w] = dsq[w].sqrt();
        }
        i += W;
    }
    for (ii, o) in out.iter_mut().enumerate().skip(i) {
        *o = batch.dsq_scalar(center, ii).sqrt();
    }
    if diversity_obs::enabled() {
        diversity_obs::count("kernel.distances", n as u64);
        diversity_obs::count("kernel.simd_dispatch", 1);
    }
    true
}

/// SIMD GMM relaxation with root elision and fused argmax — the SIMD
/// counterpart of `kernels::euclidean_relax`, bitwise-identical to it
/// (squared distances per lane in scalar order; thresholds, roots, and
/// the argmax fold run in the scalar epilogue). Returns `None` when no
/// SIMD backend is available (inputs untouched), `Some(best)`
/// otherwise.
///
/// # Panics
/// Panics if the batch shape is inconsistent with `center` or the
/// `dists` / `assignment` lengths differ from `batch.len()`.
#[allow(clippy::type_complexity)]
pub fn try_relax(
    batch: &Batch<'_>,
    center: &[f64],
    dists: &mut [f64],
    assignment: &mut [usize],
    cj: usize,
) -> Option<Option<(usize, f64)>> {
    if !available() {
        return None;
    }
    let n = batch.len();
    batch.check_shape(center.len());
    assert_eq!(dists.len(), n, "dists length mismatch");
    assert_eq!(assignment.len(), n, "assignment length mismatch");
    let mut best: Option<(usize, f64)> = None;
    let mut elided = 0u64;
    let mut dsq = [0.0f64; W];
    let mut i = 0;
    while i + W <= n {
        // SAFETY: availability checked above; `i + W <= n`; shape
        // validated by `check_shape`.
        unsafe { dsq_block(batch, center, i, &mut dsq) };
        for w in 0..W {
            if !sq_beats_threshold(dsq[w], dists[i + w]) {
                let d = dsq[w].sqrt();
                if d < dists[i + w] {
                    dists[i + w] = d;
                    assignment[i + w] = cj;
                }
            } else {
                elided += 1;
            }
            consider_max(&mut best, i + w, dists[i + w]);
        }
        i += W;
    }
    for ii in i..n {
        let d_sq = batch.dsq_scalar(center, ii);
        if !sq_beats_threshold(d_sq, dists[ii]) {
            let d = d_sq.sqrt();
            if d < dists[ii] {
                dists[ii] = d;
                assignment[ii] = cj;
            }
        } else {
            elided += 1;
        }
        consider_max(&mut best, ii, dists[ii]);
    }
    if diversity_obs::enabled() {
        diversity_obs::count("kernel.distances", n as u64);
        diversity_obs::count("kernel.relax_fused_rounds", 1);
        diversity_obs::count("kernel.roots_elided", elided);
        diversity_obs::count("kernel.simd_dispatch", 1);
    }
    Some(best)
}

/// SIMD early-exit coverage check: `Some(true)` iff some point of the
/// batch is within `threshold` of `center`, deciding every comparison
/// exactly as the scalar kernel does (squared compare against the
/// `next_up` guard, root only on candidates). `None` when no SIMD
/// backend is available.
///
/// # Panics
/// Panics if the batch shape is inconsistent with `center`.
pub fn try_within(batch: &Batch<'_>, center: &[f64], threshold: f64) -> Option<bool> {
    if !available() {
        return None;
    }
    let n = batch.len();
    batch.check_shape(center.len());
    if diversity_obs::enabled() {
        diversity_obs::count("kernel.simd_dispatch", 1);
    }
    // Same guard as `kernels::euclidean_within`: the scalar test is
    // non-strict (`d <= threshold`), so elide on the *next*
    // representable incumbent's square.
    let guard = threshold.next_up();
    let thr_sq = guard * guard;
    let mut dsq = [0.0f64; W];
    let mut i = 0;
    while i + W <= n {
        // SAFETY: availability checked above; `i + W <= n`; shape
        // validated by `check_shape`.
        unsafe { dsq_block(batch, center, i, &mut dsq) };
        for &d_sq in &dsq {
            if d_sq <= thr_sq && d_sq.sqrt() <= threshold {
                return Some(true);
            }
        }
        i += W;
    }
    for ii in i..n {
        let d_sq = batch.dsq_scalar(center, ii);
        if d_sq <= thr_sq && d_sq.sqrt() <= threshold {
            return Some(true);
        }
    }
    Some(false)
}

// ---------------------------------------------------------------------
// AVX2 (x86_64)
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{Batch, W};
    use std::arch::x86_64::*;

    /// 4×4 register transpose: four row vectors `[r_w[j..j+4]]` become
    /// four dimension vectors `[r_0[j+t], r_1[j+t], r_2[j+t], r_3[j+t]]`
    /// for `t = 0..4`. Pure lane shuffling — no arithmetic, so it
    /// cannot perturb the bitwise contract.
    #[inline(always)]
    fn transpose4(
        r0: __m256d,
        r1: __m256d,
        r2: __m256d,
        r3: __m256d,
    ) -> (__m256d, __m256d, __m256d, __m256d) {
        // SAFETY: shuffle intrinsics are safe under the avx2 target
        // feature of every caller in this module.
        unsafe {
            let t01_lo = _mm256_unpacklo_pd(r0, r1); // [a0 b0 a2 b2]
            let t01_hi = _mm256_unpackhi_pd(r0, r1); // [a1 b1 a3 b3]
            let t23_lo = _mm256_unpacklo_pd(r2, r3); // [c0 d0 c2 d2]
            let t23_hi = _mm256_unpackhi_pd(r2, r3); // [c1 d1 c3 d3]
            (
                _mm256_permute2f128_pd(t01_lo, t23_lo, 0x20), // [a0 b0 c0 d0]
                _mm256_permute2f128_pd(t01_hi, t23_hi, 0x20), // [a1 b1 c1 d1]
                _mm256_permute2f128_pd(t01_lo, t23_lo, 0x31), // [a2 b2 c2 d2]
                _mm256_permute2f128_pd(t01_hi, t23_hi, 0x31), // [a3 b3 c3 d3]
            )
        }
    }

    /// Squared distances of points `i..i+8` to `center`: two 4-wide
    /// accumulator chains, each lane in scalar association order, no
    /// FMA (`vmulpd` + `vaddpd`, exactly the scalar rounding).
    ///
    /// Row-major batches (`Flat` / `Ptrs`) take 4-dimension strides:
    /// one contiguous 4-wide load per row, a register transpose into
    /// dimension vectors, then the accumulators consume dimensions
    /// `j, j+1, j+2, j+3` in order — the same per-lane accumulation
    /// order as the scalar kernel, at a quarter of the shuffle traffic
    /// of per-dimension scalar gathers. The `dim % 4` tail (and the
    /// strided `Col` layout, whose columns are already contiguous)
    /// keeps the per-dimension gather.
    ///
    /// # Safety
    /// AVX2 must be available; `i + 8 <= batch.len()`; the batch shape
    /// must have passed `Batch::check_shape(center.len())` (all
    /// unchecked loads below are in bounds on that basis).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dsq8_avx2(
        batch: &Batch<'_>,
        center: &[f64],
        i: usize,
        out: &mut [f64; W],
    ) {
        let dim = center.len();
        let mut lo = _mm256_setzero_pd();
        let mut hi = _mm256_setzero_pd();
        match *batch {
            Batch::Flat { flat, .. } => {
                let base = i * dim;
                // SAFETY: rows `i..i+8` exist (caller contract), so
                // every index `base + w·dim + j` with `w < 8`, `j < dim`
                // is within `flat`; 4-wide loads additionally require
                // `j + 4 <= dim`, which the loop bound guarantees.
                unsafe {
                    let p = flat.as_ptr().add(base);
                    let row = |w: usize, j: usize| _mm256_loadu_pd(p.add(w * dim + j));
                    let mut j = 0;
                    while j + 4 <= dim {
                        let (c0, c1, c2, c3) =
                            transpose4(row(0, j), row(1, j), row(2, j), row(3, j));
                        let (e0, e1, e2, e3) =
                            transpose4(row(4, j), row(5, j), row(6, j), row(7, j));
                        for (t, (c, e)) in [(c0, e0), (c1, e1), (c2, e2), (c3, e3)]
                            .into_iter()
                            .enumerate()
                        {
                            let cv = _mm256_set1_pd(*center.get_unchecked(j + t));
                            let d_lo = _mm256_sub_pd(cv, c);
                            let d_hi = _mm256_sub_pd(cv, e);
                            lo = _mm256_add_pd(lo, _mm256_mul_pd(d_lo, d_lo));
                            hi = _mm256_add_pd(hi, _mm256_mul_pd(d_hi, d_hi));
                        }
                        j += 4;
                    }
                    while j < dim {
                        let cv = _mm256_set1_pd(*center.get_unchecked(j));
                        let at = |w: usize| *flat.get_unchecked(base + w * dim + j);
                        let q_lo = _mm256_set_pd(at(3), at(2), at(1), at(0));
                        let q_hi = _mm256_set_pd(at(7), at(6), at(5), at(4));
                        let d_lo = _mm256_sub_pd(cv, q_lo);
                        let d_hi = _mm256_sub_pd(cv, q_hi);
                        lo = _mm256_add_pd(lo, _mm256_mul_pd(d_lo, d_lo));
                        hi = _mm256_add_pd(hi, _mm256_mul_pd(d_hi, d_hi));
                        j += 1;
                    }
                }
            }
            Batch::Ptrs { rows, .. } => {
                // SAFETY: `i + 8 <= rows.len()` (caller contract), and
                // `check_shape` verified every row has length `dim`, so
                // both the 4-wide loads (`j + 4 <= dim`) and the scalar
                // tail reads are in bounds.
                unsafe {
                    let r = rows.get_unchecked(i..i + 8);
                    let row = |w: usize, j: usize| _mm256_loadu_pd(r[w].as_ptr().add(j));
                    let mut j = 0;
                    while j + 4 <= dim {
                        let (c0, c1, c2, c3) =
                            transpose4(row(0, j), row(1, j), row(2, j), row(3, j));
                        let (e0, e1, e2, e3) =
                            transpose4(row(4, j), row(5, j), row(6, j), row(7, j));
                        for (t, (c, e)) in [(c0, e0), (c1, e1), (c2, e2), (c3, e3)]
                            .into_iter()
                            .enumerate()
                        {
                            let cv = _mm256_set1_pd(*center.get_unchecked(j + t));
                            let d_lo = _mm256_sub_pd(cv, c);
                            let d_hi = _mm256_sub_pd(cv, e);
                            lo = _mm256_add_pd(lo, _mm256_mul_pd(d_lo, d_lo));
                            hi = _mm256_add_pd(hi, _mm256_mul_pd(d_hi, d_hi));
                        }
                        j += 4;
                    }
                    while j < dim {
                        let cv = _mm256_set1_pd(*center.get_unchecked(j));
                        let at = |w: usize| *r[w].get_unchecked(j);
                        let q_lo = _mm256_set_pd(at(3), at(2), at(1), at(0));
                        let q_hi = _mm256_set_pd(at(7), at(6), at(5), at(4));
                        let d_lo = _mm256_sub_pd(cv, q_lo);
                        let d_hi = _mm256_sub_pd(cv, q_hi);
                        lo = _mm256_add_pd(lo, _mm256_mul_pd(d_lo, d_lo));
                        hi = _mm256_add_pd(hi, _mm256_mul_pd(d_hi, d_hi));
                        j += 1;
                    }
                }
            }
            Batch::Col {
                cols,
                stride,
                first,
                ..
            } => {
                let base = first + i;
                for (j, &c) in center.iter().enumerate() {
                    let cv = _mm256_set1_pd(c);
                    // SAFETY: `check_shape` verified `dim · stride <=
                    // cols.len()` and `first + len <= stride`, and the
                    // caller guarantees `i + 8 <= len`, so the 8 values
                    // at `j·stride + base ..` are in bounds. Unit
                    // stride: this is the column-major payoff.
                    let (q_lo, q_hi) = unsafe {
                        let p = cols.as_ptr().add(j * stride + base);
                        (_mm256_loadu_pd(p), _mm256_loadu_pd(p.add(4)))
                    };
                    let d_lo = _mm256_sub_pd(cv, q_lo);
                    let d_hi = _mm256_sub_pd(cv, q_hi);
                    lo = _mm256_add_pd(lo, _mm256_mul_pd(d_lo, d_lo));
                    hi = _mm256_add_pd(hi, _mm256_mul_pd(d_hi, d_hi));
                }
            }
        }
        // SAFETY: `out` is 8 f64s; two non-overlapping unaligned
        // 4-wide stores.
        unsafe {
            _mm256_storeu_pd(out.as_mut_ptr(), lo);
            _mm256_storeu_pd(out.as_mut_ptr().add(4), hi);
        }
    }
}

// ---------------------------------------------------------------------
// NEON (aarch64)
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::{Batch, W};
    use std::arch::aarch64::*;

    /// Squared distances of points `i..i+8` to `center`: four 2-wide
    /// accumulator chains, each lane in scalar association order, no
    /// FMA (`fmul` + `fadd`, exactly the scalar rounding).
    ///
    /// # Safety
    /// NEON must be available; `i + 8 <= batch.len()`; the batch shape
    /// must have passed `Batch::check_shape(center.len())`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dsq8_neon(
        batch: &Batch<'_>,
        center: &[f64],
        i: usize,
        out: &mut [f64; W],
    ) {
        let dim = center.len();
        let mut acc = [vdupq_n_f64(0.0); 4];
        match *batch {
            Batch::Flat { flat, .. } => {
                let base = i * dim;
                for (j, &c) in center.iter().enumerate() {
                    let cv = vdupq_n_f64(c);
                    for (v, a) in acc.iter_mut().enumerate() {
                        // SAFETY: rows `i..i+8` exist (caller
                        // contract); indices `base + w·dim + j` with
                        // `w < 8` are within `flat`.
                        let q = unsafe {
                            vcombine_f64(
                                vdup_n_f64(*flat.get_unchecked(base + 2 * v * dim + j)),
                                vdup_n_f64(*flat.get_unchecked(base + (2 * v + 1) * dim + j)),
                            )
                        };
                        let d = vsubq_f64(cv, q);
                        *a = vaddq_f64(*a, vmulq_f64(d, d));
                    }
                }
            }
            Batch::Ptrs { rows, .. } => {
                // SAFETY: `i + 8 <= rows.len()` (caller contract).
                let r = unsafe { rows.get_unchecked(i..i + 8) };
                for (j, &c) in center.iter().enumerate() {
                    let cv = vdupq_n_f64(c);
                    for (v, a) in acc.iter_mut().enumerate() {
                        // SAFETY: `check_shape` verified every row has
                        // length `dim > j`.
                        let q = unsafe {
                            vcombine_f64(
                                vdup_n_f64(*r[2 * v].get_unchecked(j)),
                                vdup_n_f64(*r[2 * v + 1].get_unchecked(j)),
                            )
                        };
                        let d = vsubq_f64(cv, q);
                        *a = vaddq_f64(*a, vmulq_f64(d, d));
                    }
                }
            }
            Batch::Col {
                cols,
                stride,
                first,
                ..
            } => {
                let base = first + i;
                for (j, &c) in center.iter().enumerate() {
                    let cv = vdupq_n_f64(c);
                    for (v, a) in acc.iter_mut().enumerate() {
                        // SAFETY: `check_shape` bounds (`dim · stride
                        // <= cols.len()`, `first + len <= stride`) and
                        // the caller's `i + 8 <= len` put both lanes in
                        // bounds. Unit-stride pair load.
                        let q = unsafe { vld1q_f64(cols.as_ptr().add(j * stride + base + 2 * v)) };
                        let d = vsubq_f64(cv, q);
                        *a = vaddq_f64(*a, vmulq_f64(d, d));
                    }
                }
            }
        }
        for (v, a) in acc.iter().enumerate() {
            // SAFETY: `out` is 8 f64s; four non-overlapping pair
            // stores.
            unsafe { vst1q_f64(out.as_mut_ptr().add(2 * v), *a) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_strictly_per_value() {
        assert_eq!(SimdMode::parse("off"), Ok(SimdMode::Off));
        assert_eq!(SimdMode::parse("auto"), Ok(SimdMode::Auto));
        assert_eq!(SimdMode::parse(" on "), Ok(SimdMode::On));
        // Per-value rejections: strict knobs never guess.
        for bad in [
            "", "  ", "OFF", "On", "AUTO", "0", "1", "true", "fast", "on,off",
        ] {
            assert!(SimdMode::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn force_mode_overrides_and_restores() {
        force_mode(Some(SimdMode::Off));
        assert_eq!(mode(), SimdMode::Off);
        assert!(!enabled(), "off must force the scalar path");
        assert_eq!(dispatch_label(), "scalar");
        force_mode(Some(SimdMode::Auto));
        assert_eq!(mode(), SimdMode::Auto);
        assert_eq!(enabled(), available());
        force_mode(None);
        let _ = mode(); // back to the cached env knob, whatever it is
    }

    #[test]
    fn batch_len_accounts_for_layout() {
        let flat = vec![0.0; 12];
        assert_eq!(
            Batch::Flat {
                flat: &flat,
                dim: 3
            }
            .len(),
            4
        );
        let r0 = [0.0; 3];
        let rows: Vec<&[f64]> = vec![&r0, &r0];
        assert_eq!(
            Batch::Ptrs {
                rows: &rows,
                dim: 3
            }
            .len(),
            2
        );
        let b = Batch::Col {
            cols: &flat,
            stride: 4,
            first: 1,
            len: 2,
            dim: 3,
        };
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn ragged_ptr_batch_is_rejected_before_any_load() {
        if !available() {
            panic!("row 0 has wrong dimension"); // keep the expectation on non-SIMD hosts
        }
        let r0 = [0.0; 5];
        let r1 = [0.0; 4]; // ragged!
        let rows: Vec<&[f64]> = vec![&r0, &r1, &r0, &r0, &r0, &r0, &r0, &r0];
        let center = [0.0; 5];
        let mut out = vec![0.0; 8];
        let _ = try_many(
            &Batch::Ptrs {
                rows: &rows,
                dim: 5,
            },
            &center,
            &mut out,
        );
    }
}
