//! Empirical doubling-dimension estimation.
//!
//! A metric space has doubling dimension `D` if every ball of radius `r`
//! can be covered by at most `2^D` balls of radius `r/2`. The paper's
//! core-set sizes scale as `(c/ε)^D`, so knowing (an estimate of) `D`
//! guides the choice of `k'` in practice. Exact computation is
//! infeasible; this module implements the standard sampling + greedy
//! ball-cover heuristic: for sampled centers `p` and radii `r`, greedily
//! cover the points of `B(p, r)` with balls of radius `r/2` centered at
//! data points, and report `log2` of the worst cover size seen.
//!
//! Greedy covering with centers restricted to the data overestimates the
//! true cover number by at most a factor that vanishes into the `log2`,
//! so the estimate is a useful upper-bound proxy, not an exact value.

use crate::{cmp_dist, Metric};

/// Result of [`estimate_doubling_dimension`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DoublingEstimate {
    /// `log2` of the largest (r/2)-cover found for any sampled r-ball.
    pub dimension: f64,
    /// The largest cover size observed.
    pub worst_cover: usize,
    /// Number of (center, radius) probes performed.
    pub probes: usize,
}

/// Estimates the doubling dimension of `points` under `metric`.
///
/// `samples` centers are probed (deterministically spread over the input
/// by a fixed stride derived from `seed`), each at a geometric ladder of
/// radii between the ball's smallest and largest positive pairwise
/// distances. Runs in `O(samples · levels · n · cover)` distance
/// evaluations — intended for datasets up to ~10⁵ points or for samples
/// of larger ones.
///
/// Returns a zero estimate for fewer than 2 points.
pub fn estimate_doubling_dimension<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    samples: usize,
    seed: u64,
) -> DoublingEstimate {
    let n = points.len();
    if n < 2 || samples == 0 {
        return DoublingEstimate {
            dimension: 0.0,
            worst_cover: 1,
            probes: 0,
        };
    }
    // Deterministic pseudo-random center choice: stride by a large odd
    // constant mixed with the seed (a full RNG is overkill here and
    // keeps this crate dependency-free).
    let stride = (0x9E37_79B9_7F4A_7C15u64 ^ seed) | 1;
    let mut worst_cover = 1usize;
    let mut probes = 0usize;
    const LEVELS: usize = 4;

    for s in 0..samples {
        let center = ((s as u64).wrapping_mul(stride) % n as u64) as usize;
        // Distances from the probe center to everything.
        let dists: Vec<f64> = points
            .iter()
            .map(|q| metric.distance(&points[center], q))
            .collect();
        let max_d = dists.iter().copied().fold(0.0, f64::max);
        if max_d == 0.0 {
            continue;
        }
        for level in 0..LEVELS {
            // Radii max_d, max_d/2, max_d/4, ...
            let r = max_d / (1 << level) as f64;
            let ball: Vec<usize> = (0..n).filter(|&i| dists[i] <= r).collect();
            if ball.len() < 2 {
                break;
            }
            let cover = greedy_cover_size(points, metric, &ball, r / 2.0);
            worst_cover = worst_cover.max(cover);
            probes += 1;
        }
    }
    DoublingEstimate {
        dimension: (worst_cover as f64).log2(),
        worst_cover,
        probes,
    }
}

/// Greedily covers `ball` (indices into `points`) with radius-`r` balls
/// centered at members of `ball`; returns the number of balls used.
/// Uses farthest-first center selection, which both terminates in cover
/// size ≤ the 2-approximation of the optimal cover and is deterministic.
fn greedy_cover_size<P, M: Metric<P>>(points: &[P], metric: &M, ball: &[usize], r: f64) -> usize {
    let mut dist_to_centers = vec![f64::INFINITY; ball.len()];
    let mut covers = 0usize;
    loop {
        // Farthest uncovered point becomes the next center.
        let (far_pos, &far_d) = match dist_to_centers
            .iter()
            .enumerate()
            .max_by(|a, b| cmp_dist(a.1, b.1))
        {
            Some(x) => x,
            None => return covers,
        };
        if far_d <= r {
            return covers;
        }
        covers += 1;
        let c = ball[far_pos];
        for (pos, &i) in ball.iter().enumerate() {
            let d = metric.distance(&points[c], &points[i]);
            if d < dist_to_centers[pos] {
                dist_to_centers[pos] = d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Euclidean, VecPoint};

    fn line(n: usize) -> Vec<VecPoint> {
        (0..n).map(|i| VecPoint::from([i as f64])).collect()
    }

    fn grid2d(side: usize) -> Vec<VecPoint> {
        let mut v = Vec::new();
        for i in 0..side {
            for j in 0..side {
                v.push(VecPoint::from([i as f64, j as f64]));
            }
        }
        v
    }

    #[test]
    fn degenerate_inputs() {
        let est = estimate_doubling_dimension(&line(0), &Euclidean, 4, 1);
        assert_eq!(est.dimension, 0.0);
        let est = estimate_doubling_dimension(&line(1), &Euclidean, 4, 1);
        assert_eq!(est.dimension, 0.0);
    }

    #[test]
    fn line_has_small_dimension() {
        let est = estimate_doubling_dimension(&line(200), &Euclidean, 6, 7);
        // The real line has doubling dimension 1; greedy covering with
        // data centers can cost roughly one extra doubling.
        assert!(est.dimension <= 3.0, "line estimated at {}", est.dimension);
        assert!(est.dimension >= 1.0);
    }

    #[test]
    fn plane_estimate_exceeds_line_estimate() {
        let l = estimate_doubling_dimension(&line(225), &Euclidean, 6, 7);
        let g = estimate_doubling_dimension(&grid2d(15), &Euclidean, 6, 7);
        assert!(
            g.dimension > l.dimension,
            "grid {} vs line {}",
            g.dimension,
            l.dimension
        );
    }

    #[test]
    fn identical_points_give_zero() {
        let pts: Vec<VecPoint> = (0..10).map(|_| VecPoint::from([1.0])).collect();
        let est = estimate_doubling_dimension(&pts, &Euclidean, 3, 1);
        assert_eq!(est.worst_cover, 1);
    }
}
