//! A tiny scoped-thread parallel helper — no vendored dependencies,
//! just `std::thread::scope`.
//!
//! The workspace's hot loops (GMM relax+argmax, core-set builders,
//! [`crate::DistanceMatrix::build`]) are embarrassingly parallel over
//! contiguous index ranges. This module provides the two things they
//! need: a thread-count policy and a fork-join runner. Anything
//! fancier (work stealing, persistent pools) would buy little for
//! loops this regular and would drag in dependencies the offline build
//! environment cannot satisfy.
//!
//! ## Thread-count policy
//!
//! [`num_threads`] honours the `DIVMAX_THREADS` environment variable
//! when set (and ≥ 1), else uses [`std::thread::available_parallelism`].
//! [`auto_threads`] additionally falls back to 1 below a work-size
//! threshold so small inputs keep their sequential fast path — fork
//! and barrier costs are microseconds, which dwarfs a relax pass over
//! a few thousand points.
//!
//! Callers that already parallelize at a coarser level (the simulated
//! MapReduce runtime runs reducers on threads) can pin
//! `DIVMAX_THREADS=1` to avoid oversubscription.

use std::sync::OnceLock;

/// Work-item threshold below which [`auto_threads`] stays sequential.
///
/// Chosen so the ~10µs/thread fork-join overhead is well under 10% of
/// the parallelized loop body (a relax pass at ~2ns/point).
pub const PAR_MIN_WORK: usize = 16_384;

fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let default = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Strict parse: garbage values are rejected loudly (once, via
        // the obs layer) instead of silently running at the default.
        diversity_obs::env::positive_usize("DIVMAX_THREADS", default)
    })
}

/// The thread budget: `DIVMAX_THREADS` if set to a valid positive
/// integer (invalid values warn once and are ignored), else the
/// machine's available parallelism (cached after the first call).
pub fn num_threads() -> usize {
    configured_threads()
}

/// The thread count to use for a loop over `work_items` elements: 1
/// below [`PAR_MIN_WORK`] (sequential fast path), else [`num_threads`],
/// and never more than one thread per work item.
pub fn auto_threads(work_items: usize) -> usize {
    if work_items < PAR_MIN_WORK {
        1
    } else {
        num_threads().min(work_items).max(1)
    }
}

/// Fork-join: runs every task on its own scoped thread and returns the
/// results in task order. With zero or one task, runs inline — callers
/// can build their task vectors unconditionally and let degenerate
/// cases skip the fork.
///
/// Panics in a task propagate to the caller (after all tasks joined),
/// matching the behaviour of the loop being parallelized.
pub fn run_tasks<R, F>(tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if tasks.len() <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = tasks.into_iter().map(|t| s.spawn(t)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel task panicked"))
            .collect()
    })
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal
/// length (empty ranges elided). The building block for chunked
/// parallel loops that must stay *deterministic*: chunk boundaries
/// depend only on `(n, parts)`, never on scheduling.
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(lo..lo + len);
        lo += len;
    }
    debug_assert_eq!(lo, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_in_order() {
        for n in [0usize, 1, 2, 7, 100, 1001] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(n, parts);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, n);
                assert!(ranges.len() <= parts.min(n.max(1)));
            }
        }
    }

    #[test]
    fn split_is_balanced() {
        let ranges = split_ranges(10, 3);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn run_tasks_preserves_order() {
        let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
        assert_eq!(run_tasks(tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn run_tasks_inline_for_singleton() {
        let tasks = vec![|| 42];
        assert_eq!(run_tasks(tasks), vec![42]);
    }

    #[test]
    fn auto_threads_sequential_below_threshold() {
        assert_eq!(auto_threads(PAR_MIN_WORK - 1), 1);
        assert!(auto_threads(PAR_MIN_WORK) >= 1);
    }
}
