//! Batched coordinate kernels shared by the dense metrics.
//!
//! Every algorithm in the workspace bottoms out in `O(n·k)` distance
//! evaluations; these kernels make that hot path run at hardware speed
//! while staying **bitwise-identical** to the scalar implementations
//! (enforced by `tests/batch_equivalence.rs`). Four ingredients:
//!
//! 1. **Dimension dispatch hoisted out of the point loop.** The
//!    per-pair code is monomorphized for the common low dimensions
//!    (`D = 1..=4`, the paper's `R^2`/`R^3` experiments) via const
//!    generics, so the inner loop is fully unrolled, branch-free and
//!    auto-vectorizable.
//! 2. **Threshold-aware root elision.** The GMM relax step only needs
//!    a distance when it *improves* on the incumbent; comparing
//!    squared values first skips the root for the (vast) majority of
//!    points that don't. See [`sq_beats_threshold`] for the exactness
//!    proof.
//! 3. **Fused argmax.** [`crate::Metric::relax`] reports the farthest
//!    survivor, so the blocked kernels fold the reduction into the
//!    relax sweep and GMM never re-reads the distance array.
//! 4. **Flat-buffer blocking.** Contiguous [`crate::DenseStore`] runs
//!    are processed `BLOCK` points at a time straight from the flat
//!    coordinate buffer — no per-row slice plumbing — with the run
//!    check itself folded into each block (one offset comparison per
//!    row, verified exactly; a permuted batch silently takes the
//!    per-row path).
//!
//! All accumulations use the **same association order** as the scalar
//! metrics (`((0 + t_0) + t_1) + …`), and Rust never contracts `a*b+c`
//! into an FMA implicitly, so results are reproducible bit-for-bit
//! across the scalar, batched, and parallel paths.

use crate::DenseRow;

/// Squared Euclidean distance with the scalar accumulation order.
#[inline(always)]
pub(crate) fn l2_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut sum = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// `l2_sq` monomorphized for a compile-time dimension: the loop unrolls
/// completely and vectorizes across *points* in the batched callers.
#[inline(always)]
fn l2_sq_fixed<const D: usize>(a: &[f64], b: &[f64]) -> f64 {
    let a: &[f64; D] = a[..D].try_into().expect("dimension checked by caller");
    let b: &[f64; D] = b[..D].try_into().expect("dimension checked by caller");
    let mut sum = 0.0;
    for i in 0..D {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Manhattan distance with the scalar accumulation order.
#[inline(always)]
pub(crate) fn l1(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut sum = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        sum += (x - y).abs();
    }
    sum
}

#[inline(always)]
fn l1_fixed<const D: usize>(a: &[f64], b: &[f64]) -> f64 {
    let a: &[f64; D] = a[..D].try_into().expect("dimension checked by caller");
    let b: &[f64; D] = b[..D].try_into().expect("dimension checked by caller");
    let mut sum = 0.0;
    for i in 0..D {
        sum += (a[i] - b[i]).abs();
    }
    sum
}

/// Whether a squared distance `d_sq` **provably** fails the strict
/// improvement test `sqrt(d_sq) < incumbent` — without taking the root.
///
/// Exactness argument (all quantities IEEE-754 doubles, `y` the
/// incumbent, `t = fl(y·y)` the rounded square):
///
/// * `t` is the representable value nearest `y²`, so `y² < next_up(t)`;
/// * if `d_sq > t` then (both representable) `d_sq >= next_up(t) > y²`,
///   hence `sqrt(d_sq) > y` in real arithmetic, and correctly rounded
///   `fl(sqrt(d_sq)) >= fl(y) = y` — the scalar test `d < y` fails;
/// * if `d_sq <= t` the caller takes the root and runs the scalar
///   comparison verbatim.
///
/// Therefore eliding the root exactly when `d_sq > fl(y·y)` never
/// changes an outcome, and the batched relax stays bitwise-identical
/// to the scalar loop. (`y = INFINITY` gives `t = INFINITY`, so finite
/// `d_sq` always takes the root path, as the first GMM round must.)
#[inline(always)]
pub(crate) fn sq_beats_threshold(d_sq: f64, incumbent: f64) -> bool {
    d_sq > incumbent * incumbent
}

/// Folds one `(index, value)` candidate into a running argmax with the
/// scalar [`crate::argmax`] rule exactly: a candidate replaces iff it
/// compares strictly greater (`v > best`), so the earliest maximum
/// wins ties — and a NaN candidate (outside the [`crate::Metric`]
/// contract, but let's not diverge on it) never replaces, just as
/// `argmax` skips it.
#[inline(always)]
pub(crate) fn consider_max(best: &mut Option<(usize, f64)>, i: usize, v: f64) {
    match best {
        Some((_, bv)) => {
            if v > *bv {
                *best = Some((i, v));
            }
        }
        None => *best = Some((i, v)),
    }
}

macro_rules! dispatch_dim {
    ($dim:expr, $fixed:ident, $general:ident, $p:expr, $q:expr) => {
        match $dim {
            1 => $fixed::<1>($p, $q),
            2 => $fixed::<2>($p, $q),
            3 => $fixed::<3>($p, $q),
            4 => $fixed::<4>($p, $q),
            _ => $general($p, $q),
        }
    };
}

// ---------------------------------------------------------------------
// Per-row kernels (any `&[P]` whose points expose coordinate slices)
// ---------------------------------------------------------------------

/// Batched Euclidean distances over coordinate rows.
pub(crate) fn euclidean_many<'a>(
    p: &[f64],
    rows: impl ExactSizeIterator<Item = &'a [f64]>,
    out: &mut [f64],
) {
    assert_eq!(out.len(), rows.len(), "output length mismatch");
    let dim = p.len();
    for (o, q) in out.iter_mut().zip(rows) {
        *o = dispatch_dim!(dim, l2_sq_fixed, l2_sq, p, q).sqrt();
    }
    diversity_obs::count("kernel.distances", out.len() as u64);
}

/// Batched Euclidean GMM relaxation with root elision and fused
/// argmax — bitwise-identical to the scalar relax loop followed by a
/// scalar argmax (see [`sq_beats_threshold`]).
pub(crate) fn euclidean_relax<'a>(
    center: &[f64],
    rows: impl ExactSizeIterator<Item = &'a [f64]>,
    dists: &mut [f64],
    assignment: &mut [usize],
    cj: usize,
) -> Option<(usize, f64)> {
    assert_eq!(dists.len(), rows.len(), "dists length mismatch");
    assert_eq!(assignment.len(), rows.len(), "assignment length mismatch");
    let dim = center.len();
    let mut best: Option<(usize, f64)> = None;
    let mut elided = 0u64;
    for (i, q) in rows.enumerate() {
        let d_sq = dispatch_dim!(dim, l2_sq_fixed, l2_sq, center, q);
        if !sq_beats_threshold(d_sq, dists[i]) {
            let d = d_sq.sqrt();
            if d < dists[i] {
                dists[i] = d;
                assignment[i] = cj;
            }
        } else {
            elided += 1;
        }
        consider_max(&mut best, i, dists[i]);
    }
    if diversity_obs::enabled() {
        diversity_obs::count("kernel.distances", dists.len() as u64);
        diversity_obs::count("kernel.relax_fused_rounds", 1);
        diversity_obs::count("kernel.roots_elided", elided);
    }
    best
}

/// Early-exit Euclidean coverage check with root elision: `true` iff
/// some row is within `threshold`. Decides every comparison exactly as
/// `sqrt(l2_sq(..)) <= threshold` would.
pub(crate) fn euclidean_within<'a>(
    p: &[f64],
    rows: impl Iterator<Item = &'a [f64]>,
    threshold: f64,
) -> bool {
    let dim = p.len();
    // The scalar test is `d <= threshold` (non-strict), so eliding on
    // `d_sq > fl(thr²)` alone would be wrong: the root of a value one
    // step above fl(thr²) can still round to exactly `threshold`.
    // Guarding with the *next* representable incumbent closes the gap:
    // `d_sq > fl(next_up(thr)²)` certifies `fl(sqrt(d_sq)) >=
    // next_up(thr) > threshold` by the `sq_beats_threshold` argument.
    let guard = threshold.next_up();
    let thr_sq = guard * guard;
    for q in rows {
        let d_sq = dispatch_dim!(dim, l2_sq_fixed, l2_sq, p, q);
        if d_sq <= thr_sq && d_sq.sqrt() <= threshold {
            return true;
        }
    }
    false
}

/// Batched Manhattan distances (no root to elide; the win is the
/// unrolled, vectorizable inner loop).
pub(crate) fn manhattan_many<'a>(
    p: &[f64],
    rows: impl ExactSizeIterator<Item = &'a [f64]>,
    out: &mut [f64],
) {
    assert_eq!(out.len(), rows.len(), "output length mismatch");
    let dim = p.len();
    for (o, q) in out.iter_mut().zip(rows) {
        *o = dispatch_dim!(dim, l1_fixed, l1, p, q);
    }
    diversity_obs::count("kernel.distances", out.len() as u64);
}

/// Batched Manhattan relaxation with fused argmax.
pub(crate) fn manhattan_relax<'a>(
    center: &[f64],
    rows: impl ExactSizeIterator<Item = &'a [f64]>,
    dists: &mut [f64],
    assignment: &mut [usize],
    cj: usize,
) -> Option<(usize, f64)> {
    assert_eq!(dists.len(), rows.len(), "dists length mismatch");
    assert_eq!(assignment.len(), rows.len(), "assignment length mismatch");
    let dim = center.len();
    let mut best: Option<(usize, f64)> = None;
    for (i, q) in rows.enumerate() {
        let d = dispatch_dim!(dim, l1_fixed, l1, center, q);
        if d < dists[i] {
            dists[i] = d;
            assignment[i] = cj;
        }
        consider_max(&mut best, i, dists[i]);
    }
    if diversity_obs::enabled() {
        diversity_obs::count("kernel.distances", dists.len() as u64);
        diversity_obs::count("kernel.relax_fused_rounds", 1);
    }
    best
}

// ---------------------------------------------------------------------
// Flat-buffer kernels (contiguous `DenseStore` data)
// ---------------------------------------------------------------------

/// Lanes per block. 8 × d=3 rows = 192 bytes, three cache lines —
/// enough for the vectorizer, small enough to keep the hit-path cheap.
const BLOCK: usize = 8;

/// Batched Manhattan distances over a contiguous coordinate buffer.
pub(crate) fn manhattan_many_flat(p: &[f64], flat: &[f64], dim: usize, out: &mut [f64]) {
    assert_eq!(flat.len(), dim * out.len(), "flat buffer shape mismatch");
    debug_assert_eq!(p.len(), dim);
    for (o, q) in out.iter_mut().zip(flat.chunks_exact(dim)) {
        *o = dispatch_dim!(dim, l1_fixed, l1, p, q);
    }
}

/// Batched Manhattan relaxation over a contiguous coordinate buffer,
/// argmax fused.
pub(crate) fn manhattan_relax_flat(
    center: &[f64],
    flat: &[f64],
    dim: usize,
    dists: &mut [f64],
    assignment: &mut [usize],
    cj: usize,
) -> Option<(usize, f64)> {
    assert_eq!(flat.len(), dim * dists.len(), "flat buffer shape mismatch");
    assert_eq!(assignment.len(), dists.len(), "assignment length mismatch");
    debug_assert_eq!(center.len(), dim);
    let mut best: Option<(usize, f64)> = None;
    for (i, q) in flat.chunks_exact(dim).enumerate() {
        let d = dispatch_dim!(dim, l1_fixed, l1, center, q);
        if d < dists[i] {
            dists[i] = d;
            assignment[i] = cj;
        }
        consider_max(&mut best, i, dists[i]);
    }
    diversity_obs::count("kernel.relax_fused_rounds", 1);
    best
}

// ---------------------------------------------------------------------
// Flat-buffer Euclidean kernels (proven-contiguous runs)
// ---------------------------------------------------------------------

/// Batched Euclidean distances over a contiguous coordinate buffer:
/// monomorphized check-free blocks at the paper's small dimensions,
/// SIMD ([`crate::simd`]) above them when enabled, scalar chunks
/// otherwise. Bitwise-identical across all three paths.
pub(crate) fn euclidean_many_flat(p: &[f64], flat: &[f64], dim: usize, out: &mut [f64]) {
    assert_eq!(flat.len(), dim * out.len(), "flat buffer shape mismatch");
    debug_assert_eq!(p.len(), dim);
    match dim {
        1 => many_flat_fixed::<1>(p, flat, out),
        2 => many_flat_fixed::<2>(p, flat, out),
        3 => many_flat_fixed::<3>(p, flat, out),
        4 => many_flat_fixed::<4>(p, flat, out),
        _ => {
            if crate::simd::enabled()
                && crate::simd::try_many(&crate::simd::Batch::Flat { flat, dim }, p, out)
            {
                return;
            }
            euclidean_many(p, flat.chunks_exact(dim), out);
        }
    }
}

fn many_flat_fixed<const D: usize>(p: &[f64], flat: &[f64], out: &mut [f64]) {
    let c: &[f64; D] = p[..D].try_into().expect("dim checked by caller");
    // A plain `chunks_exact` sweep: the const-D chunk length lets LLVM
    // drop every bounds check and vectorize the sub/mul/add chain AND
    // the roots across points (`llvm.sqrt` lanes are correctly rounded,
    // so vectorizing them is bitwise-free). Any manual blocking or
    // squared-then-root staging measured *slower* here — the interleaved
    // stores and the second pass both break exactly this vectorization.
    for (o, q) in out.iter_mut().zip(flat.chunks_exact(D)) {
        let mut s = 0.0;
        for j in 0..D {
            let d = c[j] - q[j];
            s += d * d;
        }
        *o = s.sqrt();
    }
    diversity_obs::count("kernel.distances", out.len() as u64);
}

/// Batched Euclidean relaxation over a contiguous coordinate buffer
/// with root elision and fused argmax; dispatch as
/// [`euclidean_many_flat`].
pub(crate) fn euclidean_relax_flat(
    center: &[f64],
    flat: &[f64],
    dim: usize,
    dists: &mut [f64],
    assignment: &mut [usize],
    cj: usize,
) -> Option<(usize, f64)> {
    assert_eq!(flat.len(), dim * dists.len(), "flat buffer shape mismatch");
    assert_eq!(assignment.len(), dists.len(), "assignment length mismatch");
    debug_assert_eq!(center.len(), dim);
    match dim {
        1 => relax_flat_fixed::<1>(center, flat, dists, assignment, cj),
        2 => relax_flat_fixed::<2>(center, flat, dists, assignment, cj),
        3 => relax_flat_fixed::<3>(center, flat, dists, assignment, cj),
        4 => relax_flat_fixed::<4>(center, flat, dists, assignment, cj),
        _ => {
            if crate::simd::enabled() {
                if let Some(best) = crate::simd::try_relax(
                    &crate::simd::Batch::Flat { flat, dim },
                    center,
                    dists,
                    assignment,
                    cj,
                ) {
                    return best;
                }
            }
            euclidean_relax(center, flat.chunks_exact(dim), dists, assignment, cj)
        }
    }
}

fn relax_flat_fixed<const D: usize>(
    center: &[f64],
    flat: &[f64],
    dists: &mut [f64],
    assignment: &mut [usize],
    cj: usize,
) -> Option<(usize, f64)> {
    let n = dists.len();
    let c: &[f64; D] = center[..D].try_into().expect("dim checked by caller");
    let mut best: Option<(usize, f64)> = None;
    let mut i = 0;
    let mut elided_blocks = 0u64;
    let mut total_blocks = 0u64;
    while i + BLOCK <= n {
        let q = &flat[D * i..D * (i + BLOCK)];
        let mut dsq = [0.0f64; BLOCK];
        total_blocks += 1;
        for w in 0..BLOCK {
            let mut s = 0.0;
            for j in 0..D {
                let d = c[j] - q[D * w + j];
                s += d * d;
            }
            dsq[w] = s;
        }
        let dv: &[f64; BLOCK] = dists[i..i + BLOCK].try_into().expect("block in bounds");
        let mut hit = false;
        for w in 0..BLOCK {
            hit |= !sq_beats_threshold(dsq[w], dv[w]);
        }
        elided_blocks += u64::from(!hit);
        if hit {
            for w in 0..BLOCK {
                if !sq_beats_threshold(dsq[w], dists[i + w]) {
                    let d = dsq[w].sqrt();
                    if d < dists[i + w] {
                        dists[i + w] = d;
                        assignment[i + w] = cj;
                    }
                }
            }
        }
        let (bw, bv) = block_first_max(&dists[i..i + BLOCK]);
        consider_max(&mut best, i + bw, bv);
        i += BLOCK;
    }
    for ii in i..n {
        let d_sq = l2_sq_fixed::<D>(center, &flat[D * ii..D * (ii + 1)]);
        if !sq_beats_threshold(d_sq, dists[ii]) {
            let d = d_sq.sqrt();
            if d < dists[ii] {
                dists[ii] = d;
                assignment[ii] = cj;
            }
        }
        consider_max(&mut best, ii, dists[ii]);
    }
    if diversity_obs::enabled() {
        diversity_obs::count("kernel.distances", n as u64);
        // A proven run streams every block flat.
        diversity_obs::count("kernel.blocks.total", total_blocks);
        diversity_obs::count("kernel.blocks.fast", total_blocks);
        diversity_obs::count("kernel.blocks.elided", elided_blocks);
        diversity_obs::count("kernel.relax_fused_rounds", 1);
    }
    best
}

/// Early-exit Euclidean coverage check over a contiguous buffer.
pub(crate) fn euclidean_within_flat(p: &[f64], flat: &[f64], dim: usize, threshold: f64) -> bool {
    debug_assert_eq!(flat.len() % dim, 0, "flat buffer shape mismatch");
    if dim > 4 && crate::simd::enabled() {
        if let Some(hit) =
            crate::simd::try_within(&crate::simd::Batch::Flat { flat, dim }, p, threshold)
        {
            return hit;
        }
    }
    euclidean_within(p, flat.chunks_exact(dim), threshold)
}

// ---------------------------------------------------------------------
// Kernels over `&[DenseRow]`
// ---------------------------------------------------------------------
//
// A `&[DenseRow]` batch is *usually* a contiguous run of one store
// (`store.rows()` or a chunk of it). One upfront pass over the row
// descriptors (`DenseRow::contiguous_run`, a branch-light compare
// sweep) proves that exactly and hands the whole batch to the
// check-free flat kernels above — at d ≤ 4 that is what lets LLVM
// vectorize the entire sweep, roots included, and at d > 4 it is what
// unlocks the SIMD kernels. But the proof is not free: it reads every
// 32-byte descriptor, so whether to attempt it is a bandwidth
// question, decided by `scan_worthwhile` below. Re-verifying
// contiguity per 8-point block inside the loop — sharing the
// descriptor loads with the compute — was measured and rejected: the
// pointer/offset compares cost more than the d = 3 distance
// arithmetic they guard, and the blocked store pattern breaks the
// root vectorization besides. Batches that skip or fail the scan take
// the per-row kernels — correct for any row shapes.

/// Below this row count a batch's descriptors and coordinates sit in
/// cache together, the sweep is compute-bound, and the contiguity scan
/// is repaid many times over by the flat kernels' cross-point
/// vectorization (~2× at d = 3). Above it a d ≤ 4 sweep is
/// memory-bandwidth-bound: the descriptors have to be streamed either
/// way, so no layout can beat per-row parity and a second pass over
/// them is pure loss — measured at n = 100k/d = 3, the scan alone cost
/// more than the entire flat distance loop it was meant to enable.
const SCAN_WORTH_ROWS: usize = 8192;

/// Whether to attempt the upfront contiguity scan: always at `d > 4`
/// (the `O(n·d)` kernel amortizes it and it unlocks SIMD), only for
/// cache-resident batches at `d ≤ 4`.
#[inline]
fn scan_worthwhile(dim: usize, n: usize) -> bool {
    dim > 4 || n <= SCAN_WORTH_ROWS
}

/// Euclidean relax over row views: contiguity scan where worthwhile,
/// then the flat (and SIMD) kernels; per-row fallback. All paths
/// bitwise-identical.
pub(crate) fn euclidean_relax_rows(
    center: &[f64],
    rows: &[DenseRow<'_>],
    dists: &mut [f64],
    assignment: &mut [usize],
    cj: usize,
) -> Option<(usize, f64)> {
    assert_eq!(dists.len(), rows.len(), "dists length mismatch");
    assert_eq!(assignment.len(), rows.len(), "assignment length mismatch");
    if scan_worthwhile(center.len(), rows.len()) {
        if let Some((flat, dim)) = DenseRow::contiguous_run(rows) {
            debug_assert_eq!(center.len(), dim, "dimension mismatch");
            return euclidean_relax_flat(center, flat, dim, dists, assignment, cj);
        }
    }
    if center.len() > 4 && crate::simd::enabled() {
        // Mixed high-dim batch: gather row pointers for the SIMD lanes,
        // exactly as the `VecPoint` hooks do.
        let coords: Vec<&[f64]> = rows.iter().map(DenseRow::coords).collect();
        let batch = crate::simd::Batch::Ptrs {
            rows: &coords,
            dim: center.len(),
        };
        if let Some(best) = crate::simd::try_relax(&batch, center, dists, assignment, cj) {
            return best;
        }
    }
    match center.len() {
        1 => relax_rows_seq_fixed::<1>(center, rows, dists, assignment, cj),
        2 => relax_rows_seq_fixed::<2>(center, rows, dists, assignment, cj),
        3 => relax_rows_seq_fixed::<3>(center, rows, dists, assignment, cj),
        4 => relax_rows_seq_fixed::<4>(center, rows, dists, assignment, cj),
        _ => euclidean_relax(
            center,
            rows.iter().map(DenseRow::coords),
            dists,
            assignment,
            cj,
        ),
    }
}

/// Per-row fixed-D relax over `DenseRow` views, identical operation
/// order to [`euclidean_relax`]. A dedicated loop rather than the
/// iterator adapter: decoding each row descriptor is the inner-loop
/// cost here, and this shape keeps it to one slice construction per
/// row that LLVM folds into the address arithmetic.
fn relax_rows_seq_fixed<const D: usize>(
    center: &[f64],
    rows: &[DenseRow<'_>],
    dists: &mut [f64],
    assignment: &mut [usize],
    cj: usize,
) -> Option<(usize, f64)> {
    let c: &[f64; D] = center[..D].try_into().expect("dim checked by caller");
    let mut best: Option<(usize, f64)> = None;
    let mut elided = 0u64;
    for (i, r) in rows.iter().enumerate() {
        let q = r.coords();
        let mut s = 0.0;
        for j in 0..D {
            let d = c[j] - q[j];
            s += d * d;
        }
        if !sq_beats_threshold(s, dists[i]) {
            let d = s.sqrt();
            if d < dists[i] {
                dists[i] = d;
                assignment[i] = cj;
            }
        } else {
            elided += 1;
        }
        consider_max(&mut best, i, dists[i]);
    }
    if diversity_obs::enabled() {
        diversity_obs::count("kernel.distances", dists.len() as u64);
        diversity_obs::count("kernel.relax_fused_rounds", 1);
        diversity_obs::count("kernel.roots_elided", elided);
    }
    best
}

/// First-maximum lane of one block (`slice.len() == BLOCK`).
#[inline(always)]
fn block_first_max(lanes: &[f64]) -> (usize, f64) {
    let lanes: &[f64; BLOCK] = lanes.try_into().expect("block-sized slice");
    let (mut bw, mut bv) = (0usize, lanes[0]);
    for (w, &v) in lanes.iter().enumerate().skip(1) {
        if v > bv {
            bw = w;
            bv = v;
        }
    }
    (bw, bv)
}

/// Euclidean distance sweep over row views: contiguity scan where
/// worthwhile, then the flat (and SIMD) kernels; per-row fallback.
pub(crate) fn euclidean_many_rows(p: &[f64], rows: &[DenseRow<'_>], out: &mut [f64]) {
    assert_eq!(out.len(), rows.len(), "output length mismatch");
    if scan_worthwhile(p.len(), rows.len()) {
        if let Some((flat, dim)) = DenseRow::contiguous_run(rows) {
            debug_assert_eq!(p.len(), dim, "dimension mismatch");
            return euclidean_many_flat(p, flat, dim, out);
        }
    }
    if p.len() > 4 && crate::simd::enabled() {
        let coords: Vec<&[f64]> = rows.iter().map(DenseRow::coords).collect();
        let batch = crate::simd::Batch::Ptrs {
            rows: &coords,
            dim: p.len(),
        };
        if crate::simd::try_many(&batch, p, out) {
            return;
        }
    }
    match p.len() {
        1 => many_rows_seq_fixed::<1>(p, rows, out),
        2 => many_rows_seq_fixed::<2>(p, rows, out),
        3 => many_rows_seq_fixed::<3>(p, rows, out),
        4 => many_rows_seq_fixed::<4>(p, rows, out),
        _ => euclidean_many(p, rows.iter().map(DenseRow::coords), out),
    }
}

/// Per-row fixed-D distance sweep over `DenseRow` views — the `many`
/// counterpart of [`relax_rows_seq_fixed`], same rationale.
fn many_rows_seq_fixed<const D: usize>(p: &[f64], rows: &[DenseRow<'_>], out: &mut [f64]) {
    let c: &[f64; D] = p[..D].try_into().expect("dim checked by caller");
    for (o, r) in out.iter_mut().zip(rows.iter()) {
        let q = r.coords();
        let mut s = 0.0;
        for j in 0..D {
            let d = c[j] - q[j];
            s += d * d;
        }
        *o = s.sqrt();
    }
    diversity_obs::count("kernel.distances", out.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_dim_matches_general() {
        let a = [0.5, -1.25, 3.0, 0.125];
        let b = [2.0, 0.75, -0.5, 8.0];
        for d in 1..=4usize {
            let gen = l2_sq(&a[..d], &b[..d]);
            let fixed = dispatch_dim!(d, l2_sq_fixed, l2_sq, &a[..d], &b[..d]);
            assert_eq!(gen.to_bits(), fixed.to_bits());
            let gen1 = l1(&a[..d], &b[..d]);
            let fixed1 = dispatch_dim!(d, l1_fixed, l1, &a[..d], &b[..d]);
            assert_eq!(gen1.to_bits(), fixed1.to_bits());
        }
    }

    #[test]
    fn root_elision_never_skips_an_improvement() {
        // Adversarial incumbents: exact distances of nearby points, so
        // the squared comparison sits right on the rounding boundary.
        let pts: Vec<[f64; 1]> = (0..2000).map(|i| [(i as f64) * 0.1 - 100.0]).collect();
        let c = [0.37];
        for p in &pts {
            let d = l2_sq(&c, p).sqrt();
            for q in &pts {
                let d_sq = l2_sq(&c, q);
                if sq_beats_threshold(d_sq, d) {
                    assert!(d_sq.sqrt() >= d, "elided a genuine improvement");
                }
            }
        }
    }

    #[test]
    fn infinity_incumbent_takes_root_path() {
        assert!(!sq_beats_threshold(1e300, f64::INFINITY));
    }
}
