//! Cached pairwise-distance matrix.

use crate::Metric;

/// A symmetric pairwise-distance matrix over a point set, stored as a
/// packed lower triangle.
///
/// Objective evaluation (`div(S')` for the six diversity measures) and
/// the matching/GMM sequential algorithms repeatedly query the same
/// `O(k²)` distances on the final core-set; precomputing them trades
/// `O(k²)` memory for avoiding recomputation of potentially expensive
/// distances (e.g. sparse cosine).
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major lower triangle, excluding the diagonal:
    /// `data[i*(i-1)/2 + j]` holds `d(i, j)` for `j < i`.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise distances among `points` under `metric`.
    /// `O(n²)` distance evaluations.
    pub fn build<P, M: Metric<P>>(points: &[P], metric: &M) -> Self {
        let n = points.len();
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 1..n {
            for j in 0..i {
                data.push(metric.distance(&points[i], &points[j]));
            }
        }
        Self { n, data }
    }

    /// Builds a matrix from an explicit symmetric closure: `dist(i, j)`
    /// is called once per unordered pair with `j < i`.
    pub fn from_fn(n: usize, mut dist: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 1..n {
            for j in 0..i {
                data.push(dist(i, j));
            }
        }
        Self { n, data }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix covers no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between points `i` and `j` (0 when `i == j`).
    ///
    /// # Panics
    /// Panics if `i >= len()` or `j >= len()`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => self.data[i * (i - 1) / 2 + j],
            std::cmp::Ordering::Less => self.data[j * (j - 1) / 2 + i],
        }
    }

    /// The largest pairwise distance (0 for < 2 points).
    pub fn diameter(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// The smallest pairwise distance (`INFINITY` for < 2 points).
    pub fn min_pairwise(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Euclidean, VecPoint};

    fn pts(xs: &[f64]) -> Vec<VecPoint> {
        xs.iter().map(|&x| VecPoint::from([x])).collect()
    }

    #[test]
    fn symmetric_lookup() {
        let m = DistanceMatrix::build(&pts(&[0.0, 1.0, 3.0]), &Euclidean);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(2, 1), 2.0);
    }

    #[test]
    fn diagonal_is_zero() {
        let m = DistanceMatrix::build(&pts(&[5.0, 9.0]), &Euclidean);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn diameter_and_min() {
        let m = DistanceMatrix::build(&pts(&[0.0, 1.0, 10.0]), &Euclidean);
        assert_eq!(m.diameter(), 10.0);
        assert_eq!(m.min_pairwise(), 1.0);
    }

    #[test]
    fn empty_and_singleton() {
        let m0 = DistanceMatrix::build(&pts(&[]), &Euclidean);
        assert!(m0.is_empty());
        assert_eq!(m0.diameter(), 0.0);
        let m1 = DistanceMatrix::build(&pts(&[1.0]), &Euclidean);
        assert_eq!(m1.len(), 1);
        assert_eq!(m1.min_pairwise(), f64::INFINITY);
    }

    #[test]
    fn from_fn_matches_build() {
        let points = pts(&[0.0, 2.0, 5.0, 6.0]);
        let a = DistanceMatrix::build(&points, &Euclidean);
        let b = DistanceMatrix::from_fn(points.len(), |i, j| {
            Euclidean.distance(&points[i], &points[j])
        });
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }
}
