//! Cached pairwise-distance matrix.

use crate::Metric;

/// A symmetric pairwise-distance matrix over a point set, stored as a
/// packed lower triangle.
///
/// Objective evaluation (`div(S')` for the six diversity measures) and
/// the matching/GMM sequential algorithms repeatedly query the same
/// `O(k²)` distances on the final core-set; precomputing them trades
/// `O(k²)` memory for avoiding recomputation of potentially expensive
/// distances (e.g. sparse cosine).
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major lower triangle, excluding the diagonal:
    /// `data[i*(i-1)/2 + j]` holds `d(i, j)` for `j < i`.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise distances among `points` under `metric`.
    /// `O(n²)` distance evaluations, parallelized over contiguous row
    /// blocks when the pair count clears [`crate::par::PAR_MIN_WORK`]
    /// (each block fills a disjoint span of the packed triangle, so the
    /// result is identical to the sequential fill regardless of thread
    /// count).
    pub fn build<P: Sync, M: Metric<P>>(points: &[P], metric: &M) -> Self {
        let pairs = points.len() * points.len().saturating_sub(1) / 2;
        Self::build_with_threads(points, metric, crate::par::auto_threads(pairs))
    }

    /// [`DistanceMatrix::build`] with an explicit thread count
    /// (`threads <= 1` runs sequentially). Output is identical for
    /// every thread count; exposed for the determinism tests and the
    /// kernel benches.
    pub fn build_with_threads<P: Sync, M: Metric<P>>(
        points: &[P],
        metric: &M,
        threads: usize,
    ) -> Self {
        let n = points.len();
        let pairs = n * n.saturating_sub(1) / 2;
        let mut data = vec![0.0f64; pairs];
        if threads <= 1 {
            Self::fill_rows(points, metric, 1, &mut data);
        } else {
            // Row i holds i entries: balance blocks by entry count, not
            // row count, then hand each block its span of `data`.
            let blocks = Self::balanced_row_blocks(n, threads);
            let mut tasks = Vec::with_capacity(blocks.len());
            let mut rest: &mut [f64] = &mut data;
            for rows in blocks {
                let span = span_len(&rows);
                let (chunk, tail) = rest.split_at_mut(span);
                rest = tail;
                tasks.push(move || Self::fill_rows(&points[..rows.end], metric, rows.start, chunk));
            }
            crate::par::run_tasks(tasks);
        }
        Self { n, data }
    }

    /// Fills `out` with the packed-triangle entries of rows
    /// `first_row..` of `points` (row `i` contributes `d(i, j)` for all
    /// `j < i`), stopping when `out` is full.
    fn fill_rows<P, M: Metric<P>>(points: &[P], metric: &M, first_row: usize, out: &mut [f64]) {
        let mut cursor = 0usize;
        for i in first_row..points.len() {
            for j in 0..i {
                if cursor == out.len() {
                    return;
                }
                out[cursor] = metric.distance(&points[i], &points[j]);
                cursor += 1;
            }
        }
        debug_assert_eq!(cursor, out.len(), "row block under-filled");
    }

    /// Partitions rows `1..n` into at most `parts` contiguous blocks of
    /// near-equal total entry count (row `i` costs `i` entries).
    fn balanced_row_blocks(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
        let total = n * n.saturating_sub(1) / 2;
        if total == 0 {
            return Vec::new();
        }
        let target = total.div_ceil(parts);
        let mut out = Vec::with_capacity(parts);
        let mut start = 1usize;
        let mut acc = 0usize;
        for i in 1..n {
            acc += i;
            if acc >= target || i == n - 1 {
                out.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        out
    }

    /// Builds a matrix from an explicit symmetric closure: `dist(i, j)`
    /// is called once per unordered pair with `j < i`.
    pub fn from_fn(n: usize, mut dist: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 1..n {
            for j in 0..i {
                data.push(dist(i, j));
            }
        }
        Self { n, data }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix covers no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between points `i` and `j` (0 when `i == j`).
    ///
    /// # Panics
    /// Panics if `i >= len()` or `j >= len()`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => self.data[i * (i - 1) / 2 + j],
            std::cmp::Ordering::Less => self.data[j * (j - 1) / 2 + i],
        }
    }

    /// The largest pairwise distance (0 for < 2 points).
    pub fn diameter(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// The smallest pairwise distance (`INFINITY` for < 2 points).
    pub fn min_pairwise(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Number of packed-triangle entries contributed by rows `r.start..r.end`
/// (row `i` contributes `i` entries).
fn span_len(r: &std::ops::Range<usize>) -> usize {
    let tri = |x: usize| x * x.saturating_sub(1) / 2;
    tri(r.end) - tri(r.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Euclidean, VecPoint};

    fn pts(xs: &[f64]) -> Vec<VecPoint> {
        xs.iter().map(|&x| VecPoint::from([x])).collect()
    }

    #[test]
    fn symmetric_lookup() {
        let m = DistanceMatrix::build(&pts(&[0.0, 1.0, 3.0]), &Euclidean);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(2, 1), 2.0);
    }

    #[test]
    fn diagonal_is_zero() {
        let m = DistanceMatrix::build(&pts(&[5.0, 9.0]), &Euclidean);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn diameter_and_min() {
        let m = DistanceMatrix::build(&pts(&[0.0, 1.0, 10.0]), &Euclidean);
        assert_eq!(m.diameter(), 10.0);
        assert_eq!(m.min_pairwise(), 1.0);
    }

    #[test]
    fn empty_and_singleton() {
        let m0 = DistanceMatrix::build(&pts(&[]), &Euclidean);
        assert!(m0.is_empty());
        assert_eq!(m0.diameter(), 0.0);
        let m1 = DistanceMatrix::build(&pts(&[1.0]), &Euclidean);
        assert_eq!(m1.len(), 1);
        assert_eq!(m1.min_pairwise(), f64::INFINITY);
    }

    #[test]
    fn parallel_build_identical_to_sequential() {
        let points: Vec<VecPoint> = (0..97)
            .map(|i| VecPoint::from([(i as f64) * 0.37 % 5.0, (i as f64) * 0.61 % 3.0]))
            .collect();
        let seq = DistanceMatrix::build_with_threads(&points, &Euclidean, 1);
        for threads in [2usize, 3, 8, 200] {
            let par = DistanceMatrix::build_with_threads(&points, &Euclidean, threads);
            assert_eq!(seq.data.len(), par.data.len());
            for (a, b) in seq.data.iter().zip(par.data.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn from_fn_matches_build() {
        let points = pts(&[0.0, 2.0, 5.0, 6.0]);
        let a = DistanceMatrix::build(&points, &Euclidean);
        let b = DistanceMatrix::from_fn(points.len(), |i, j| {
            Euclidean.distance(&points[i], &points[j])
        });
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }
}
