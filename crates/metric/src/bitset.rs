//! Fixed-universe bit sets, the point type for Jaccard and Hamming.

use serde::{Deserialize, Serialize};

/// A subset of a fixed universe `{0, .., universe-1}`, stored as packed
/// 64-bit blocks.
///
/// Used with [`crate::Jaccard`] (database/query dissimilarity, which the
/// paper cites as a practically important distance) and
/// [`crate::Hamming`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSetPoint {
    universe: usize,
    blocks: Vec<u64>,
}

impl BitSetPoint {
    /// The empty subset of a `universe`-element ground set.
    pub fn new(universe: usize) -> Self {
        Self {
            universe,
            blocks: vec![0; universe.div_ceil(64)],
        }
    }

    /// Builds a set from element indices.
    ///
    /// # Panics
    /// Panics if any element is `>= universe`.
    pub fn from_elements(universe: usize, elements: &[usize]) -> Self {
        let mut s = Self::new(universe);
        for &e in elements {
            s.insert(e);
        }
        s
    }

    /// Size of the ground set.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Adds `element` to the set.
    ///
    /// # Panics
    /// Panics if `element >= universe`.
    pub fn insert(&mut self, element: usize) {
        assert!(element < self.universe, "element outside universe");
        self.blocks[element / 64] |= 1u64 << (element % 64);
    }

    /// Membership test.
    pub fn contains(&self, element: usize) -> bool {
        element < self.universe && self.blocks[element / 64] & (1u64 << (element % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// `|self ∩ other|`.
    pub fn intersection_size(&self, other: &Self) -> usize {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|`.
    pub fn union_size(&self, other: &Self) -> usize {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum::<usize>()
            + self.tail_size(other)
    }

    /// Number of positions where the two sets differ (symmetric
    /// difference size).
    pub fn symmetric_difference_size(&self, other: &Self) -> usize {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum::<usize>()
            + self.tail_size(other)
    }

    // Handles universes of different sizes gracefully: the shorter
    // vector is implicitly zero-extended.
    fn tail_size(&self, other: &Self) -> usize {
        let (longer, n) = if self.blocks.len() >= other.blocks.len() {
            (&self.blocks, other.blocks.len())
        } else {
            (&other.blocks, self.blocks.len())
        };
        longer[n..].iter().map(|b| b.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSetPoint::new(100);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn set_operations() {
        let a = BitSetPoint::from_elements(128, &[1, 2, 3, 70]);
        let b = BitSetPoint::from_elements(128, &[2, 3, 4, 71]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 6);
        assert_eq!(a.symmetric_difference_size(&b), 4);
    }

    #[test]
    fn empty_set() {
        let e = BitSetPoint::new(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn different_universe_sizes_zero_extend() {
        let a = BitSetPoint::from_elements(64, &[0]);
        let b = BitSetPoint::from_elements(200, &[0, 150]);
        assert_eq!(a.intersection_size(&b), 1);
        assert_eq!(a.union_size(&b), 2);
        assert_eq!(a.symmetric_difference_size(&b), 1);
    }

    #[test]
    #[should_panic]
    fn insert_outside_universe_panics() {
        let mut s = BitSetPoint::new(10);
        s.insert(10);
    }
}
