//! Metric-space substrate for the diversity-maximization stack.
//!
//! The paper ("MapReduce and Streaming Algorithms for Diversity Maximization
//! in Metric Spaces of Bounded Doubling Dimension", Ceccarello et al.,
//! PVLDB 2017) states all of its results for an abstract metric space
//! `(D, d)`; its experiments use three concrete instantiations:
//!
//! * low-dimensional Euclidean space (`R^2`, `R^3`) for the synthetic
//!   workloads,
//! * the *cosine distance* `arccos(u·v / (‖u‖‖v‖))` on 5,000-dimensional
//!   sparse word-count vectors (the musiXmatch dataset), and
//! * it motivates applicability to Jaccard-style dissimilarities.
//!
//! This crate provides those metrics (and several more), the point types
//! they operate on, a cached distance matrix for `O(k^2)` objective
//! evaluation, and an empirical doubling-dimension estimator.
//!
//! # Design
//!
//! Distances are computed by zero-sized *metric structs* implementing
//! [`Metric<P>`], rather than by methods on the point types. This lets a
//! single point type (say [`VecPoint`]) carry several metrics (Euclidean,
//! Manhattan, Chebyshev, ...) without newtype gymnastics, and lets every
//! algorithm in the stack be generic over `(P, M: Metric<P>)`.
//!
//! All metrics here satisfy the metric axioms (identity of indiscernibles,
//! symmetry, triangle inequality); this is enforced by property tests in
//! `tests/axioms.rs`.
//!
//! # Example
//!
//! ```
//! use metric::{Euclidean, Metric, VecPoint};
//!
//! let a = VecPoint::new(vec![0.0, 0.0]);
//! let b = VecPoint::new(vec![3.0, 4.0]);
//! assert_eq!(Euclidean.distance(&a, &b), 5.0);
//! ```

// Every `unsafe` block in this crate (all of them in `simd.rs`) must
// be explicit and carry its own `// SAFETY:` justification.
#![deny(unsafe_op_in_unsafe_fn)]

mod bitset;
mod chebyshev;
mod colmajor;
mod cosine;
mod dense;
mod discrete;
pub mod doubling;
mod euclidean;
mod hamming;
mod jaccard;
mod kernels;
mod levenshtein;
mod lp;
mod manhattan;
mod matrix;
pub mod par;
mod project;
pub mod simd;
mod sparse;
mod store;
mod traits;

pub use bitset::BitSetPoint;
pub use chebyshev::Chebyshev;
pub use colmajor::{ColRow, DenseStoreColMajor};
pub use cosine::CosineDistance;
pub use dense::VecPoint;
pub use discrete::Discrete;
pub use doubling::{estimate_doubling_dimension, DoublingEstimate};
pub use euclidean::Euclidean;
pub use hamming::Hamming;
pub use jaccard::Jaccard;
pub use levenshtein::Levenshtein;
pub use lp::Lp;
pub use manhattan::Manhattan;
pub use matrix::DistanceMatrix;
pub use project::{JlKind, JlProjection};
pub use sparse::SparseVector;
pub use store::{DenseRow, DenseStore};
pub use traits::Metric;

/// Compares two `f64` distances, treating them as totally ordered.
///
/// Distances produced by the metrics in this crate are never NaN, but
/// `f64: Ord` does not hold in Rust; algorithms use this helper (a thin
/// wrapper over [`f64::total_cmp`]) when they need to `max_by`/`sort_by`
/// distances.
#[inline]
pub fn cmp_dist(a: &f64, b: &f64) -> std::cmp::Ordering {
    a.total_cmp(b)
}

/// Returns the index of the maximum value in `values` under [`cmp_dist`],
/// or `None` if `values` is empty. Ties resolve to the smallest index,
/// which keeps the farthest-point traversals in `diversity-core`
/// deterministic.
pub fn argmax(values: &[f64]) -> Option<usize> {
    let (first, rest) = values.split_first()?;
    let mut best = (0usize, *first);
    for (i, &v) in rest.iter().enumerate() {
        if v > best.1 {
            best = (i + 1, v);
        }
    }
    Some(best.0)
}

/// Returns `(index, value)` of the minimum entry, or `None` if
/// `values` is empty. A candidate replaces iff strictly smaller
/// (`v < best`), so ties resolve to the smallest index — the same
/// first-minimum rule the scalar nearest-center scans use (which also
/// means a NaN entry never wins), so batched argmin swaps stay
/// behaviour-identical.
pub fn argmin(values: &[f64]) -> Option<(usize, f64)> {
    let (first, rest) = values.split_first()?;
    let mut best = (0usize, *first);
    for (i, &v) in rest.iter().enumerate() {
        if v < best.1 {
            best = (i + 1, v);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_empty_is_none() {
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_singleton() {
        assert_eq!(argmax(&[42.0]), Some(0));
    }

    #[test]
    fn argmax_ties_resolve_to_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
    }

    #[test]
    fn argmax_handles_negative_values() {
        assert_eq!(argmax(&[-5.0, -1.0, -3.0]), Some(1));
    }

    #[test]
    fn cmp_dist_orders_normally() {
        assert_eq!(cmp_dist(&1.0, &2.0), std::cmp::Ordering::Less);
        assert_eq!(cmp_dist(&2.0, &1.0), std::cmp::Ordering::Greater);
        assert_eq!(cmp_dist(&1.0, &1.0), std::cmp::Ordering::Equal);
    }
}
