//! The Manhattan (`L1`, rectilinear) metric.

use crate::{Metric, VecPoint};

/// Manhattan distance `d(u, v) = Σ |uᵢ − vᵢ|`.
///
/// The paper cites Fekete–Meijer's `(1+ε)`-approximation for
/// remote-clique under *rectilinear* distances; this metric lets the
/// examples exercise that setting. `(R^d, L1)` has doubling dimension
/// `O(d)` like its Euclidean sibling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric<VecPoint> for Manhattan {
    #[inline]
    fn distance(&self, a: &VecPoint, b: &VecPoint) -> f64 {
        self.distance(a.coords(), b.coords())
    }
}

impl Metric<[f64]> for Manhattan {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxicab_distance() {
        let a = VecPoint::from([0.0, 0.0]);
        let b = VecPoint::from([3.0, 4.0]);
        assert_eq!(Manhattan.distance(&a, &b), 7.0);
    }

    #[test]
    fn dominates_euclidean() {
        use crate::Euclidean;
        let a = VecPoint::from([1.0, -2.0, 0.5]);
        let b = VecPoint::from([-1.0, 3.0, 2.0]);
        assert!(Manhattan.distance(&a, &b) >= Euclidean.distance(&a, &b));
    }

    #[test]
    fn identity() {
        let a = VecPoint::from([9.0, 9.0]);
        assert_eq!(Manhattan.distance(&a, &a), 0.0);
    }
}
