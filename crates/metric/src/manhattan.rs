//! The Manhattan (`L1`, rectilinear) metric.

use crate::kernels;
use crate::{DenseRow, Metric, VecPoint};

/// Manhattan distance `d(u, v) = Σ |uᵢ − vᵢ|`.
///
/// The paper cites Fekete–Meijer's `(1+ε)`-approximation for
/// remote-clique under *rectilinear* distances; this metric lets the
/// examples exercise that setting. `(R^d, L1)` has doubling dimension
/// `O(d)` like its Euclidean sibling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Manhattan;

/// Batch hooks use the dimension-specialized `kernels::manhattan_*`
/// loops (no root to elide — the win is the unrolled inner loop and
/// cache-linear scans over [`crate::DenseStore`] rows); bitwise
/// equality with the scalar loop is enforced by
/// `tests/batch_equivalence.rs`.
impl Metric<VecPoint> for Manhattan {
    #[inline]
    fn distance(&self, a: &VecPoint, b: &VecPoint) -> f64 {
        self.distance(a.coords(), b.coords())
    }

    fn distance_many(&self, p: &VecPoint, others: &[VecPoint], out: &mut [f64]) {
        kernels::manhattan_many(p.coords(), others.iter().map(VecPoint::coords), out);
    }

    fn relax(
        &self,
        center: &VecPoint,
        points: &[VecPoint],
        dists: &mut [f64],
        assignment: &mut [usize],
        cj: usize,
    ) -> Option<(usize, f64)> {
        kernels::manhattan_relax(
            center.coords(),
            points.iter().map(VecPoint::coords),
            dists,
            assignment,
            cj,
        )
    }
}

impl Metric<DenseRow<'_>> for Manhattan {
    #[inline]
    fn distance(&self, a: &DenseRow<'_>, b: &DenseRow<'_>) -> f64 {
        self.distance(a.coords(), b.coords())
    }

    fn distance_many(&self, p: &DenseRow<'_>, others: &[DenseRow<'_>], out: &mut [f64]) {
        assert_eq!(out.len(), others.len(), "output length mismatch");
        match DenseRow::contiguous_run(others) {
            Some((flat, dim)) => kernels::manhattan_many_flat(p.coords(), flat, dim, out),
            None => kernels::manhattan_many(p.coords(), others.iter().map(DenseRow::coords), out),
        }
    }

    fn relax(
        &self,
        center: &DenseRow<'_>,
        points: &[DenseRow<'_>],
        dists: &mut [f64],
        assignment: &mut [usize],
        cj: usize,
    ) -> Option<(usize, f64)> {
        assert_eq!(dists.len(), points.len(), "dists length mismatch");
        match DenseRow::contiguous_run(points) {
            Some((flat, dim)) => {
                kernels::manhattan_relax_flat(center.coords(), flat, dim, dists, assignment, cj)
            }
            None => kernels::manhattan_relax(
                center.coords(),
                points.iter().map(DenseRow::coords),
                dists,
                assignment,
                cj,
            ),
        }
    }
}

impl Metric<[f64]> for Manhattan {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        kernels::l1(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxicab_distance() {
        let a = VecPoint::from([0.0, 0.0]);
        let b = VecPoint::from([3.0, 4.0]);
        assert_eq!(Manhattan.distance(&a, &b), 7.0);
    }

    #[test]
    fn dominates_euclidean() {
        use crate::Euclidean;
        let a = VecPoint::from([1.0, -2.0, 0.5]);
        let b = VecPoint::from([-1.0, 3.0, 2.0]);
        assert!(Manhattan.distance(&a, &b) >= Euclidean.distance(&a, &b));
    }

    #[test]
    fn identity() {
        let a = VecPoint::from([9.0, 9.0]);
        assert_eq!(Manhattan.distance(&a, &a), 0.0);
    }
}
