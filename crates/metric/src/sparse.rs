//! Sparse vectors for high-dimensional bag-of-words data.

use serde::{Deserialize, Serialize};

/// A sparse vector: sorted `(dimension, value)` pairs plus a cached
/// Euclidean norm.
///
/// This is the representation of the musiXmatch-style workloads: each
/// song is the word-count vector of the 5,000 most frequent words, with
/// typically only a few dozen nonzero entries. Caching `‖v‖₂` at
/// construction makes the cosine distance a single sparse dot product,
/// which matters for the streaming-throughput experiment (Figure 3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    /// Nonzero entries, strictly sorted by dimension id.
    entries: Vec<(u32, f64)>,
    /// Cached `‖v‖₂`.
    norm: f64,
}

impl SparseVector {
    /// Builds a sparse vector from `(dimension, value)` pairs.
    ///
    /// Pairs are sorted, zero values dropped, and duplicate dimensions
    /// summed. Values must be finite.
    ///
    /// # Panics
    /// Panics if any value is non-finite.
    pub fn new(mut entries: Vec<(u32, f64)>) -> Self {
        assert!(
            entries.iter().all(|(_, v)| v.is_finite()),
            "SparseVector values must be finite"
        );
        entries.sort_unstable_by_key(|&(d, _)| d);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
        for (d, v) in entries {
            match merged.last_mut() {
                Some((ld, lv)) if *ld == d => *lv += v,
                _ => merged.push((d, v)),
            }
        }
        merged.retain(|&(_, v)| v != 0.0);
        let norm = merged.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
        Self {
            entries: merged,
            norm,
        }
    }

    /// The all-zero vector.
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
            norm: 0.0,
        }
    }

    /// Number of nonzero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the vector has no nonzero entries.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// The sorted nonzero entries.
    #[inline]
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Sparse dot product via sorted-merge; `O(nnz(a) + nnz(b))`.
    pub fn dot(&self, other: &Self) -> f64 {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.entries, &other.entries);
        let mut sum = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Cosine similarity in `[-1, 1]`; zero vectors are treated as
    /// orthogonal to everything (similarity 0) and identical to
    /// themselves (similarity 1).
    pub fn cosine_similarity(&self, other: &Self) -> f64 {
        if self.is_zero() && other.is_zero() {
            return 1.0;
        }
        if self.is_zero() || other.is_zero() {
            return 0.0;
        }
        // Clamp: accumulated rounding can push u·v/(‖u‖‖v‖) epsilon
        // outside [-1, 1], which would make arccos return NaN.
        (self.dot(other) / (self.norm * other.norm)).clamp(-1.0, 1.0)
    }

    /// Approximate number of bytes this vector occupies (for memory
    /// accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.len() * std::mem::size_of::<(u32, f64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_merges_and_drops_zeros() {
        let v = SparseVector::new(vec![(5, 2.0), (1, 1.0), (5, 3.0), (7, 0.0)]);
        assert_eq!(v.entries(), &[(1, 1.0), (5, 5.0)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn norm_is_cached_correctly() {
        let v = SparseVector::new(vec![(0, 3.0), (9, 4.0)]);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn dot_product_of_disjoint_supports_is_zero() {
        let a = SparseVector::new(vec![(0, 1.0), (2, 1.0)]);
        let b = SparseVector::new(vec![(1, 1.0), (3, 1.0)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn dot_product_overlapping() {
        let a = SparseVector::new(vec![(0, 2.0), (2, 3.0)]);
        let b = SparseVector::new(vec![(2, 4.0), (5, 1.0)]);
        assert_eq!(a.dot(&b), 12.0);
    }

    #[test]
    fn cosine_similarity_of_parallel_vectors_is_one() {
        let a = SparseVector::new(vec![(0, 1.0), (1, 2.0)]);
        let b = SparseVector::new(vec![(0, 2.0), (1, 4.0)]);
        assert!((a.cosine_similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_conventions() {
        let z = SparseVector::empty();
        let v = SparseVector::new(vec![(0, 1.0)]);
        assert_eq!(z.cosine_similarity(&z), 1.0);
        assert_eq!(z.cosine_similarity(&v), 0.0);
        assert!(z.is_zero());
    }

    #[test]
    fn merging_to_zero_drops_entry() {
        let v = SparseVector::new(vec![(3, 1.0), (3, -1.0)]);
        assert!(v.is_zero());
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        let _ = SparseVector::new(vec![(0, f64::NAN)]);
    }
}
