//! Angular (cosine) distance.

use crate::{Metric, SparseVector, VecPoint};

/// The angular distance `d(u, v) = arccos(u·v / (‖u‖‖v‖))`.
///
/// This is exactly the distance the paper uses on the musiXmatch dataset
/// (Section 7): unlike the popular `1 − cos` "cosine dissimilarity", the
/// arccos form is a true metric (it is the geodesic distance on the unit
/// sphere after normalizing), so the core-set guarantees apply.
///
/// Distances lie in `[0, π]`. Zero vectors are treated as orthogonal to
/// every other vector (distance `π/2`) and at distance 0 from themselves;
/// the dataset generators filter zero vectors out, matching the paper's
/// own filtering of songs with fewer than 10 frequent words.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CosineDistance;

impl Metric<SparseVector> for CosineDistance {
    #[inline]
    fn distance(&self, a: &SparseVector, b: &SparseVector) -> f64 {
        a.cosine_similarity(b).acos()
    }
}

impl Metric<VecPoint> for CosineDistance {
    fn distance(&self, a: &VecPoint, b: &VecPoint) -> f64 {
        let (na, nb) = (a.norm(), b.norm());
        if na == 0.0 && nb == 0.0 {
            return 0.0;
        }
        if na == 0.0 || nb == 0.0 {
            return std::f64::consts::FRAC_PI_2;
        }
        let dot: f64 = a
            .coords()
            .iter()
            .zip(b.coords().iter())
            .map(|(x, y)| x * y)
            .sum();
        (dot / (na * nb)).clamp(-1.0, 1.0).acos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identical_direction_is_zero() {
        let a = SparseVector::new(vec![(0, 1.0), (4, 2.0)]);
        let b = SparseVector::new(vec![(0, 3.0), (4, 6.0)]);
        assert!(CosineDistance.distance(&a, &b) < 1e-7);
    }

    #[test]
    fn orthogonal_is_half_pi() {
        let a = SparseVector::new(vec![(0, 1.0)]);
        let b = SparseVector::new(vec![(1, 1.0)]);
        assert!((CosineDistance.distance(&a, &b) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn opposite_is_pi() {
        let a = VecPoint::from([1.0, 0.0]);
        let b = VecPoint::from([-1.0, 0.0]);
        assert!((CosineDistance.distance(&a, &b) - PI).abs() < 1e-12);
    }

    #[test]
    fn dense_and_sparse_agree() {
        let ds = CosineDistance.distance(
            &SparseVector::new(vec![(0, 1.0), (1, 2.0)]),
            &SparseVector::new(vec![(0, 2.0), (1, 1.0)]),
        );
        let dd = CosineDistance.distance(&VecPoint::from([1.0, 2.0]), &VecPoint::from([2.0, 1.0]));
        assert!((ds - dd).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_conventions() {
        let z = SparseVector::empty();
        let v = SparseVector::new(vec![(0, 1.0)]);
        assert_eq!(CosineDistance.distance(&z, &z), 0.0);
        assert!((CosineDistance.distance(&z, &v) - FRAC_PI_2).abs() < 1e-12);
    }
}
