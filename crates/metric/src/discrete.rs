//! The discrete (0/1) metric.

use crate::Metric;

/// The discrete metric: `d(a, b) = 0` if `a == b`, else `1`.
///
/// Useful as a degenerate test fixture: its doubling dimension is
/// `log₂(n)` (every ball of radius 1 is the whole space, every ball of
/// radius 1/2 a single point), i.e. *unbounded*, which exercises the
/// algorithms outside their analyzed regime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Discrete;

impl<P: PartialEq + Send + Sync> Metric<P> for Discrete {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_iff_equal() {
        assert_eq!(Discrete.distance(&1u32, &1u32), 0.0);
        assert_eq!(Discrete.distance(&1u32, &2u32), 1.0);
    }

    #[test]
    fn works_on_strings() {
        assert_eq!(Discrete.distance(&"a".to_string(), &"b".to_string()), 1.0);
    }
}
