//! The Euclidean (`L2`) metric.

use crate::kernels;
use crate::{DenseRow, Metric, VecPoint};

/// Euclidean distance `d(u, v) = ‖u − v‖₂`.
///
/// Euclidean space of constant dimension `D` has doubling dimension
/// `O(D)` (Gupta–Krauthgamer–Lee, FOCS'03), which is the regime where the
/// paper's `(1+ε)` core-set bounds apply.
///
/// Note that *squared* Euclidean distance is **not** a metric (it violates
/// the triangle inequality: on the line, `d(0,2)² = 4 > d(0,1)² + d(1,2)² =
/// 2`), so no such metric is provided: using it would silently void every
/// approximation guarantee in the stack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Euclidean;

/// The batch hooks are implemented once over coordinate rows
/// (`kernels::euclidean_*`) and shared by the [`VecPoint`] and
/// [`DenseRow`] impls; they are bitwise-identical to the scalar
/// `distance` loop (see the `kernels` module docs for the argument,
/// and `tests/batch_equivalence.rs` for the enforcement).
impl Metric<VecPoint> for Euclidean {
    #[inline]
    fn distance(&self, a: &VecPoint, b: &VecPoint) -> f64 {
        self.distance(a.coords(), b.coords())
    }

    fn distance_many(&self, p: &VecPoint, others: &[VecPoint], out: &mut [f64]) {
        let dim = p.dim();
        if dim > 4 && crate::simd::enabled() {
            // Gathering four row pointers per vector still beats the
            // scalar add-latency chain at high dim; the O(n) pointer
            // collection is noise next to the O(n·d) kernel.
            let rows: Vec<&[f64]> = others.iter().map(VecPoint::coords).collect();
            if crate::simd::try_many(
                &crate::simd::Batch::Ptrs { rows: &rows, dim },
                p.coords(),
                out,
            ) {
                return;
            }
        }
        kernels::euclidean_many(p.coords(), others.iter().map(VecPoint::coords), out);
    }

    fn relax(
        &self,
        center: &VecPoint,
        points: &[VecPoint],
        dists: &mut [f64],
        assignment: &mut [usize],
        cj: usize,
    ) -> Option<(usize, f64)> {
        let dim = center.dim();
        if dim > 4 && crate::simd::enabled() {
            let rows: Vec<&[f64]> = points.iter().map(VecPoint::coords).collect();
            if let Some(best) = crate::simd::try_relax(
                &crate::simd::Batch::Ptrs { rows: &rows, dim },
                center.coords(),
                dists,
                assignment,
                cj,
            ) {
                return best;
            }
        }
        kernels::euclidean_relax(
            center.coords(),
            points.iter().map(VecPoint::coords),
            dists,
            assignment,
            cj,
        )
    }

    fn distance_to_set_within(&self, p: &VecPoint, set: &[VecPoint], threshold: f64) -> bool {
        kernels::euclidean_within(p.coords(), set.iter().map(VecPoint::coords), threshold)
    }
}

/// The `DenseRow` hooks use the fused-verification kernels: each
/// 8-point block checks whether its rows are consecutive rows of one
/// flat buffer (exact — a permuted batch can never alias a run) and
/// streams the flat coordinates cache-linearly when they are, falling
/// back to per-row loads when they aren't. Both paths are
/// bitwise-identical to the scalar loop.
impl Metric<DenseRow<'_>> for Euclidean {
    #[inline]
    fn distance(&self, a: &DenseRow<'_>, b: &DenseRow<'_>) -> f64 {
        self.distance(a.coords(), b.coords())
    }

    fn distance_many(&self, p: &DenseRow<'_>, others: &[DenseRow<'_>], out: &mut [f64]) {
        kernels::euclidean_many_rows(p.coords(), others, out);
    }

    fn relax(
        &self,
        center: &DenseRow<'_>,
        points: &[DenseRow<'_>],
        dists: &mut [f64],
        assignment: &mut [usize],
        cj: usize,
    ) -> Option<(usize, f64)> {
        kernels::euclidean_relax_rows(center.coords(), points, dists, assignment, cj)
    }

    fn distance_to_set_within(
        &self,
        p: &DenseRow<'_>,
        set: &[DenseRow<'_>],
        threshold: f64,
    ) -> bool {
        // Only pay the O(n) run check when a SIMD sweep can cash it
        // in; at low dim the early-exit per-row scan is the right
        // shape (the first in-range row ends it).
        if p.dim() > 4 && crate::simd::enabled() {
            if let Some((flat, dim)) = DenseRow::contiguous_run(set) {
                debug_assert_eq!(p.dim(), dim, "dimension mismatch");
                return kernels::euclidean_within_flat(p.coords(), flat, dim, threshold);
            }
        }
        kernels::euclidean_within(p.coords(), set.iter().map(DenseRow::coords), threshold)
    }
}

impl Metric<[f64]> for Euclidean {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        crate::kernels::l2_sq(a, b).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pythagorean_triple() {
        let a = VecPoint::from([0.0, 0.0]);
        let b = VecPoint::from([3.0, 4.0]);
        assert_eq!(Euclidean.distance(&a, &b), 5.0);
    }

    #[test]
    fn identity() {
        let a = VecPoint::from([1.5, -2.5, 3.0]);
        assert_eq!(Euclidean.distance(&a, &a), 0.0);
    }

    #[test]
    fn works_on_slices() {
        assert_eq!(Euclidean.distance(&[0.0][..], &[7.0][..]), 7.0);
    }

    #[test]
    fn one_dimension_is_absolute_difference() {
        let a = VecPoint::from([-2.0]);
        let b = VecPoint::from([5.0]);
        assert_eq!(Euclidean.distance(&a, &b), 7.0);
    }
}
