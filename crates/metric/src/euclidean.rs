//! The Euclidean (`L2`) metric.

use crate::{Metric, VecPoint};

/// Euclidean distance `d(u, v) = ‖u − v‖₂`.
///
/// Euclidean space of constant dimension `D` has doubling dimension
/// `O(D)` (Gupta–Krauthgamer–Lee, FOCS'03), which is the regime where the
/// paper's `(1+ε)` core-set bounds apply.
///
/// Note that *squared* Euclidean distance is **not** a metric (it violates
/// the triangle inequality: on the line, `d(0,2)² = 4 > d(0,1)² + d(1,2)² =
/// 2`), so no such metric is provided: using it would silently void every
/// approximation guarantee in the stack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric<VecPoint> for Euclidean {
    #[inline]
    fn distance(&self, a: &VecPoint, b: &VecPoint) -> f64 {
        self.distance(a.coords(), b.coords())
    }
}

impl Metric<[f64]> for Euclidean {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        let mut sum = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            let d = x - y;
            sum += d * d;
        }
        sum.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pythagorean_triple() {
        let a = VecPoint::from([0.0, 0.0]);
        let b = VecPoint::from([3.0, 4.0]);
        assert_eq!(Euclidean.distance(&a, &b), 5.0);
    }

    #[test]
    fn identity() {
        let a = VecPoint::from([1.5, -2.5, 3.0]);
        assert_eq!(Euclidean.distance(&a, &a), 0.0);
    }

    #[test]
    fn works_on_slices() {
        assert_eq!(Euclidean.distance(&[0.0][..], &[7.0][..]), 7.0);
    }

    #[test]
    fn one_dimension_is_absolute_difference() {
        let a = VecPoint::from([-2.0]);
        let b = VecPoint::from([5.0]);
        assert_eq!(Euclidean.distance(&a, &b), 7.0);
    }
}
