//! Bitwise SIMD-vs-scalar equivalence, proptest-pinned.
//!
//! The batch-kernel contract is bitwise *identity*, not approximate
//! agreement: the SIMD paths vectorize across points while keeping
//! each lane's accumulation in exact scalar dimension order (sub, mul,
//! add — never FMA), so every distance, every relax update, and every
//! threshold decision must come out bit-for-bit equal to the scalar
//! fallback. These tests force the dispatcher both ways through
//! [`metric::simd::force_mode`] and compare `to_bits()` across all
//! three batch layouts (`VecPoint` pointer rows, `DenseStore` flat
//! runs, `DenseStoreColMajor` unit-stride columns).
//!
//! On hosts without AVX2/NEON both forced modes run the scalar path
//! and the comparison is trivially true — the suite is also part of
//! the `DIVMAX_SIMD=off` CI leg, where `force_mode` deliberately
//! overrides the env knob so the SIMD path is still exercised.

use metric::simd::{self, SimdMode};
use metric::{DenseStore, DenseStoreColMajor, Euclidean, Metric, VecPoint};
use proptest::prelude::*;
use std::sync::Mutex;

/// `force_mode` is process-global; every test toggling it serializes
/// through this lock and restores the env-driven default on exit.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Small dims take the fixed-D scalar kernels on both modes; dims > 4
/// hit the SIMD dispatch, including non-multiples of the 8-point block
/// and dims far beyond one cache line.
const DIMS: &[usize] = &[1, 2, 3, 4, 5, 6, 7, 8, 11, 16, 20, 64, 128, 257];

/// Deterministic NaN-free coordinate stream in `[-100, 100]`
/// (splitmix64; subnormals are not representable at this scale).
fn fill(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64 / (1u64 << 53) as f64) * 200.0 - 100.0
        })
        .collect()
}

struct Case {
    store: DenseStore,
    col: DenseStoreColMajor,
    points: Vec<VecPoint>,
    center: VecPoint,
    center_store: DenseStore,
    center_col: DenseStoreColMajor,
}

fn build(dim: usize, n: usize, seed: u64) -> Case {
    let store = DenseStore::from_flat(fill(seed, n * dim), dim);
    let col = DenseStoreColMajor::from_store(&store);
    let points = store.to_points();
    let center_coords = fill(seed ^ 0xD1CE_F00D, dim);
    let center_store = DenseStore::from_flat(center_coords.clone(), dim);
    Case {
        store,
        col,
        points,
        center: VecPoint::new(center_coords),
        center_col: DenseStoreColMajor::from_store(&center_store),
        center_store,
    }
}

/// Initial nearest-center distances with all three relax regimes
/// represented: untouched (`∞`), certain update (0), and data-scaled
/// values that may or may not beat the new distance.
fn seed_dists(seed: u64, n: usize) -> Vec<f64> {
    fill(seed ^ 0x5EED, n)
        .into_iter()
        .enumerate()
        .map(|(i, v)| match i % 3 {
            0 => f64::INFINITY,
            1 => v.abs(),
            _ => v.abs() * 4.0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn distance_many_is_bitwise_identical(
        di in 0usize..DIMS.len(),
        n in 1usize..40,
        seed in 0u64..(1 << 48),
    ) {
        let dim = DIMS[di];
        let case = build(dim, n, seed);
        let rows = case.store.rows();
        let crow = metric::DenseRow::new(case.center_store.row(0));
        let cols = case.col.rows();
        let ccol = case.center_col.rows()[0];

        let _g = MODE_LOCK.lock().unwrap();
        let run = |mode| {
            simd::force_mode(Some(mode));
            let mut vp = vec![0.0; n];
            Euclidean.distance_many(&case.center, &case.points, &mut vp);
            let mut dr = vec![0.0; n];
            Euclidean.distance_many(&crow, &rows, &mut dr);
            let mut cr = vec![0.0; n];
            Euclidean.distance_many(&ccol, &cols, &mut cr);
            (vp, dr, cr)
        };
        let off = run(SimdMode::Off);
        let on = run(SimdMode::On);
        simd::force_mode(None);

        let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&off.0), bits(&on.0), "VecPoint lanes");
        prop_assert_eq!(bits(&off.1), bits(&on.1), "DenseRow lanes");
        prop_assert_eq!(bits(&off.2), bits(&on.2), "ColRow lanes");
        // The three layouts hold identical coordinates, so the scalar
        // results must agree across layouts too.
        prop_assert_eq!(bits(&off.0), bits(&off.1), "layout drift");
        prop_assert_eq!(bits(&off.0), bits(&off.2), "layout drift");
    }

    #[test]
    fn relax_is_bitwise_identical(
        di in 0usize..DIMS.len(),
        n in 1usize..40,
        seed in 0u64..(1 << 48),
        cj in 0usize..9,
    ) {
        let dim = DIMS[di];
        let case = build(dim, n, seed);
        let rows = case.store.rows();
        let crow = metric::DenseRow::new(case.center_store.row(0));
        let cols = case.col.rows();
        let ccol = case.center_col.rows()[0];

        let _g = MODE_LOCK.lock().unwrap();
        let run = |mode| {
            simd::force_mode(Some(mode));
            let mut out = Vec::new();
            {
                let mut d = seed_dists(seed, n);
                let mut a: Vec<usize> = (0..n).map(|i| i % 5).collect();
                let far = Euclidean.relax(&case.center, &case.points, &mut d, &mut a, cj);
                out.push((d, a, far));
            }
            {
                let mut d = seed_dists(seed, n);
                let mut a: Vec<usize> = (0..n).map(|i| i % 5).collect();
                let far = Euclidean.relax(&crow, &rows, &mut d, &mut a, cj);
                out.push((d, a, far));
            }
            {
                let mut d = seed_dists(seed, n);
                let mut a: Vec<usize> = (0..n).map(|i| i % 5).collect();
                let far = Euclidean.relax(&ccol, &cols, &mut d, &mut a, cj);
                out.push((d, a, far));
            }
            out
        };
        let off = run(SimdMode::Off);
        let on = run(SimdMode::On);
        simd::force_mode(None);

        for (label, (o, f)) in ["VecPoint", "DenseRow", "ColRow"]
            .iter()
            .zip(off.iter().zip(on.iter()))
        {
            let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&o.0), bits(&f.0), "{} dists", label);
            prop_assert_eq!(&o.1, &f.1, "{} assignment", label);
            prop_assert_eq!(
                o.2.map(|(i, d)| (i, d.to_bits())),
                f.2.map(|(i, d)| (i, d.to_bits())),
                "{} farthest",
                label
            );
        }
    }

    #[test]
    fn within_is_decision_identical(
        di in 0usize..DIMS.len(),
        n in 1usize..40,
        seed in 0u64..(1 << 48),
    ) {
        let dim = DIMS[di];
        let case = build(dim, n, seed);
        let rows = case.store.rows();
        let crow = metric::DenseRow::new(case.center_store.row(0));
        let cols = case.col.rows();
        let ccol = case.center_col.rows()[0];

        // Thresholds straddling every true distance, including the
        // exact values themselves (the boundary the root-elision
        // squared compare must get right).
        let mut exact = vec![0.0; n];
        Euclidean.distance_many(&case.center, &case.points, &mut exact);
        let mut thresholds: Vec<f64> = exact
            .iter()
            .flat_map(|&d| [d, d * (1.0 - 1e-12), d * (1.0 + 1e-12)])
            .collect();
        thresholds.push(0.0);

        let _g = MODE_LOCK.lock().unwrap();
        let run = |mode| {
            simd::force_mode(Some(mode));
            thresholds
                .iter()
                .map(|&t| {
                    (
                        Euclidean.distance_to_set_within(&crow, &rows, t),
                        Euclidean.distance_to_set_within(&ccol, &cols, t),
                    )
                })
                .collect::<Vec<_>>()
        };
        let off = run(SimdMode::Off);
        let on = run(SimdMode::On);
        simd::force_mode(None);
        prop_assert_eq!(&off, &on);
        // Every decision must match the definitional scalar answer.
        for (t, (dr, _)) in thresholds.iter().zip(off.iter()) {
            let want = exact.iter().any(|&d| d <= *t);
            prop_assert_eq!(*dr, want, "threshold {}", t);
        }
    }
}
