//! Property tests: the batch hooks (`distance_many`, `relax`,
//! `distance_to_set_within`) are **bitwise-equal** to the scalar
//! `distance` loops for every shipped metric, on both point layouts
//! (`VecPoint` and `DenseStore` rows).
//!
//! This is the contract that lets the parallel GMM, the streaming
//! update step, and the SoA store swap freely between scalar, batched,
//! and chunked execution without ever changing a result. The Euclidean
//! kernel's root-elision (`d_sq > fl(incumbent²)` ⇒ skip the sqrt) and
//! the `next_up` guard in the membership check are exactly the sort of
//! optimization these tests exist to police.

use metric::{
    BitSetPoint, Chebyshev, CosineDistance, DenseStore, Euclidean, Hamming, Jaccard, Levenshtein,
    Lp, Manhattan, Metric, SparseVector, VecPoint,
};
use proptest::prelude::*;

/// A random point cloud: `n` points of the same dimension plus a probe
/// index, so relax centers and queries come from the cloud itself
/// (exact ties and zero distances included). (The vendored proptest
/// stand-in has no `prop_flat_map`, so a max-shape sample is sliced
/// down to the drawn `(dim, n)`.)
fn cloud() -> impl Strategy<Value = (Vec<VecPoint>, usize)> {
    (
        1usize..8,
        2usize..40,
        prop::collection::vec(prop::collection::vec(-1e3..1e3f64, 8), 40),
        0usize..1000,
    )
        .prop_map(|(dim, n, rows, probe_sel)| {
            let points: Vec<VecPoint> = rows
                .into_iter()
                .take(n)
                .map(|r| VecPoint::new(r[..dim].to_vec()))
                .collect();
            let probe = probe_sel % points.len();
            (points, probe)
        })
}

/// The scalar reference loops, written against `Metric::distance` only.
fn reference_many<P, M: Metric<P>>(m: &M, p: &P, others: &[P]) -> Vec<f64> {
    others.iter().map(|q| m.distance(p, q)).collect()
}

fn reference_relax<P, M: Metric<P>>(
    m: &M,
    center: &P,
    points: &[P],
    dists: &mut [f64],
    assignment: &mut [usize],
    cj: usize,
) {
    for (i, p) in points.iter().enumerate() {
        let d = m.distance(center, p);
        if d < dists[i] {
            dists[i] = d;
            assignment[i] = cj;
        }
    }
}

fn reference_within<P, M: Metric<P>>(m: &M, p: &P, set: &[P], threshold: f64) -> bool {
    set.iter().any(|q| m.distance(p, q) <= threshold)
}

/// Runs all three equivalence checks for one metric over one cloud.
/// The relax state is seeded by two real relax rounds (centers 0 and
/// the probe), so incumbents are genuine distances — the adversarial
/// regime for root elision, where squared comparisons sit on rounding
/// boundaries.
fn check_batch_hooks<P: Clone, M: Metric<P>>(m: &M, points: &[P], probe: usize) {
    let n = points.len();
    let p = &points[probe];

    // distance_many ≡ scalar loop, bit for bit.
    let mut out = vec![0.0f64; n];
    m.distance_many(p, points, &mut out);
    let expect = reference_many(m, p, points);
    for i in 0..n {
        assert_eq!(
            out[i].to_bits(),
            expect[i].to_bits(),
            "distance_many[{i}] {} != scalar {}",
            out[i],
            expect[i]
        );
    }

    // relax ≡ scalar loop after two rounds (fresh INFINITY incumbents,
    // then real-distance incumbents).
    let mut dists = vec![f64::INFINITY; n];
    let mut assign = vec![0usize; n];
    let mut ref_dists = dists.clone();
    let mut ref_assign = assign.clone();
    for (cj, center) in [&points[0], p].into_iter().enumerate() {
        m.relax(center, points, &mut dists, &mut assign, cj);
        reference_relax(m, center, points, &mut ref_dists, &mut ref_assign, cj);
        for i in 0..n {
            assert_eq!(
                dists[i].to_bits(),
                ref_dists[i].to_bits(),
                "relax dists[{i}] diverged at round {cj}"
            );
            assert_eq!(assign[i], ref_assign[i], "relax assignment[{i}] diverged");
        }
    }

    // distance_to_set_within ≡ scalar scan, probed at exact distances
    // (the boundary the non-strict `<=` makes treacherous) and one ulp
    // to either side.
    for q in points.iter().take(8) {
        let d = m.distance(p, q);
        for threshold in [d, d.next_down(), d.next_up(), 0.0, d * 0.5] {
            assert_eq!(
                m.distance_to_set_within(p, points, threshold),
                reference_within(m, p, points, threshold),
                "within({threshold}) diverged (pivot distance {d})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vec_point_metrics_bitwise_equal((points, probe) in cloud()) {
        check_batch_hooks(&Euclidean, &points, probe);
        check_batch_hooks(&Manhattan, &points, probe);
        check_batch_hooks(&Chebyshev, &points, probe);
        check_batch_hooks(&Lp::new(1.5), &points, probe);
        check_batch_hooks(&Lp::new(3.0), &points, probe);
        check_batch_hooks(&CosineDistance, &points, probe);
    }

    /// The same checks through `&M` (the blanket reference impl must
    /// forward the overridden hooks, not fall back to the defaults —
    /// defaults and overrides agree bitwise, so this guards forwarding
    /// by construction on every metric at once).
    #[test]
    fn reference_metric_forwards_hooks((points, probe) in cloud()) {
        check_batch_hooks(&&Euclidean, &points, probe);
        check_batch_hooks(&&Manhattan, &points, probe);
    }

    /// DenseStore row views produce bitwise-identical results to the
    /// equivalent VecPoints: same kernels, contiguous layout.
    #[test]
    fn dense_rows_match_vec_points((points, probe) in cloud()) {
        let store = DenseStore::from_points(&points);
        let rows = store.rows();
        check_batch_hooks(&Euclidean, &rows, probe);
        check_batch_hooks(&Manhattan, &rows, probe);
        check_batch_hooks(&Chebyshev, &rows, probe);
        check_batch_hooks(&Lp::new(2.5), &rows, probe);

        let n = points.len();
        let mut via_vec = vec![0.0f64; n];
        let mut via_rows = vec![0.0f64; n];
        Euclidean.distance_many(&points[probe], &points, &mut via_vec);
        Euclidean.distance_many(&rows[probe], &rows, &mut via_rows);
        for i in 0..n {
            prop_assert_eq!(via_vec[i].to_bits(), via_rows[i].to_bits());
        }
    }

    /// Non-coordinate metrics ride the default hooks; the contract
    /// still holds (trivially, but a future override must keep it).
    #[test]
    fn discrete_point_metrics_bitwise_equal(
        sets in prop::collection::vec(prop::collection::vec(0usize..64, 0..16), 2..20),
        words in prop::collection::vec("[ab]{0,8}", 2..20),
        probe_sel in 0usize..1000,
    ) {
        let bits: Vec<BitSetPoint> = sets
            .iter()
            .map(|els| BitSetPoint::from_elements(64, els))
            .collect();
        check_batch_hooks(&Hamming, &bits, probe_sel % bits.len());
        check_batch_hooks(&Jaccard, &bits, probe_sel % bits.len());
        check_batch_hooks(&Levenshtein, &words, probe_sel % words.len());
    }
}

/// Sparse cosine vectors through the default hooks (separate from the
/// proptest block purely for strategy simplicity).
#[test]
fn sparse_cosine_bitwise_equal() {
    let docs: Vec<SparseVector> = (0..12)
        .map(|i| {
            SparseVector::new(
                (0..6)
                    .map(|j| (((i * 7 + j * 13) % 40) as u32, 1.0 + (i + j) as f64))
                    .collect(),
            )
        })
        .collect();
    check_batch_hooks(&CosineDistance, &docs, 5);
}
