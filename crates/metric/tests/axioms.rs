//! Property tests: every shipped metric satisfies the metric axioms.
//!
//! The triangle inequality in particular is the foundation of every
//! approximation proof in the paper (Lemmas 1, 2, 7), so these tests are
//! the contract the rest of the workspace relies on.

use metric::{
    BitSetPoint, Chebyshev, CosineDistance, Discrete, Euclidean, Hamming, Jaccard, Levenshtein, Lp,
    Manhattan, Metric, SparseVector, VecPoint,
};
use proptest::prelude::*;

// acos has infinite derivative at 1, so angular distances computed from
// rounded cosines carry ~sqrt(machine-epsilon) ≈ 1e-8 absolute error;
// the tolerance must sit above that.
const EPS: f64 = 1e-6;

fn vec_point(dim: usize) -> impl Strategy<Value = VecPoint> {
    prop::collection::vec(-1e3..1e3f64, dim).prop_map(VecPoint::new)
}

fn sparse_vector() -> impl Strategy<Value = SparseVector> {
    prop::collection::vec((0u32..50, -10.0..10.0f64), 1..12).prop_map(SparseVector::new)
}

fn bitset() -> impl Strategy<Value = BitSetPoint> {
    prop::collection::vec(0usize..96, 0..20).prop_map(|els| BitSetPoint::from_elements(96, &els))
}

/// Checks the three metric axioms on a triple, with a small tolerance for
/// floating-point rounding in the triangle inequality.
fn check_axioms<P, M: Metric<P>>(m: &M, a: &P, b: &P, c: &P) {
    let dab = m.distance(a, b);
    let dba = m.distance(b, a);
    let dac = m.distance(a, c);
    let dbc = m.distance(b, c);
    let daa = m.distance(a, a);

    assert!(dab >= 0.0, "non-negativity violated: {dab}");
    assert!(dab.is_finite(), "distance must be finite: {dab}");
    assert!(daa.abs() <= EPS, "d(a,a) = {daa} != 0");
    assert!(
        (dab - dba).abs() <= EPS,
        "symmetry violated: {dab} vs {dba}"
    );
    assert!(
        dac <= dab + dbc + EPS,
        "triangle inequality violated: d(a,c)={dac} > d(a,b)+d(b,c)={}",
        dab + dbc
    );
}

macro_rules! axiom_tests {
    ($name:ident, $metric:expr, $strategy:expr) => {
        proptest! {
            #[test]
            fn $name((a, b, c) in ($strategy, $strategy, $strategy)) {
                check_axioms(&$metric, &a, &b, &c);
            }
        }
    };
}

axiom_tests!(euclidean_axioms, Euclidean, vec_point(3));
axiom_tests!(euclidean_axioms_high_dim, Euclidean, vec_point(16));
axiom_tests!(manhattan_axioms, Manhattan, vec_point(3));
axiom_tests!(chebyshev_axioms, Chebyshev, vec_point(4));
axiom_tests!(cosine_sparse_axioms, CosineDistance, sparse_vector());
axiom_tests!(jaccard_axioms, Jaccard, bitset());
axiom_tests!(hamming_axioms, Hamming, bitset());
axiom_tests!(lp3_axioms, Lp::new(3.0), vec_point(3));
axiom_tests!(lp1_5_axioms, Lp::new(1.5), vec_point(4));
axiom_tests!(
    levenshtein_axioms,
    Levenshtein,
    "[a-c]{0,8}".prop_map(String::from)
);

proptest! {
    #[test]
    fn cosine_dense_axioms((a, b, c) in (vec_point(4), vec_point(4), vec_point(4))) {
        // Exclude near-zero vectors: the zero-vector convention
        // (orthogonal to everything) intentionally bends the triangle
        // inequality, and datasets filter zero vectors out.
        prop_assume!(a.norm() > 1e-6 && b.norm() > 1e-6 && c.norm() > 1e-6);
        check_axioms(&CosineDistance, &a, &b, &c);
    }

    #[test]
    fn discrete_axioms((a, b, c) in (0u8..5, 0u8..5, 0u8..5)) {
        check_axioms(&Discrete, &a, &b, &c);
    }

    /// d(p, S) is a lower bound on the distance to each member of S.
    #[test]
    fn distance_to_set_is_min(
        p in vec_point(3),
        set in prop::collection::vec(vec_point(3), 1..8),
    ) {
        let d = Euclidean.distance_to_set(&p, &set);
        for q in &set {
            prop_assert!(d <= Euclidean.distance(&p, q) + EPS);
        }
        prop_assert!(set.iter().any(|q| (Euclidean.distance(&p, q) - d).abs() <= EPS));
    }

    /// The distance matrix agrees with the metric everywhere.
    #[test]
    fn distance_matrix_is_faithful(points in prop::collection::vec(vec_point(2), 2..12)) {
        let m = metric::DistanceMatrix::build(&points, &Euclidean);
        for i in 0..points.len() {
            for j in 0..points.len() {
                let expect = Euclidean.distance(&points[i], &points[j]);
                prop_assert!((m.get(i, j) - expect).abs() <= EPS);
            }
        }
    }
}
