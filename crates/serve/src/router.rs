//! Shard routing: which engine absorbs an update.
//!
//! Routing only affects *which* shard a point lands in, never the
//! answer's soundness — the warm-path certificate composes as the max
//! of the per-shard radii whatever the placement (Definition 2), so a
//! router is free to optimize for balance (round-robin), affinity
//! (hashing), or anything else. It must be [`Sync`]: the pool routes
//! from many writer threads concurrently.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Chooses a shard in `0..shards` for an incoming point.
pub trait Router<P>: Send + Sync {
    /// The shard `point` should be inserted into. `shards` is always
    /// ≥ 1; the result must be `< shards`.
    fn route(&self, point: &P, shards: usize) -> usize;

    /// Opaque router state to persist in a pool checkpoint (`None`
    /// when the router is stateless). The default routers use it for
    /// the round-robin cursor.
    fn checkpoint(&self) -> Option<u64> {
        None
    }

    /// Restores state persisted by [`checkpoint`](Self::checkpoint).
    fn restore(&self, _state: u64) {}
}

/// Cycles through the shards — the balanced default. The cursor is a
/// relaxed atomic: placement order under concurrent writers is
/// scheduling-dependent (and immaterial for correctness), but every
/// shard receives within one point of an equal share.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: AtomicU64,
}

impl RoundRobin {
    /// A router starting at shard 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<P> Router<P> for RoundRobin {
    fn route(&self, _point: &P, shards: usize) -> usize {
        (self.cursor.fetch_add(1, Ordering::Relaxed) % shards as u64) as usize
    }

    fn checkpoint(&self) -> Option<u64> {
        Some(self.cursor.load(Ordering::Relaxed))
    }

    fn restore(&self, state: u64) {
        self.cursor.store(state, Ordering::Relaxed);
    }
}

/// Routes by the point's own hash — stateless, so equal points always
/// land in the same shard (useful when traffic carries natural keys:
/// strings under the Levenshtein metric, bitsets, ids).
#[derive(Clone, Copy, Debug, Default)]
pub struct HashRouter;

impl<P: Hash> Router<P> for HashRouter {
    fn route(&self, point: &P, shards: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        point.hash(&mut h);
        (h.finish() % shards as u64) as usize
    }
}

/// Routes through a caller-supplied function of the point — the escape
/// hatch for geometry-aware or tenant-aware placement.
pub struct FnRouter<F>(pub F);

impl<P, F> Router<P> for FnRouter<F>
where
    F: Fn(&P) -> u64 + Send + Sync,
{
    fn route(&self, point: &P, shards: usize) -> usize {
        ((self.0)(point) % shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances_and_checkpoints() {
        let r = RoundRobin::new();
        let picks: Vec<usize> = (0..7).map(|_| Router::<u32>::route(&r, &0, 3)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(Router::<u32>::checkpoint(&r), Some(7));
        let fresh = RoundRobin::new();
        Router::<u32>::restore(&fresh, 7);
        assert_eq!(Router::<u32>::route(&fresh, &0, 3), 1);
    }

    #[test]
    fn hash_router_is_stable_per_point() {
        let r = HashRouter;
        let a = r.route(&"alpha", 5);
        assert_eq!(a, r.route(&"alpha", 5));
        assert!(a < 5);
        assert!(Router::<&str>::checkpoint(&r).is_none());
    }

    #[test]
    fn fn_router_applies_the_function() {
        let r = FnRouter(|x: &u64| *x);
        assert_eq!(r.route(&10, 4), 2);
        assert_eq!(r.route(&3, 4), 3);
    }
}
