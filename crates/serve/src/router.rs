//! Shard routing: which engine absorbs an update.
//!
//! Routing only affects *which* shard a point lands in, never the
//! answer's soundness — the warm-path certificate composes as the max
//! of the per-shard radii whatever the placement (Definition 2), so a
//! router is free to optimize for balance (round-robin), affinity
//! (hashing), or anything else. It must be [`Sync`]: the pool routes
//! from many writer threads concurrently.
//!
//! Routers are **checkpointable**: [`Router::checkpoint`] produces a
//! serde-able [`RouterState`] persisted inside the pool's `PoolState`,
//! and [`Router::restore`] re-applies it. The state always carries the
//! router's [`kind`](Router::kind) — even for stateless routers — so a
//! restored pool can detect that it was checkpointed under a different
//! placement discipline (silently switching e.g. from hash affinity to
//! round-robin would not be unsound, but it would break every placement
//! expectation downstream) and hold the state for the matching router
//! to be [re-attached](crate::ShardPool::with_router).
//!
//! Routers also own the **skew policy**: [`Router::skew`] condenses a
//! shard-occupancy vector into one imbalance figure — the hook a future
//! rebalancer keys off. The default ([`occupancy_skew`]) is
//! `max/mean`: `1.0` is perfectly balanced, `2.0` means the fullest
//! shard holds twice its fair share.

use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// The serde-able checkpoint of a [`Router`], persisted in
/// `PoolState`. Every router records its [`kind`](Router::kind);
/// stateful routers additionally use `cursor` (the round-robin
/// position; `0` for stateless kinds).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterState {
    /// Stable identifier of the router implementation
    /// ([`Router::kind`]), e.g. `"round-robin"`, `"hash"`, `"fn"`.
    pub kind: String,
    /// Opaque cursor for stateful routers (`0` when unused).
    pub cursor: u64,
    /// The shard count this router was routing over when the
    /// checkpoint was taken. Routers themselves don't know it (the
    /// count is a pool property, passed to every [`Router::route`]
    /// call), so [`Router::checkpoint`] records `0` and the pool
    /// overwrites it with the real count. `ShardPool::restore`
    /// cross-checks it against the engine-state vector: a `HashRouter`
    /// checkpointed over 4 shards mis-routes every stable-id placement
    /// if silently restored over 3.
    pub shards: u64,
}

/// `max / mean` of a shard-occupancy vector: `1.0` is perfectly
/// balanced, larger means the fullest shard holds that multiple of its
/// fair share. An empty (or all-empty) pool also reports `1.0`: there
/// is nothing to move, so it is as balanced as a pool can be. (It used
/// to report `0.0`, which sat on the *opposite* side of every
/// rebalance threshold from "balanced" — a threshold rebalancer would
/// read an empty pool as maximally calm and a freshly-balanced one as
/// infinitely calmer, an inversion that mattered the moment `skew()`
/// started driving action.) This is the default [`Router::skew`]
/// policy.
pub fn occupancy_skew(occupancy: &[usize]) -> f64 {
    let total: usize = occupancy.iter().sum();
    if occupancy.is_empty() || total == 0 {
        return 1.0;
    }
    let max = *occupancy.iter().max().expect("non-empty") as f64;
    let mean = total as f64 / occupancy.len() as f64;
    max / mean
}

/// Chooses a shard in `0..shards` for an incoming point.
pub trait Router<P>: Send + Sync {
    /// The shard `point` should be inserted into. `shards` is always
    /// ≥ 1; the result must be `< shards`.
    fn route(&self, point: &P, shards: usize) -> usize;

    /// Stable identifier of this router implementation, recorded in
    /// every checkpoint so restores can match placement disciplines.
    fn kind(&self) -> &'static str;

    /// The router state to persist in a pool checkpoint. Stateless
    /// routers record just their [`kind`](Self::kind). The
    /// [`shards`](RouterState::shards) field is left `0` here — the
    /// pool stamps the real count onto every checkpoint it emits.
    fn checkpoint(&self) -> RouterState {
        RouterState {
            kind: self.kind().to_string(),
            cursor: 0,
            shards: 0,
        }
    }

    /// Re-applies state persisted by [`checkpoint`](Self::checkpoint).
    /// Returns `false` (and must change nothing) when `state` belongs
    /// to a different router kind — the caller decides whether to hold
    /// the state for the matching router or proceed fresh.
    fn restore(&self, state: &RouterState) -> bool {
        state.kind == self.kind()
    }

    /// Condenses a shard-occupancy vector into one imbalance figure —
    /// the rebalancing hook. The default is [`occupancy_skew`]
    /// (`max/mean`); a router with domain knowledge (e.g. weighted
    /// tenants) can substitute its own measure.
    fn skew(&self, occupancy: &[usize]) -> f64 {
        occupancy_skew(occupancy)
    }
}

/// Cycles through the shards — the balanced default. The cursor is a
/// relaxed atomic: placement order under concurrent writers is
/// scheduling-dependent (and immaterial for correctness), but every
/// shard receives within one point of an equal share.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: AtomicU64,
}

impl RoundRobin {
    /// A router starting at shard 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<P> Router<P> for RoundRobin {
    fn route(&self, _point: &P, shards: usize) -> usize {
        (self.cursor.fetch_add(1, Ordering::Relaxed) % shards as u64) as usize
    }

    fn kind(&self) -> &'static str {
        "round-robin"
    }

    fn checkpoint(&self) -> RouterState {
        RouterState {
            kind: Router::<P>::kind(self).to_string(),
            cursor: self.cursor.load(Ordering::Relaxed),
            shards: 0,
        }
    }

    fn restore(&self, state: &RouterState) -> bool {
        if state.kind != Router::<P>::kind(self) {
            return false;
        }
        self.cursor.store(state.cursor, Ordering::Relaxed);
        true
    }
}

/// Routes by the point's own hash — stateless, so equal points always
/// land in the same shard (useful when traffic carries natural keys:
/// strings under the Levenshtein metric, bitsets, ids).
#[derive(Clone, Copy, Debug, Default)]
pub struct HashRouter;

impl<P: Hash> Router<P> for HashRouter {
    fn route(&self, point: &P, shards: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        point.hash(&mut h);
        (h.finish() % shards as u64) as usize
    }

    fn kind(&self) -> &'static str {
        "hash"
    }
}

/// Routes through a caller-supplied function of the point — the escape
/// hatch for geometry-aware or tenant-aware placement.
pub struct FnRouter<F>(pub F);

impl<P, F> Router<P> for FnRouter<F>
where
    F: Fn(&P) -> u64 + Send + Sync,
{
    fn route(&self, point: &P, shards: usize) -> usize {
        ((self.0)(point) % shards as u64) as usize
    }

    fn kind(&self) -> &'static str {
        "fn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances_and_checkpoints() {
        let r = RoundRobin::new();
        let picks: Vec<usize> = (0..7).map(|_| Router::<u32>::route(&r, &0, 3)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        let state = Router::<u32>::checkpoint(&r);
        assert_eq!(state.kind, "round-robin");
        assert_eq!(state.cursor, 7);
        let fresh = RoundRobin::new();
        assert!(Router::<u32>::restore(&fresh, &state));
        assert_eq!(Router::<u32>::route(&fresh, &0, 3), 1);
    }

    #[test]
    fn restore_refuses_foreign_kinds() {
        let r = RoundRobin::new();
        let foreign = RouterState {
            kind: "hash".into(),
            cursor: 9,
            shards: 0,
        };
        assert!(!Router::<u32>::restore(&r, &foreign));
        // Nothing changed: the cursor still starts at shard 0.
        assert_eq!(Router::<u32>::route(&r, &0, 3), 0);
    }

    #[test]
    fn hash_router_is_stable_per_point() {
        let r = HashRouter;
        let a = r.route(&"alpha", 5);
        assert_eq!(a, r.route(&"alpha", 5));
        assert!(a < 5);
        let state = Router::<&str>::checkpoint(&r);
        assert_eq!(state.kind, "hash");
        assert_eq!(state.cursor, 0);
        assert!(Router::<&str>::restore(&r, &state));
    }

    #[test]
    fn fn_router_applies_the_function() {
        let r = FnRouter(|x: &u64| *x);
        assert_eq!(r.route(&10, 4), 2);
        assert_eq!(r.route(&3, 4), 3);
        assert_eq!(Router::<u64>::kind(&r), "fn");
    }

    #[test]
    fn skew_is_max_over_mean() {
        let r = RoundRobin::new();
        assert_eq!(Router::<u32>::skew(&r, &[5, 5, 5]), 1.0);
        // 12 points, 3 shards, fullest holds 8 = 2x its fair share.
        assert_eq!(Router::<u32>::skew(&r, &[8, 2, 2]), 2.0);
        assert_eq!(occupancy_skew(&[1]), 1.0);
    }

    /// Regression: empty and all-empty pools report `1.0` — the same
    /// side of any rebalance threshold as "perfectly balanced". The
    /// old `0.0` sentinel inverted the scale for exactly the state a
    /// threshold rebalancer most needs to leave alone.
    #[test]
    fn empty_and_balanced_sit_on_the_same_side_of_any_threshold() {
        let r = RoundRobin::new();
        assert_eq!(Router::<u32>::skew(&r, &[]), 1.0);
        assert_eq!(Router::<u32>::skew(&r, &[0, 0, 0]), 1.0);
        assert_eq!(occupancy_skew(&[]), 1.0);
        assert_eq!(occupancy_skew(&[0]), 1.0);
        assert_eq!(occupancy_skew(&[0, 0, 0, 0]), 1.0);
        // Every skewed pool strictly exceeds every balanced/empty one.
        for balanced in [
            occupancy_skew(&[]),
            occupancy_skew(&[0, 0]),
            occupancy_skew(&[7, 7]),
        ] {
            assert!(occupancy_skew(&[9, 1]) > balanced);
        }
    }
}
