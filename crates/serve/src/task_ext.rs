//! `Task::serve` — the front door's opt-in to a persistent warm-path
//! handle.
//!
//! `diversity::Task` cannot name [`ShardPool`] itself (the serve crate
//! sits above the facade), so the method arrives through an extension
//! trait: `use diversity_serve::Serve;` and every `Task` gains
//! [`serve`](Serve::serve) / [`serve_seeded`](Serve::serve_seeded).

use crate::pool::ShardPool;
use diversity::{Budget, DivError, Task};
use diversity_dynamic::DynamicConfig;
use diversity_mapreduce::Partitions;
use metric::Metric;

/// Extension trait giving [`Task`] the persistent-handle entry point
/// into the serving layer. Where `Task::run_sharded` executes
/// `Strategy::ShardedDynamic` cold — building every shard engine for
/// one query and dropping them — `serve` hands back the long-lived
/// [`ShardPool`] those engines live in, so updates amortize and
/// queries run extraction-only ([`ShardPool::query`]).
pub trait Serve {
    /// An empty pool of `shards` engines, configured from this task's
    /// budget: [`Budget::Eps`] seeds each shard's
    /// [`DynamicConfig`] with the target `ε` and dimension (so `Auto`
    /// extraction budgets and the maintained structure agree with the
    /// task's accuracy intent); other budgets use the engine default.
    /// Feed traffic with [`ShardPool::insert`]/[`delete`](ShardPool::delete),
    /// answer with [`ShardPool::query`]`(&task)`.
    fn serve<P, M>(&self, metric: M, shards: usize) -> Result<ShardPool<P, M>, DivError>
    where
        P: Clone + Send + Sync,
        M: Metric<P> + Clone;

    /// A pool pre-loaded from an existing partitioning — one shard per
    /// part, points inserted in part order — so a cold `run_sharded`
    /// deployment can hand its data layout to the warm path. At the
    /// quiescent point right after seeding, `pool.query(&task)` solves
    /// the same composed core-set as `task.run_sharded(&parts, ..)`
    /// (provenance differs: the pool speaks [`crate::ShardedId`]s, the
    /// cold path original input positions).
    fn serve_seeded<P, M>(
        &self,
        partitions: &Partitions<P>,
        metric: M,
    ) -> Result<ShardPool<P, M>, DivError>
    where
        P: Clone + Send + Sync,
        M: Metric<P> + Clone;
}

impl Serve for Task {
    fn serve<P, M>(&self, metric: M, shards: usize) -> Result<ShardPool<P, M>, DivError>
    where
        P: Clone + Send + Sync,
        M: Metric<P> + Clone,
    {
        if self.k() == 0 {
            return Err(DivError::InvalidK { k: 0, n: None });
        }
        if shards == 0 {
            return Err(DivError::InvalidShards);
        }
        let config = match self.budget_spec() {
            Budget::Eps { eps, dim } => DynamicConfig {
                epsilon: eps,
                dim,
                ..DynamicConfig::default()
            },
            _ => DynamicConfig::default(),
        };
        // Budget validation up front: a pool that can never answer its
        // own task (cap < k, eps out of range) is refused here, not at
        // the first query.
        self.dynamic_k_prime(&config)?;
        Ok(ShardPool::with_config(metric, config, shards))
    }

    fn serve_seeded<P, M>(
        &self,
        partitions: &Partitions<P>,
        metric: M,
    ) -> Result<ShardPool<P, M>, DivError>
    where
        P: Clone + Send + Sync,
        M: Metric<P> + Clone,
    {
        if partitions.parts.is_empty() {
            return Err(DivError::InvalidShards);
        }
        let pool = self.serve(metric, partitions.parts.len())?;
        for (shard, part) in partitions.parts.iter().enumerate() {
            for point in part {
                pool.insert_to(shard, point.clone())?;
            }
        }
        Ok(pool)
    }
}
