//! A reusable churn-stress driver: concurrent writer threads
//! (interleaved inserts + deletes) against concurrent reader threads
//! (warm-path queries), over one [`ShardPool`].
//!
//! The driver runs **one round** of churn on `core::par` scoped
//! threads and joins them all before returning, so the moment
//! [`churn_round`] returns is a *quiescent point*: the caller can
//! compare the pool's answer against a fresh sequential solve of the
//! surviving points, audit the composed certificate against ground
//! truth, and round-trip a checkpoint — exactly the assertions the
//! `serve_churn` stress test runs after every round. Iteration counts
//! scale with the `SERVE_CHURN_OPS` environment knob ([`env_ops`]) so
//! CI smoke runs stay bounded while local runs can turn the pressure
//! up.
//!
//! [`chaos_round`] is the fault-tolerant variant: run it with a seeded
//! [`diversity_faults::FaultPlan`] installed and it drives the same
//! concurrent schedule while *tolerating* the typed failure surface —
//! updates may be refused ([`DivError::ShardUnavailable`],
//! [`DivError::TransientFailure`]), answers may be degraded (a
//! [`Report`] carrying `degradation`) or refused
//! ([`DivError::PoolUnavailable`]) — and asserting the invariants that
//! must hold *anyway*: an acknowledged insert is never lost, a
//! degraded answer's [`Degradation`] is internally consistent, and
//! every answer still carries the composed certificate.

use crate::pool::{ShardPool, ShardedId};
use diversity::{Degradation, DivError, Report, Task};
use diversity_core::par;
use diversity_core::Problem;
use metric::Metric;

/// Shape of one churn round.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Concurrent writer threads.
    pub writers: usize,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Points each writer inserts during the round.
    pub inserts_per_writer: usize,
    /// After every `delete_every` inserts a writer deletes the oldest
    /// point *it inserted this round* (`0` disables deletions). Only
    /// own-round points are deleted, so anything the pool held when
    /// the round started survives — which is what lets readers assert
    /// success: the pool never shrinks below its seed.
    pub delete_every: usize,
    /// Queries each reader issues during the round.
    pub queries_per_reader: usize,
}

/// What one round produced, for the caller's quiescent assertions.
#[derive(Debug)]
pub struct ChurnOutcome<P> {
    /// Handles inserted this round and still alive at the join.
    pub survivors: Vec<ShardedId>,
    /// Points deleted by the writers this round.
    pub deleted: usize,
    /// Every successful concurrent read, in per-reader order.
    pub reports: Vec<Report<P>>,
}

/// What one **chaos** round produced ([`chaos_round`]): the
/// [`ChurnOutcome`] accounting plus the fault-path tallies the caller
/// audits against the installed plan's log.
#[derive(Debug)]
pub struct ChaosOutcome<P> {
    /// Handles *acknowledged* this round and still alive at the join —
    /// the pool's durability obligation, whatever faults fired.
    pub survivors: Vec<ShardedId>,
    /// Acknowledged deletions.
    pub deleted: usize,
    /// Every answer a reader received (full and degraded alike).
    pub reports: Vec<Report<P>>,
    /// How many of those answers carried a [`Degradation`].
    pub degraded: usize,
    /// Updates refused with a typed error (shard unavailable after
    /// recovery exhaustion, transient injection) — never silently
    /// dropped, never partially applied.
    pub update_rejections: usize,
    /// Queries refused with a typed error (pool unavailable, transient
    /// admission failure).
    pub query_rejections: usize,
}

/// Reads the `SERVE_CHURN_OPS` knob: the per-writer insert count for
/// stress runs, defaulting to `default` when unset. CI smoke sets a
/// small value to bound wall-clock; local stress runs can raise it
/// without touching the test. Parsing is strict: an invalid value
/// (empty, zero, signed, non-numeric, overflow) warns once on stderr,
/// bumps the `env.invalid_value` counter through the observability
/// layer, and falls back to `default` — it is never silently coerced.
pub fn env_ops(default: usize) -> usize {
    diversity_obs::env::positive_usize("SERVE_CHURN_OPS", default.max(1))
}

/// Runs one churn round: `writers + readers` scoped threads hammer the
/// pool concurrently, and the call returns only after **all** of them
/// joined (a quiescent point).
///
/// Writers insert `gen(writer, i)` and interleave deletions of their
/// own insertions per [`ChurnConfig::delete_every`]. Readers issue
/// `pool.query(task)` and assert every answer's shape (exactly `k`
/// points, finite positive value, a composed radius present);
/// [`DivError::InvalidK`]/[`DivError::EmptyInput`] are tolerated only
/// while the pool is genuinely smaller than `k` — seed the pool with
/// `k` undeletable points to make every read assert success.
///
/// This driver expects a **fault-free** pool: any typed failure
/// (shard unavailable, transient error) fails the calling test. Use
/// [`chaos_round`] when a fault plan is installed.
///
/// # Panics
/// Panics (failing the calling test) when a reader observes a
/// malformed answer or an unexpected error, or when a writer's update
/// is refused.
pub fn churn_round<P, M>(
    pool: &ShardPool<P, M>,
    task: &Task,
    cfg: &ChurnConfig,
    gen: impl Fn(usize, usize) -> P + Send + Sync,
) -> ChurnOutcome<P>
where
    P: Clone + Send + Sync,
    M: Metric<P> + Clone,
{
    enum Out<P> {
        Writer(Vec<ShardedId>, usize),
        Reader(Vec<Report<P>>),
    }
    let seeded = pool.len();
    let gen = &gen;

    let mut tasks: Vec<Box<dyn FnOnce() -> Out<P> + Send + '_>> = Vec::new();
    for w in 0..cfg.writers {
        tasks.push(Box::new(move || {
            let mut mine: Vec<ShardedId> = Vec::with_capacity(cfg.inserts_per_writer);
            let mut next_delete = 0usize;
            let mut deleted = 0usize;
            for i in 0..cfg.inserts_per_writer {
                mine.push(pool.insert(gen(w, i)).expect("insert on a fault-free pool"));
                if cfg.delete_every > 0 && (i + 1) % cfg.delete_every == 0 {
                    // Delete own oldest survivor — never the seed.
                    if next_delete < mine.len() {
                        assert!(
                            pool.delete(mine[next_delete])
                                .expect("delete on a fault-free pool"),
                            "a writer's own id vanished without its delete"
                        );
                        deleted += 1;
                        next_delete += 1;
                    }
                }
            }
            Out::Writer(mine.split_off(next_delete), deleted)
        }));
    }
    for _ in 0..cfg.readers {
        tasks.push(Box::new(move || {
            let mut reports = Vec::with_capacity(cfg.queries_per_reader);
            for _ in 0..cfg.queries_per_reader {
                match pool.query(task) {
                    Ok(report) => {
                        assert_eq!(report.len(), task.k(), "a read returned the wrong k");
                        assert!(
                            report.value.is_finite() && report.value >= 0.0,
                            "a read returned a malformed value: {}",
                            report.value
                        );
                        assert!(
                            report.coreset_radius.is_some(),
                            "warm-path reads always carry the composed certificate"
                        );
                        reports.push(report);
                    }
                    Err(DivError::InvalidK { .. } | DivError::EmptyInput) if seeded < task.k() => {
                        // The pool really can be smaller than k.
                    }
                    Err(e) => panic!("concurrent read failed: {e}"),
                }
            }
            Out::Reader(reports)
        }));
    }

    let mut survivors = Vec::new();
    let mut deleted = 0usize;
    let mut reports = Vec::new();
    for out in par::run_tasks(tasks) {
        match out {
            Out::Writer(mine, d) => {
                survivors.extend(mine);
                deleted += d;
            }
            Out::Reader(r) => reports.extend(r),
        }
    }
    ChurnOutcome {
        survivors,
        deleted,
        reports,
    }
}

/// Checks a degraded answer's [`Degradation`] block for internal
/// consistency (used by [`chaos_round`]'s readers and exposed for the
/// chaos tests' own audits).
///
/// # Panics
/// Panics when the block is inconsistent: zero or over-counted
/// answered shards, skipped list disagreeing with the counts, skipped
/// indices out of range or duplicated, or coverage outside `(0, 1]`.
pub fn assert_degradation_consistent(d: &Degradation, shards: usize) {
    assert!(
        d.shards_total == shards,
        "degradation reports {} shards, pool has {shards}",
        d.shards_total
    );
    assert!(d.shards_answered >= 1, "a degraded answer still answered");
    assert!(
        d.shards_answered + d.skipped_shards.len() == d.shards_total,
        "answered {} + skipped {} must cover all {} shards",
        d.shards_answered,
        d.skipped_shards.len(),
        d.shards_total
    );
    assert!(
        !d.skipped_shards.is_empty(),
        "degraded answers name their skips"
    );
    let mut seen = vec![false; shards];
    for &s in &d.skipped_shards {
        assert!(s < shards, "skipped shard {s} out of range");
        assert!(!seen[s], "skipped shard {s} listed twice");
        seen[s] = true;
    }
    assert!(
        d.coverage > 0.0 && d.coverage <= 1.0,
        "coverage {} outside (0, 1]",
        d.coverage
    );
}

/// Runs one **chaos** round: the same concurrent schedule as
/// [`churn_round`], under an installed
/// [`diversity_faults::FaultPlan`]. Where the fault-free driver
/// asserts that nothing fails, this one asserts that failures stay
/// *typed and bounded*:
///
/// * an update either succeeds (and its handle is durable — the
///   returned survivors must all be alive at the join) or is refused
///   with [`DivError::ShardUnavailable`] /
///   [`DivError::TransientFailure`]; a refused delete leaves its
///   target alive, so the writer retires it at the quiescent point;
/// * a read either answers in full, answers degraded (every
///   [`Degradation`] block is checked with
///   [`assert_degradation_consistent`], and the answer still carries
///   the composed radius), or is refused with
///   [`DivError::PoolUnavailable`] / [`DivError::TransientFailure`];
/// * nothing else: any other error, malformed answer, or process
///   panic fails the calling test.
///
/// The join is **not** automatically a fault-free quiescent point —
/// shards may still be quarantined. Callers typically uninstall the
/// plan, [`ShardPool::recover_all`], and then run the usual ground-
/// truth audits.
pub fn chaos_round<P, M>(
    pool: &ShardPool<P, M>,
    task: &Task,
    cfg: &ChurnConfig,
    gen: impl Fn(usize, usize) -> P + Send + Sync,
) -> ChaosOutcome<P>
where
    P: Clone + Send + Sync,
    M: Metric<P> + Clone,
{
    enum Out<P> {
        Writer {
            survivors: Vec<ShardedId>,
            deleted: usize,
            rejections: usize,
        },
        Reader {
            reports: Vec<Report<P>>,
            degraded: usize,
            rejections: usize,
        },
    }
    let seeded = pool.len();
    let shards = pool.num_shards();
    let gen = &gen;

    let mut tasks: Vec<Box<dyn FnOnce() -> Out<P> + Send + '_>> = Vec::new();
    for w in 0..cfg.writers {
        tasks.push(Box::new(move || {
            let mut mine: Vec<ShardedId> = Vec::with_capacity(cfg.inserts_per_writer);
            let mut next_delete = 0usize;
            let mut deleted = 0usize;
            let mut rejections = 0usize;
            for i in 0..cfg.inserts_per_writer {
                match pool.insert(gen(w, i)) {
                    Ok(id) => mine.push(id),
                    Err(DivError::ShardUnavailable { .. } | DivError::TransientFailure { .. }) => {
                        rejections += 1
                    }
                    Err(e) => panic!("chaos insert failed untypedly: {e}"),
                }
                if cfg.delete_every > 0
                    && (i + 1) % cfg.delete_every == 0
                    && next_delete < mine.len()
                {
                    match pool.delete(mine[next_delete]) {
                        Ok(gone) => {
                            // An acknowledged insert can only disappear
                            // through our own delete.
                            assert!(gone, "an acknowledged id vanished without its delete");
                            deleted += 1;
                            next_delete += 1;
                        }
                        Err(
                            DivError::ShardUnavailable { .. } | DivError::TransientFailure { .. },
                        ) => {
                            // Refused ⇒ not applied; the id stays in
                            // `mine` as a survivor.
                            rejections += 1;
                        }
                        Err(e) => panic!("chaos delete failed untypedly: {e}"),
                    }
                }
            }
            Out::Writer {
                survivors: mine.split_off(next_delete),
                deleted,
                rejections,
            }
        }));
    }
    for _ in 0..cfg.readers {
        tasks.push(Box::new(move || {
            let mut reports = Vec::with_capacity(cfg.queries_per_reader);
            let mut degraded = 0usize;
            let mut rejections = 0usize;
            for _ in 0..cfg.queries_per_reader {
                match pool.query(task) {
                    Ok(report) => {
                        assert_eq!(report.len(), task.k(), "a read returned the wrong k");
                        assert!(
                            report.value.is_finite() && report.value >= 0.0,
                            "a read returned a malformed value: {}",
                            report.value
                        );
                        assert!(
                            report.coreset_radius.is_some(),
                            "degraded or not, answers carry the composed certificate"
                        );
                        if let Some(d) = &report.degradation {
                            assert_degradation_consistent(d, shards);
                            degraded += 1;
                        }
                        reports.push(report);
                    }
                    Err(DivError::PoolUnavailable { .. } | DivError::TransientFailure { .. }) => {
                        rejections += 1
                    }
                    Err(DivError::InvalidK { .. } | DivError::EmptyInput) if seeded < task.k() => {}
                    Err(e) => panic!("chaos read failed untypedly: {e}"),
                }
            }
            Out::Reader {
                reports,
                degraded,
                rejections,
            }
        }));
    }

    let mut outcome = ChaosOutcome {
        survivors: Vec::new(),
        deleted: 0,
        reports: Vec::new(),
        degraded: 0,
        update_rejections: 0,
        query_rejections: 0,
    };
    for out in par::run_tasks(tasks) {
        match out {
            Out::Writer {
                survivors,
                deleted,
                rejections,
            } => {
                outcome.survivors.extend(survivors);
                outcome.deleted += deleted;
                outcome.update_rejections += rejections;
            }
            Out::Reader {
                reports,
                degraded,
                rejections,
            } => {
                outcome.reports.extend(reports);
                outcome.degraded += degraded;
                outcome.query_rejections += rejections;
            }
        }
    }
    outcome
}

/// Upper bound on the objective-value loss of solving `problem` on a
/// core-set with covering radius `radius` instead of the full set —
/// the "structure-reported" accuracy term a warm-path answer's
/// `coreset_radius` certifies. Derivation (proxy-function Lemmas 1–2):
/// each of the `k` optimum points maps to a core-set point within
/// `radius`, perturbing any single pairwise distance by at most
/// `2·radius`; the objective sums (or minimizes over) a known number
/// of pairwise terms, so the loss is that term count times
/// `2·radius`:
/// min-terms (edge) 1, clique `k(k−1)/2`, star/tree `k−1`, cycle `k`,
/// bipartition `⌊k/2⌋·⌈k/2⌉`.
pub fn value_loss(problem: Problem, k: usize, radius: f64) -> f64 {
    let k = k as f64;
    let pairs = match problem {
        Problem::RemoteEdge => 1.0,
        Problem::RemoteClique => k * (k - 1.0) / 2.0,
        Problem::RemoteStar | Problem::RemoteTree => k - 1.0,
        Problem::RemoteCycle => k,
        Problem::RemoteBipartition => (k / 2.0).floor() * (k / 2.0).ceil(),
    };
    2.0 * radius * pairs
}
