//! Binary codec impls for the pool's checkpoint types
//! ([`PoolState`], [`RouterState`], [`RemapEntry`]) — the serving
//! layer's half of [`diversity::wire`]. A pool checkpoint written with
//! [`diversity::wire::to_bytes`] is the dense on-disk/on-wire form the
//! `divmax-serve` Checkpoint opcode ships; the JSON serde path remains
//! the debuggable one.

use crate::pool::PoolState;
use crate::rebalance::RemapEntry;
use crate::router::RouterState;
use diversity::wire::{BinRead, BinReader, BinWrite, WireError};

impl BinWrite for RouterState {
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.kind.write_bin(out);
        self.cursor.write_bin(out);
        self.shards.write_bin(out);
    }
}

impl BinRead for RouterState {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        Ok(RouterState {
            kind: BinRead::read_bin(r)?,
            cursor: BinRead::read_bin(r)?,
            shards: BinRead::read_bin(r)?,
        })
    }
}

impl BinWrite for RemapEntry {
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.from.write_bin(out);
        self.to.write_bin(out);
    }
}

impl BinRead for RemapEntry {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        Ok(RemapEntry {
            from: BinRead::read_bin(r)?,
            to: BinRead::read_bin(r)?,
        })
    }
}

impl<P: BinWrite> BinWrite for PoolState<P> {
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.shards.write_bin(out);
        self.router.write_bin(out);
        self.remap.write_bin(out);
    }
}

impl<P: BinRead> BinRead for PoolState<P> {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        Ok(PoolState {
            shards: BinRead::read_bin(r)?,
            router: BinRead::read_bin(r)?,
            remap: BinRead::read_bin(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversity::wire::{from_bytes, to_bytes};

    #[test]
    fn router_state_roundtrips() {
        let state = RouterState {
            kind: "round-robin".into(),
            cursor: 42,
            shards: 4,
        };
        let back: RouterState = from_bytes(&to_bytes(&state)).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn remap_entries_roundtrip() {
        let entries = vec![
            RemapEntry { from: 0, to: 7 },
            RemapEntry {
                from: (3 << 48) | 5,
                to: (1 << 48) | 900,
            },
        ];
        let back: Vec<RemapEntry> = from_bytes(&to_bytes(&entries)).unwrap();
        assert_eq!(back, entries);
    }
}
