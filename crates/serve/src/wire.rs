//! Binary codec impls for the pool's checkpoint types
//! ([`PoolState`], [`RouterState`]) — the serving layer's half of
//! [`diversity::wire`]. A pool checkpoint written with
//! [`diversity::wire::to_bytes`] is the dense on-disk/on-wire form the
//! `divmax-serve` Checkpoint opcode ships; the JSON serde path remains
//! the debuggable one.

use crate::pool::PoolState;
use crate::router::RouterState;
use diversity::wire::{BinRead, BinReader, BinWrite, WireError};

impl BinWrite for RouterState {
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.kind.write_bin(out);
        self.cursor.write_bin(out);
    }
}

impl BinRead for RouterState {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        Ok(RouterState {
            kind: BinRead::read_bin(r)?,
            cursor: BinRead::read_bin(r)?,
        })
    }
}

impl<P: BinWrite> BinWrite for PoolState<P> {
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.shards.write_bin(out);
        self.router.write_bin(out);
    }
}

impl<P: BinRead> BinRead for PoolState<P> {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        Ok(PoolState {
            shards: BinRead::read_bin(r)?,
            router: BinRead::read_bin(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversity::wire::{from_bytes, to_bytes};

    #[test]
    fn router_state_roundtrips() {
        let state = RouterState {
            kind: "round-robin".into(),
            cursor: 42,
        };
        let back: RouterState = from_bytes(&to_bytes(&state)).unwrap();
        assert_eq!(back, state);
    }
}
