//! The long-lived shard-engine pool — the warm path behind
//! `Strategy::ShardedDynamic`.

use crate::router::{RoundRobin, Router};
use diversity::{Backend, DivError, Report, StageMemory, StageTiming, Task};
use diversity_core::coreset::Coreset;
use diversity_core::Problem;
use diversity_dynamic::{DynamicConfig, DynamicDiversity, EngineState, PointId, UpdateStats};
use diversity_mapreduce::two_round::solve_union;
use diversity_mapreduce::MapReduceRuntime;
use metric::Metric;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Process-wide pool id source: every pool gets a distinct telemetry
/// namespace (`serve.pool{id}.shard{i}.occupancy`), so concurrently
/// live pools — parallel tests, blue/green serving — never write each
/// other's gauges.
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(0);

/// Precomputed per-shard gauge names for one pool: publishing a gauge
/// on the insert/delete path must not allocate.
fn occupancy_gauge_names(pool_id: usize, shards: usize) -> Vec<String> {
    (0..shards)
        .map(|i| format!("serve.pool{pool_id}.shard{i}.occupancy"))
        .collect()
}

/// Bits of a [`ShardedId`] encoding reserved for the per-shard
/// [`PointId`]; the remaining high bits carry the shard index.
const RAW_BITS: u32 = 48;

/// A pool-wide point handle: the shard a point lives in plus its
/// engine-local [`PointId`]. Encodes into a single `u64` (shard in the
/// high 16 bits, engine id in the low 48) — the provenance the pool's
/// extracted [`Coreset`]s and [`Report`] indices carry, so a selected
/// point can always be traced back to its shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardedId {
    /// Index of the owning shard.
    pub shard: usize,
    /// The engine-local handle within that shard.
    pub id: PointId,
}

impl ShardedId {
    /// Packs the handle into one `u64`: `shard << 48 | raw`.
    ///
    /// # Panics
    /// Panics past 2^16 shards or 2^48 updates on one shard — both far
    /// beyond anything a single pool holds.
    pub fn encode(self) -> u64 {
        let raw = self.id.raw();
        assert!(raw < 1 << RAW_BITS, "engine id overflows the encoding");
        assert!(self.shard < 1 << 16, "shard index overflows the encoding");
        ((self.shard as u64) << RAW_BITS) | raw
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(encoded: u64) -> Self {
        Self {
            shard: (encoded >> RAW_BITS) as usize,
            id: PointId::from_raw(encoded & ((1 << RAW_BITS) - 1)),
        }
    }
}

impl std::fmt::Display for ShardedId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.id, self.shard)
    }
}

/// A serde-able snapshot of an entire pool: one [`EngineState`] per
/// shard plus the router's opaque state. Produced by
/// [`ShardPool::checkpoint`], consumed by [`ShardPool::restore`];
/// queries on the restored pool are bit-identical to the live one
/// (each shard's engine state round-trips losslessly, and the combiner
/// is deterministic).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoolState<P> {
    /// Per-shard engine checkpoints, in shard order.
    pub shards: Vec<EngineState<P>>,
    /// Router state ([`Router::checkpoint`]), if the router keeps any.
    pub router: Option<u64>,
}

impl<P> PoolState<P> {
    /// Total alive points across the checkpointed shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EngineState::len).sum()
    }

    /// `true` when no shard held a point.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(EngineState::is_empty)
    }
}

/// A long-lived pool of `N` fully dynamic shard engines behind
/// per-shard `RwLock`s: inserts and deletes route to one shard and
/// take that shard's **write** lock only; queries take each shard's
/// **read** lock just long enough to extract the maintained core-set,
/// so concurrent readers never serialize behind each other and writers
/// block only the shard they touch. This is the **warm path** the
/// cold `Task::run_sharded` amortizes into: engine builds happen once
/// (and incrementally, as traffic arrives), queries are
/// extraction-only.
///
/// ## Why serving merged core-sets from drifting shards is sound
///
/// A query composes per-shard extractions through [`Coreset::merge`]
/// and solves the union with the same 2-round combiner
/// (`solve_union`) that `Strategy::ShardedDynamic` uses. Soundness
/// follows from the paper's own composition theory:
///
/// * each shard's extraction certifies that every point **currently
///   alive in that shard** is within `r_i` of its artifact — the cover
///   level's telescoped covering radius (`Σ_{j≤i} 2^j < 2^(i+1)`),
///   i.e. the same triangle-inequality argument that underlies the
///   streaming Lemmas 3–4;
/// * the union of the artifacts then covers the union of the shards'
///   alive sets within `max_i r_i` — Definition 2's composition law
///   ([`Coreset::merge`]), stated for *arbitrary* partitions of the
///   data, so it holds no matter how inserts were routed or how
///   deletions have since reshaped each shard;
/// * the combiner solves the union **directly** (no re-extraction), so
///   no second radius term accrues ([`Coreset::deepen`] is never
///   invoked), and the reported `coreset_radius = max_i r_i` bounds
///   the solve's value loss through the proxy-function Lemmas 1–2.
///
/// Shards therefore drift independently under churn — grow, shrink,
/// even empty out (an empty shard contributes [`Coreset::empty`], the
/// merge identity) — and every individual answer still carries an
/// honest certificate for exactly the points alive at extraction time.
/// What the pool does **not** promise is a cross-shard atomic
/// snapshot: read locks are taken shard by shard, so a query
/// concurrent with writes may see shard `A` before an insert and shard
/// `B` after one. Each per-shard extraction is still internally
/// consistent, and the composed certificate covers precisely the union
/// of what was seen — the usual contract of a serving system that
/// answers while absorbing traffic. Quiescent queries (no concurrent
/// writers) are deterministic and equal to `Task::run_sharded` on the
/// same shard contents.
///
/// Construction: [`ShardPool::new`]/[`with_config`](Self::with_config)
/// for an empty pool, `Task::serve` (the `Serve` extension trait) to
/// opt into a persistent handle from the front door, or
/// [`restore`](Self::restore) to resume a [`checkpoint`](Self::checkpoint).
pub struct ShardPool<P, M> {
    shards: Vec<RwLock<DynamicDiversity<P, M>>>,
    metric: M,
    config: DynamicConfig,
    router: Box<dyn Router<P>>,
    runtime: MapReduceRuntime,
    /// This pool's telemetry namespace (`serve.pool{id}.…`).
    pool_id: usize,
    /// Precomputed occupancy gauge names, one per shard.
    gauge_names: Vec<String>,
}

impl<P, M> std::fmt::Debug for ShardPool<P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.shards.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<P, M> ShardPool<P, M>
where
    P: Clone + Send + Sync,
    M: Metric<P> + Clone,
{
    /// An empty pool of `shards` engines with the default
    /// [`DynamicConfig`] and a [`RoundRobin`] router.
    ///
    /// # Panics
    /// Panics if `shards == 0` (`Task::serve` returns
    /// [`DivError::InvalidShards`] instead).
    pub fn new(metric: M, shards: usize) -> Self {
        Self::with_config(metric, DynamicConfig::default(), shards)
    }

    /// An empty pool with an explicit engine configuration (shared by
    /// every shard).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_config(metric: M, config: DynamicConfig, shards: usize) -> Self {
        assert!(shards >= 1, "a pool needs at least one shard");
        let engines = (0..shards)
            .map(|_| RwLock::new(DynamicDiversity::with_config(metric.clone(), config)))
            .collect();
        let pool_id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        Self {
            shards: engines,
            metric,
            config,
            router: Box::new(RoundRobin::new()),
            runtime: MapReduceRuntime::with_threads(1),
            pool_id,
            gauge_names: occupancy_gauge_names(pool_id, shards),
        }
    }

    /// Resumes a pool from a [`checkpoint`](Self::checkpoint). Every
    /// shard engine is rebuilt losslessly; queries on the restored
    /// pool are bit-identical to the pool that produced the state. The
    /// router is the default [`RoundRobin`] with its cursor restored —
    /// a pool using a custom router should re-attach it with
    /// [`with_router`](Self::with_router) after restoring.
    ///
    /// # Panics
    /// Panics on a shard-less state or a structurally inconsistent
    /// engine state (states produced by `checkpoint` always restore).
    pub fn restore(metric: M, state: PoolState<P>) -> Self {
        assert!(
            !state.shards.is_empty(),
            "a pool checkpoint holds at least one shard"
        );
        let span = diversity_obs::span("serve.restore_ns");
        let config = DynamicConfig {
            epsilon: state.shards[0].epsilon,
            dim: state.shards[0].dim,
            max_depth: state.shards[0].max_depth,
        };
        let shards: Vec<RwLock<DynamicDiversity<P, M>>> = state
            .shards
            .into_iter()
            .map(|s| RwLock::new(DynamicDiversity::resume(metric.clone(), s)))
            .collect();
        let router = RoundRobin::new();
        if let Some(cursor) = state.router {
            Router::<P>::restore(&router, cursor);
        }
        let pool_id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let pool = Self {
            gauge_names: occupancy_gauge_names(pool_id, shards.len()),
            shards,
            metric,
            config,
            router: Box::new(router),
            runtime: MapReduceRuntime::with_threads(1),
            pool_id,
        };
        drop(span);
        if diversity_obs::enabled() {
            // Publish the restored occupancy so the pool's gauges are
            // correct before any traffic arrives.
            for (shard, lock) in pool.shards.iter().enumerate() {
                diversity_obs::gauge_set(&pool.gauge_names[shard], lock.read().len() as i64);
            }
        }
        pool
    }
}

impl<P, M> ShardPool<P, M>
where
    P: Clone + Send + Sync,
    M: Metric<P>,
{
    /// Replaces the router (builder-style). Routing affects placement
    /// only, never soundness — see the type-level docs.
    pub fn with_router(mut self, router: impl Router<P> + 'static) -> Self {
        self.router = Box::new(router);
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// This pool's telemetry namespace prefix: every per-shard
    /// occupancy gauge is named `{gauge_prefix()}shard{i}.occupancy`.
    /// At any quiescent point,
    /// `Snapshot::gauge_prefix_sum(&pool.gauge_prefix())` equals
    /// [`len`](Self::len).
    pub fn gauge_prefix(&self) -> String {
        format!("serve.pool{}.", self.pool_id)
    }

    /// Alive points in shard `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].read().len()
    }

    /// Total alive points across all shards. Under concurrent writers
    /// this is a momentary sum (shards are read one at a time).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// `true` when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// The engine configuration every shard was built with.
    pub fn config(&self) -> &DynamicConfig {
        &self.config
    }

    /// Inserts a point, routing it through the pool's [`Router`].
    /// Takes one shard's write lock; other shards (and readers of
    /// other shards) proceed untouched.
    pub fn insert(&self, point: P) -> ShardedId {
        let shard = self.router.route(&point, self.shards.len());
        self.insert_to(shard, point)
    }

    /// Inserts into an explicit shard, bypassing the router (how
    /// `Task::serve_seeded` replays a partitioning).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn insert_to(&self, shard: usize, point: P) -> ShardedId {
        if diversity_obs::enabled() {
            let t0 = Instant::now();
            let mut engine = self.shards[shard].write();
            let acquired = Instant::now();
            let id = engine.insert(point);
            // Publish occupancy before releasing the lock: gauge
            // updates then land in lock order, so the last writer's
            // value is the true occupancy (publishing after the drop
            // would race with the next writer on this shard).
            diversity_obs::gauge_set(&self.gauge_names[shard], engine.len() as i64);
            drop(engine);
            diversity_obs::observe(
                "serve.lock.write_wait_ns",
                (acquired - t0).as_nanos() as u64,
            );
            diversity_obs::observe(
                "serve.lock.write_hold_ns",
                acquired.elapsed().as_nanos() as u64,
            );
            ShardedId { shard, id }
        } else {
            let id = self.shards[shard].write().insert(point);
            ShardedId { shard, id }
        }
    }

    /// Inserts many points through the router, returning their handles.
    pub fn extend(&self, points: impl IntoIterator<Item = P>) -> Vec<ShardedId> {
        points.into_iter().map(|p| self.insert(p)).collect()
    }

    /// Deletes an alive point; `false` when the handle was already
    /// gone (or its shard index is out of range).
    pub fn delete(&self, id: ShardedId) -> bool {
        let Some(lock) = self.shards.get(id.shard) else {
            return false;
        };
        if diversity_obs::enabled() {
            let t0 = Instant::now();
            let mut engine = lock.write();
            let acquired = Instant::now();
            let deleted = engine.delete(id.id);
            // In lock order, as in `insert_to` — see the note there.
            diversity_obs::gauge_set(&self.gauge_names[id.shard], engine.len() as i64);
            drop(engine);
            diversity_obs::observe(
                "serve.lock.write_wait_ns",
                (acquired - t0).as_nanos() as u64,
            );
            diversity_obs::observe(
                "serve.lock.write_hold_ns",
                acquired.elapsed().as_nanos() as u64,
            );
            deleted
        } else {
            lock.write().delete(id.id)
        }
    }

    /// The point behind an alive handle, cloned out under the shard's
    /// read lock.
    pub fn point(&self, id: ShardedId) -> Option<P> {
        self.shards.get(id.shard)?.read().point(id.id).cloned()
    }

    /// Snapshot of all alive `(handle, point)` pairs, shard by shard.
    pub fn alive(&self) -> Vec<(ShardedId, P)> {
        let mut out = Vec::new();
        for (shard, lock) in self.shards.iter().enumerate() {
            out.extend(
                lock.read()
                    .alive()
                    .into_iter()
                    .map(|(id, p)| (ShardedId { shard, id }, p)),
            );
        }
        out
    }

    /// Per-shard cumulative update-work counters.
    pub fn shard_stats(&self) -> Vec<UpdateStats> {
        self.shards.iter().map(|s| *s.read().stats()).collect()
    }

    /// Exhaustively validates every shard's cover invariants (test
    /// support; `O(n²)` per shard).
    pub fn validate(&self) {
        for shard in &self.shards {
            shard.read().validate();
        }
    }

    /// Extracts every shard's core-set (read locks, one shard at a
    /// time) with provenance rewritten to encoded [`ShardedId`]s.
    /// Returns the artifacts plus `(total, max)` alive counts seen.
    fn extract_shards(
        &self,
        problem: Problem,
        k: usize,
        k_prime: usize,
    ) -> (Vec<Coreset<P>>, usize, usize, f64) {
        let mut total = 0usize;
        let mut max_shard = 0usize;
        let mut lock_wait_secs = 0.0f64;
        let mut artifacts = Vec::with_capacity(self.shards.len());
        for (shard, lock) in self.shards.iter().enumerate() {
            let t0 = Instant::now();
            let engine = lock.read();
            let acquired = Instant::now();
            lock_wait_secs += (acquired - t0).as_secs_f64();
            let n_s = engine.len();
            let art = if engine.is_empty() {
                // A drained shard contributes the merge identity.
                Coreset::empty(k_prime)
            } else {
                engine.extract_coreset(problem, k, k_prime)
            };
            drop(engine); // provenance rewrite needs no lock
            if diversity_obs::enabled() {
                diversity_obs::observe(
                    "serve.lock.read_wait_ns",
                    (acquired - t0).as_nanos() as u64,
                );
                diversity_obs::observe(
                    "serve.lock.read_hold_ns",
                    acquired.elapsed().as_nanos() as u64,
                );
            }
            total += n_s;
            max_shard = max_shard.max(n_s);
            artifacts.push(art.map_sources(|raw| {
                ShardedId {
                    shard,
                    id: PointId::from_raw(raw),
                }
                .encode()
            }));
        }
        (artifacts, total, max_shard, lock_wait_secs)
    }

    /// The merged warm-path core-set a [`query`](Self::query) for
    /// `(problem, k, k_prime)` would solve on: per-shard extractions
    /// composed by [`Coreset::merge`], radius = max of the shard radii,
    /// sources = encoded [`ShardedId`]s. Exposed for certificate
    /// audits (`coreset.certifies(&alive_points, ..)`) and tests.
    pub fn coreset(&self, problem: Problem, k: usize, k_prime: usize) -> Coreset<P> {
        let (artifacts, _, _, _) = self.extract_shards(problem, k, k_prime);
        Coreset::merge_all(artifacts).expect("a pool has at least one shard")
    }

    /// Answers a [`Task`] on the **warm path**: extraction-only reads
    /// of the maintained shard structures, composed through
    /// [`Coreset::merge`] and solved by the shared 2-round combiner —
    /// the same data path as `Task::run_sharded`, minus the per-query
    /// engine builds. Returns the standard [`Report`] with
    /// [`Backend::ShardedDynamic`], the composed radius certificate in
    /// `coreset_radius`, and indices/provenance in encoded
    /// [`ShardedId`] space ([`ShardedId::decode`] recovers the shard
    /// and engine handle).
    ///
    /// Budget resolution matches [`Task::run_dynamic`]
    /// ([`Task::dynamic_k_prime`]): `Auto` defers to the shards' own
    /// [`DynamicConfig`] sizing rather than sampling the data (the
    /// warm path never rescans points). Like the other dynamic-backed
    /// paths, no `(α+ε)` certificate is attached — the per-query
    /// composed radius is the honest accuracy witness.
    pub fn query(&self, task: &Task) -> Result<Report<P>, DivError> {
        let k = task.k();
        if k == 0 {
            return Err(DivError::InvalidK { k, n: None });
        }
        let problem = task.problem();
        let k_prime = task.dynamic_k_prime(&self.config)?;

        let e2e = diversity_obs::span("serve.query.e2e_ns");
        let t0 = Instant::now();
        let (artifacts, total, max_shard, lock_wait_secs) =
            self.extract_shards(problem, k, k_prime);
        let extract_secs = t0.elapsed().as_secs_f64();
        if diversity_obs::enabled() {
            diversity_obs::observe("serve.extract_ns", (extract_secs * 1e9) as u64);
        }
        if total == 0 {
            return Err(DivError::EmptyInput);
        }
        if k > total {
            return Err(DivError::InvalidK { k, n: Some(total) });
        }

        let union = Coreset::merge_all(artifacts).expect("a pool has at least one shard");
        // Keep (source, point) pairs to recover the selected points
        // after the solve without re-locking the shards — a concurrent
        // writer may have deleted a selected point by then, but it was
        // alive in the extraction this answer certifies.
        let lookup: Vec<(u64, P)> = union
            .sources()
            .iter()
            .copied()
            .zip(union.points().iter().cloned())
            .collect();
        let (solution, solve_input_size, coreset_radius, round_stats) = solve_union(
            problem,
            union,
            &self.metric,
            k,
            &self.runtime,
            "combine:solve",
        );

        let points = solution
            .indices
            .iter()
            .map(|&encoded| {
                lookup
                    .iter()
                    .find(|(src, _)| *src == encoded as u64)
                    .map(|(_, p)| p.clone())
                    .expect("solution indices come from the union's sources")
            })
            .collect();

        // End the e2e span before snapshotting so this very query is
        // already in the histogram the report carries.
        drop(e2e);
        let report = Report {
            problem,
            backend: Backend::ShardedDynamic,
            k,
            k_prime,
            coreset_size: solve_input_size,
            coreset_radius: Some(coreset_radius),
            indices: solution.indices,
            points,
            value: solution.value,
            timings: vec![
                StageTiming {
                    stage: "warm-extract".into(),
                    secs: extract_secs,
                },
                // Component of warm-extract spent *waiting* for shard
                // read locks — the contention share of warm latency.
                // Row names are pinned in `tests/serve_pool.rs`.
                StageTiming {
                    stage: "warm-lock-wait".into(),
                    secs: lock_wait_secs,
                },
                StageTiming {
                    stage: round_stats.name.clone(),
                    secs: round_stats.wall.as_secs_f64(),
                },
            ],
            memory: vec![
                StageMemory {
                    stage: "warm-extract".into(),
                    reducers: self.shards.len(),
                    max_local_points: max_shard,
                    total_points: total,
                    emitted_points: solve_input_size,
                },
                StageMemory {
                    stage: round_stats.name.clone(),
                    reducers: round_stats.reducers,
                    max_local_points: round_stats.max_local_points,
                    total_points: round_stats.total_points,
                    emitted_points: round_stats.emitted_points,
                },
            ],
            certificate: None,
            telemetry: diversity_obs::snapshot(),
        };
        Ok(report)
    }

    /// Snapshots every shard into a serde-able [`PoolState`]. Shards
    /// are locked one at a time: the snapshot is per-shard consistent;
    /// take it at a quiescent point for a cross-shard-exact image.
    pub fn checkpoint(&self) -> PoolState<P> {
        let _span = diversity_obs::span("serve.checkpoint_ns");
        PoolState {
            shards: self.shards.iter().map(|s| s.read().state()).collect(),
            router: self.router.checkpoint(),
        }
    }
}
