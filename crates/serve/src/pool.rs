//! The long-lived shard-engine pool — the warm path behind
//! `Strategy::ShardedDynamic` — with per-shard fault isolation:
//! panic quarantine, checkpoint+log recovery, and certified degraded
//! answers when shards drop out.

use crate::rebalance::{
    rebalance_state, RebalanceConfig, RebalanceReport, RebalanceStats, RemapEntry,
};
use crate::router::{RoundRobin, Router, RouterState};
use diversity::{Backend, Degradation, DivError, Report, StageMemory, StageTiming, Task};
use diversity_core::coreset::Coreset;
use diversity_core::Problem;
use diversity_dynamic::{DynamicConfig, DynamicDiversity, EngineState, PointId, UpdateStats};
use diversity_faults as faults;
use diversity_mapreduce::two_round::solve_union;
use diversity_mapreduce::MapReduceRuntime;
use metric::Metric;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-wide pool id source: every pool gets a distinct telemetry
/// namespace (`serve.pool{id}.shard{i}.occupancy`), so concurrently
/// live pools — parallel tests, blue/green serving — never write each
/// other's gauges.
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(0);

/// Precomputed per-shard gauge names for one pool: publishing a gauge
/// on the insert/delete path must not allocate.
fn occupancy_gauge_names(pool_id: usize, shards: usize) -> Vec<String> {
    (0..shards)
        .map(|i| format!("serve.pool{pool_id}.shard{i}.occupancy"))
        .collect()
}

/// Bits of a [`ShardedId`] encoding reserved for the per-shard
/// [`PointId`]; the remaining high bits carry the shard index.
const RAW_BITS: u32 = 48;

/// A pool-wide point handle: the shard a point lives in plus its
/// engine-local [`PointId`]. Encodes into a single `u64` (shard in the
/// high 16 bits, engine id in the low 48) — the provenance the pool's
/// extracted [`Coreset`]s and [`Report`] indices carry, so a selected
/// point can always be traced back to its shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardedId {
    /// Index of the owning shard.
    pub shard: usize,
    /// The engine-local handle within that shard.
    pub id: PointId,
}

impl ShardedId {
    /// Packs the handle into one `u64`: `shard << 48 | raw`.
    ///
    /// # Panics
    /// Panics past 2^16 shards or 2^48 updates on one shard — both far
    /// beyond anything a single pool holds. Paths that handle
    /// wire-received or remapped ids use the checked
    /// [`try_encode`](Self::try_encode) instead: the old
    /// unchecked shift silently *corrupted* out-of-range handles
    /// (`shard << 48 | raw` with `raw >= 2^48` bleeds into the shard
    /// bits), which mattered the moment rebalancing started remapping
    /// ids across shards.
    pub fn encode(self) -> u64 {
        let raw = self.id.raw();
        assert!(raw < 1 << RAW_BITS, "engine id overflows the encoding");
        assert!(self.shard < 1 << 16, "shard index overflows the encoding");
        ((self.shard as u64) << RAW_BITS) | raw
    }

    /// Checked [`encode`](Self::encode): [`DivError::InvalidShards`]
    /// instead of a panic when `raw >= 2^48` or `shard >= 2^16` — the
    /// boundary past which the packed form can no longer represent the
    /// handle losslessly.
    pub fn try_encode(self) -> Result<u64, DivError> {
        let raw = self.id.raw();
        if raw >= 1 << RAW_BITS || self.shard >= 1 << 16 {
            return Err(DivError::InvalidShards);
        }
        Ok(((self.shard as u64) << RAW_BITS) | raw)
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(encoded: u64) -> Self {
        Self {
            shard: (encoded >> RAW_BITS) as usize,
            id: PointId::from_raw(encoded & ((1 << RAW_BITS) - 1)),
        }
    }
}

impl std::fmt::Display for ShardedId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.id, self.shard)
    }
}

/// A serde-able snapshot of an entire pool: one [`EngineState`] per
/// shard plus the router's opaque state. Produced by
/// [`ShardPool::checkpoint`], consumed by [`ShardPool::restore`];
/// queries on the restored pool are bit-identical to the live one
/// (each shard's engine state round-trips losslessly, and the combiner
/// is deterministic).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoolState<P> {
    /// Per-shard engine checkpoints, in shard order.
    pub shards: Vec<EngineState<P>>,
    /// The router's checkpointed state ([`Router::checkpoint`]) —
    /// always present, always tagged with the router kind, and stamped
    /// with the shard count it was routing over, so a restore can tell
    /// whether the pool was checkpointed under the same placement
    /// discipline *and* the same shard layout.
    pub router: RouterState,
    /// The rebalance remap table ([`RemapEntry`]), sorted by `from`:
    /// every pre-rebalance encoded [`ShardedId`] still resolvable to a
    /// live point, however many rebalances ago it was issued. Empty
    /// for a never-rebalanced pool.
    pub remap: Vec<RemapEntry>,
}

impl<P> PoolState<P> {
    /// Total alive points across the checkpointed shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EngineState::len).sum()
    }

    /// `true` when no shard held a point.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(EngineState::is_empty)
    }
}

/// The health state machine of one shard.
///
/// ```text
///            panic caught in a mutation
///  Healthy ────────────────────────────► Quarantined
///     ▲                                      │
///     │            rebuild succeeded         │ recovery begins (under
///     └──────────── Recovering ◄─────────────┘ the shard write lock)
/// ```
///
/// * **Healthy** — serves queries, accepts updates.
/// * **Quarantined** — excluded from every query merge (answers become
///   *degraded*, see [`Degradation`]) and from
///   [`len`](ShardPool::len)/[`alive`](ShardPool::alive); updates
///   routed here trigger an in-line recovery attempt first.
/// * **Recovering** — transient: the shard's engine is being rebuilt
///   from its last checkpoint plus the acknowledged-operation log,
///   under the shard's write lock. Ends in `Healthy` (rebuild
///   succeeded) or back in `Quarantined` (transient faults exhausted
///   the backoff budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardHealth {
    /// Serving and accepting updates.
    Healthy = 0,
    /// Excluded from queries; awaiting recovery.
    Quarantined = 1,
    /// Being rebuilt from checkpoint + log (held briefly, under the
    /// shard's write lock).
    Recovering = 2,
}

impl ShardHealth {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => ShardHealth::Healthy,
            1 => ShardHealth::Quarantined,
            _ => ShardHealth::Recovering,
        }
    }
}

/// One acknowledged mutation, replayed during recovery. The engine
/// assigns [`PointId`]s from a deterministic counter, so replaying the
/// log in acknowledgement order reproduces the exact pre-failure
/// state, ids included.
enum Op<P> {
    Insert(P),
    Delete(PointId),
}

/// A shard's recovery material: the last checkpointed engine state
/// plus every mutation acknowledged since. `base + log` always equals
/// the acknowledged state of the shard, so recovery never loses an
/// acknowledged write. [`ShardPool::checkpoint`] folds the log into a
/// fresh `base` (truncating it), bounding replay time and log memory
/// between checkpoints.
struct RecoveryState<P> {
    base: EngineState<P>,
    log: Vec<Op<P>>,
}

/// One shard slot: the engine, its health, its recovery material, and
/// its last-acknowledged occupancy (readable without any lock — what a
/// degraded answer's coverage fraction uses for skipped shards).
struct Shard<P, M> {
    engine: RwLock<DynamicDiversity<P, M>>,
    health: AtomicU8,
    recovery: Mutex<RecoveryState<P>>,
    occupancy: AtomicUsize,
}

impl<P, M> Shard<P, M> {
    fn health(&self) -> ShardHealth {
        ShardHealth::from_u8(self.health.load(Ordering::Acquire))
    }

    fn set_health(&self, h: ShardHealth) {
        self.health.store(h as u8, Ordering::Release);
    }
}

/// What one per-shard extraction pass produced (see
/// `ShardPool::extract_shards`).
struct Extraction<P> {
    /// Shard count of the snapshot this extraction ran over (constant
    /// across rebalances, but read from the same snapshot as the
    /// artifacts so one query never mixes generations).
    shards_total: usize,
    /// Artifacts of the shards that answered, in shard order.
    artifacts: Vec<Coreset<P>>,
    /// Shards that dropped out: quarantined, past the deadline, lock
    /// not acquired within the deadline, or a panic caught during
    /// extraction.
    skipped: Vec<usize>,
    /// Alive points seen across the answering shards.
    total: usize,
    /// Largest single answering shard.
    max_shard: usize,
    /// Time spent waiting on shard read locks.
    lock_wait_secs: f64,
    /// Last-acknowledged occupancy summed over the skipped shards.
    skipped_occupancy: usize,
}

/// A long-lived pool of `N` fully dynamic shard engines behind
/// per-shard `RwLock`s: inserts and deletes route to one shard and
/// take that shard's **write** lock only; queries take each shard's
/// **read** lock just long enough to extract the maintained core-set,
/// so concurrent readers never serialize behind each other and writers
/// block only the shard they touch. This is the **warm path** the
/// cold `Task::run_sharded` amortizes into: engine builds happen once
/// (and incrementally, as traffic arrives), queries are
/// extraction-only.
///
/// ## Why serving merged core-sets from drifting shards is sound
///
/// A query composes per-shard extractions through [`Coreset::merge`]
/// and solves the union with the same 2-round combiner
/// (`solve_union`) that `Strategy::ShardedDynamic` uses. Soundness
/// follows from the paper's own composition theory:
///
/// * each shard's extraction certifies that every point **currently
///   alive in that shard** is within `r_i` of its artifact — the cover
///   level's telescoped covering radius (`Σ_{j≤i} 2^j < 2^(i+1)`),
///   i.e. the same triangle-inequality argument that underlies the
///   streaming Lemmas 3–4;
/// * the union of the artifacts then covers the union of the shards'
///   alive sets within `max_i r_i` — Definition 2's composition law
///   ([`Coreset::merge`]), stated for *arbitrary* partitions of the
///   data, so it holds no matter how inserts were routed or how
///   deletions have since reshaped each shard;
/// * the combiner solves the union **directly** (no re-extraction), so
///   no second radius term accrues ([`Coreset::deepen`] is never
///   invoked), and the reported `coreset_radius = max_i r_i` bounds
///   the solve's value loss through the proxy-function Lemmas 1–2.
///
/// Shards therefore drift independently under churn — grow, shrink,
/// even empty out (an empty shard contributes [`Coreset::empty`], the
/// merge identity) — and every individual answer still carries an
/// honest certificate for exactly the points alive at extraction time.
/// What the pool does **not** promise is a cross-shard atomic
/// snapshot: read locks are taken shard by shard, so a query
/// concurrent with writes may see shard `A` before an insert and shard
/// `B` after one. Each per-shard extraction is still internally
/// consistent, and the composed certificate covers precisely the union
/// of what was seen — the usual contract of a serving system that
/// answers while absorbing traffic. Quiescent queries (no concurrent
/// writers) are deterministic and equal to `Task::run_sharded` on the
/// same shard contents.
///
/// ## Fault tolerance
///
/// The same composition law makes *partial* answers principled: a
/// shard that cannot answer simply drops out of the merge, and the
/// union of the surviving artifacts is still a valid core-set of
/// exactly the union of the surviving shards' alive points. The pool
/// exploits this end to end:
///
/// * **Panic isolation.** Every engine mutation runs under
///   `catch_unwind` (with the
///   [`faults::sites::SHARD_MUTATE`] injection point inside the
///   guarded scope). A panicking insert/delete can never leave a
///   half-mutated shard visible: the shard is quarantined while the
///   write lock is still held, and an in-line recovery is attempted
///   immediately.
/// * **Quarantine & recovery.** Each shard carries a
///   [`ShardHealth`] state. Recovery rebuilds the engine from the
///   shard's last checkpoint plus the log of every mutation
///   acknowledged since — so acknowledged writes are never lost and a
///   recovered shard is **bit-identical** to one that never failed.
///   Transient faults during recovery ([`faults::sites::RECOVERY`])
///   back off exponentially for up to
///   [`RECOVERY_ATTEMPTS`](Self::RECOVERY_ATTEMPTS) tries; exhaustion
///   leaves the shard `Quarantined` and the update returns
///   [`DivError::ShardUnavailable`] while the rest of the pool keeps
///   serving.
/// * **Degraded answers.** [`query`](Self::query) merges whatever
///   shards can answer. When any shard drops out (quarantine, a
///   deadline miss in [`query_within`](Self::query_within), or a panic
///   caught during extraction) the [`Report`] carries
///   [`Degradation`] — shards answered/total, the skipped indices, and
///   the covered fraction of the pool's last-known population — and
///   its `coreset_radius` certificate is scoped to exactly the
///   surviving points. Only when *no* shard answers does the query
///   fail, with [`DivError::PoolUnavailable`].
/// * **Deadline budgets.** [`query_within`](Self::query_within) bounds
///   a query's wall time: shards whose read lock cannot be acquired in
///   time (e.g. a straggling writer holding it —
///   [`faults::sites::LOCK_HOLD`]) or whose turn comes after the
///   deadline are skipped, degrading the answer instead of stalling
///   it.
/// * **Transient retries.** Query admission retries injected/ambient
///   transient failures ([`faults::sites::QUERY`]) with bounded
///   backoff before giving up with [`DivError::TransientFailure`].
///
/// Construction: [`ShardPool::new`]/[`with_config`](Self::with_config)
/// for an empty pool, `Task::serve` (the `Serve` extension trait) to
/// opt into a persistent handle from the front door, or
/// [`restore`](Self::restore) to resume a [`checkpoint`](Self::checkpoint).
pub struct ShardPool<P, M> {
    /// The live shard set, swapped **atomically** by
    /// [`rebalance`](Self::rebalance): readers clone the `Arc` under a
    /// brief outer read lock (never holding it across shard-lock
    /// acquisition), so in-flight queries on a superseded set finish
    /// undisturbed while new routes see the replacement.
    shards: RwLock<Arc<Vec<Shard<P, M>>>>,
    metric: M,
    config: DynamicConfig,
    router: Box<dyn Router<P>>,
    runtime: MapReduceRuntime,
    /// This pool's telemetry namespace (`serve.pool{id}.…`).
    pool_id: usize,
    /// Precomputed occupancy gauge names, one per shard (shard count
    /// is invariant across rebalances, so the names survive swaps).
    gauge_names: Vec<String>,
    /// Mutation epoch: bumped (under the touched shard's write lock)
    /// on every acknowledged mutation, every shard health transition,
    /// and every committed rebalance — anything that could change a
    /// query's answer *or its id space*. Two reads of
    /// [`epoch`](Self::epoch) bracketing equal values witness a
    /// quiescent pool, which is what the network layer's query
    /// coalescing keys on; the rebalance bump is what guarantees a
    /// coalesced follower can never be handed a pre-swap extraction as
    /// current.
    epoch: AtomicU64,
    /// Swap generation: bumped under the outer `shards` write lock on
    /// every committed rebalance. Writers re-check it after acquiring
    /// a shard write lock — a mutation applied to a superseded shard
    /// set would be silently lost, so a stale writer retries against
    /// the fresh snapshot instead.
    generation: AtomicU64,
    /// Old encoded [`ShardedId`] → current encoded id, folded across
    /// every committed rebalance ([`RemapEntry`] composition), so
    /// handles issued any number of rebalances ago keep resolving.
    remap: RwLock<HashMap<u64, u64>>,
    /// Serializes rebalances and carries the last-commit instant
    /// (`min_interval_ms` pacing) — held across the whole quiesce →
    /// re-partition → swap sequence.
    rebalance_ctl: Mutex<RebalanceCtl>,
    /// Committed rebalances (monotone; mirrored to `serve.rebalances`).
    rebalances: AtomicU64,
    /// `f64::to_bits` of the skew the latest rebalance started from.
    last_skew_before: AtomicU64,
    /// `f64::to_bits` of the skew the latest rebalance ended at.
    last_skew_after: AtomicU64,
    /// Router state from a restored checkpoint whose kind did not
    /// match the active router; held for [`with_router`]
    /// (Self::with_router) to apply when the matching router arrives.
    pending_router: Option<RouterState>,
}

/// Rebalance serialization state (see `ShardPool::rebalance_ctl`).
struct RebalanceCtl {
    /// When the last rebalance committed; `None` before the first.
    last: Option<Instant>,
}

impl<P, M> std::fmt::Debug for ShardPool<P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shards = self.shards();
        f.debug_struct("ShardPool")
            .field("shards", &shards.len())
            .field("config", &self.config)
            .field(
                "health",
                &shards.iter().map(Shard::health).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl<P, M> ShardPool<P, M> {
    /// The current shard set. The outer read lock is held only for the
    /// `Arc` clone — never across shard-lock acquisition — so a
    /// rebalance's swap (outer write lock) can never deadlock against
    /// readers or writers parked on shard locks.
    fn shards(&self) -> Arc<Vec<Shard<P, M>>> {
        self.shards.read().clone()
    }

    /// The current shard set plus the swap generation it belongs to,
    /// read under one outer lock so the pair is consistent. Writers
    /// re-check the generation after acquiring a shard write lock: a
    /// mismatch means a rebalance swapped the set out from under them
    /// and the mutation must retry on the fresh snapshot (applying it
    /// to the superseded set would lose the write).
    fn snapshot(&self) -> (Arc<Vec<Shard<P, M>>>, u64) {
        let guard = self.shards.read();
        let generation = self.generation.load(Ordering::Acquire);
        (guard.clone(), generation)
    }
}

impl<P, M> ShardPool<P, M>
where
    P: Clone + Send + Sync,
    M: Metric<P> + Clone,
{
    /// Passes an update gets at the [`faults::sites::SHARD_MUTATE`]
    /// injection point: the first execution plus one retry after a
    /// successful in-line recovery.
    pub const MUTATE_ATTEMPTS: usize = 2;

    /// Rebuild attempts a recovery makes before giving up and leaving
    /// the shard `Quarantined`; attempts after a transient failure
    /// back off exponentially (0.2 ms, 0.4 ms, 0.8 ms, …).
    pub const RECOVERY_ATTEMPTS: usize = 4;

    /// Admission attempts a query gets at the
    /// [`faults::sites::QUERY`] injection point before failing with
    /// [`DivError::TransientFailure`]; retries back off exponentially.
    pub const QUERY_ATTEMPTS: usize = 3;

    /// An empty pool of `shards` engines with the default
    /// [`DynamicConfig`] and a [`RoundRobin`] router.
    ///
    /// # Panics
    /// Panics if `shards == 0` (`Task::serve` returns
    /// [`DivError::InvalidShards`] instead).
    pub fn new(metric: M, shards: usize) -> Self {
        Self::with_config(metric, DynamicConfig::default(), shards)
    }

    /// An empty pool with an explicit engine configuration (shared by
    /// every shard).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_config(metric: M, config: DynamicConfig, shards: usize) -> Self {
        assert!(shards >= 1, "a pool needs at least one shard");
        let engines = (0..shards)
            .map(|_| {
                let engine = DynamicDiversity::with_config(metric.clone(), config);
                Shard {
                    recovery: Mutex::new(RecoveryState {
                        base: engine.state(),
                        log: Vec::new(),
                    }),
                    engine: RwLock::new(engine),
                    health: AtomicU8::new(ShardHealth::Healthy as u8),
                    occupancy: AtomicUsize::new(0),
                }
            })
            .collect();
        let pool_id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        Self {
            shards: RwLock::new(Arc::new(engines)),
            metric,
            config,
            router: Box::new(RoundRobin::new()),
            runtime: MapReduceRuntime::with_threads(1),
            pool_id,
            gauge_names: occupancy_gauge_names(pool_id, shards),
            epoch: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            remap: RwLock::new(HashMap::new()),
            rebalance_ctl: Mutex::new(RebalanceCtl { last: None }),
            rebalances: AtomicU64::new(0),
            last_skew_before: AtomicU64::new(0),
            last_skew_after: AtomicU64::new(0),
            pending_router: None,
        }
    }

    /// Resumes a pool from a [`checkpoint`](Self::checkpoint). Every
    /// shard engine is rebuilt losslessly; queries on the restored
    /// pool are bit-identical to the pool that produced the state.
    ///
    /// The router starts as the default [`RoundRobin`]. When the
    /// checkpointed [`RouterState`] carries a matching kind its state
    /// (the cursor) is re-applied immediately; a state of a *different*
    /// kind — the pool was checkpointed under e.g. a `HashRouter` — is
    /// held aside and applied by [`with_router`](Self::with_router)
    /// when the matching router is re-attached, so no checkpointed
    /// router state is silently dropped.
    ///
    /// A corrupt state — no shards, shards checkpointed under
    /// different configurations, a router state stamped with a
    /// *different* shard count than the checkpoint holds (restoring it
    /// would mis-route every stable-id placement — e.g. a `HashRouter`
    /// hashing over the wrong `shards.len()`), a remap entry pointing
    /// at a shard the pool does not have, or a structurally
    /// inconsistent engine state (truncated/bit-flipped wire bytes) —
    /// returns [`DivError::CorruptState`] so the caller can keep its
    /// last good pool instead of aborting. States produced by
    /// `checkpoint` always restore.
    pub fn restore(metric: M, state: PoolState<P>) -> Result<Self, DivError> {
        if state.shards.is_empty() {
            return Err(DivError::CorruptState {
                reason: "pool checkpoint holds no shards".into(),
            });
        }
        if state.router.shards as usize != state.shards.len() {
            return Err(DivError::CorruptState {
                reason: format!(
                    "router state was checkpointed over {} shards but the pool holds {}",
                    state.router.shards,
                    state.shards.len()
                ),
            });
        }
        for entry in &state.remap {
            let to = ShardedId::decode(entry.to);
            if to.shard >= state.shards.len() {
                return Err(DivError::CorruptState {
                    reason: format!(
                        "remap entry {} -> {} points at shard {} of a {}-shard pool",
                        entry.from,
                        entry.to,
                        to.shard,
                        state.shards.len()
                    ),
                });
            }
        }
        let span = diversity_obs::span("serve.restore_ns");
        let config = DynamicConfig {
            epsilon: state.shards[0].epsilon,
            dim: state.shards[0].dim,
            max_depth: state.shards[0].max_depth,
        };
        let mut shards = Vec::with_capacity(state.shards.len());
        for (i, s) in state.shards.into_iter().enumerate() {
            if s.epsilon != config.epsilon || s.dim != config.dim || s.max_depth != config.max_depth
            {
                return Err(DivError::CorruptState {
                    reason: format!("shard {i} checkpointed under a different configuration"),
                });
            }
            let engine = DynamicDiversity::resume(metric.clone(), s.clone()).map_err(|e| {
                DivError::CorruptState {
                    reason: format!("shard {i}: {}", e.reason),
                }
            })?;
            shards.push(Shard {
                occupancy: AtomicUsize::new(engine.len()),
                recovery: Mutex::new(RecoveryState {
                    base: s,
                    log: Vec::new(),
                }),
                engine: RwLock::new(engine),
                health: AtomicU8::new(ShardHealth::Healthy as u8),
            });
        }
        let router = RoundRobin::new();
        let pending_router = if Router::<P>::restore(&router, &state.router) {
            None
        } else {
            Some(state.router)
        };
        let remap: HashMap<u64, u64> = state.remap.iter().map(|e| (e.from, e.to)).collect();
        let pool_id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let pool = Self {
            gauge_names: occupancy_gauge_names(pool_id, shards.len()),
            shards: RwLock::new(Arc::new(shards)),
            metric,
            config,
            router: Box::new(router),
            runtime: MapReduceRuntime::with_threads(1),
            pool_id,
            epoch: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            remap: RwLock::new(remap),
            rebalance_ctl: Mutex::new(RebalanceCtl { last: None }),
            rebalances: AtomicU64::new(0),
            last_skew_before: AtomicU64::new(0),
            last_skew_after: AtomicU64::new(0),
            pending_router,
        };
        drop(span);
        if diversity_obs::enabled() {
            // Publish the restored occupancy so the pool's gauges are
            // correct before any traffic arrives.
            for (shard, slot) in pool.shards().iter().enumerate() {
                diversity_obs::gauge_set(&pool.gauge_names[shard], slot.engine.read().len() as i64);
            }
        }
        Ok(pool)
    }

    /// Replaces the router (builder-style). Routing affects placement
    /// only, never soundness — see the type-level docs.
    ///
    /// When the pool was [restored](Self::restore) from a checkpoint
    /// whose router state belonged to a different kind, that held
    /// state is applied now if `router` matches it — re-attaching the
    /// checkpointed router picks up exactly where it left off.
    pub fn with_router(mut self, router: impl Router<P> + 'static) -> Self {
        if let Some(state) = &self.pending_router {
            if router.restore(state) {
                self.pending_router = None;
            }
        }
        self.router = Box::new(router);
        self
    }

    /// Checkpointed router state still awaiting its matching router
    /// (see [`restore`](Self::restore)); `None` once applied.
    pub fn pending_router_state(&self) -> Option<&RouterState> {
        self.pending_router.as_ref()
    }

    /// Number of shards (invariant across rebalances — only placement
    /// changes).
    pub fn num_shards(&self) -> usize {
        self.shards().len()
    }

    /// This pool's telemetry namespace prefix: every per-shard
    /// occupancy gauge is named `{gauge_prefix()}shard{i}.occupancy`.
    /// At any quiescent point,
    /// `Snapshot::gauge_prefix_sum(&pool.gauge_prefix())` equals
    /// [`len`](Self::len).
    pub fn gauge_prefix(&self) -> String {
        format!("serve.pool{}.", self.pool_id)
    }

    /// The health state of shard `shard`.
    pub fn shard_health(&self, shard: usize) -> ShardHealth {
        self.shards()[shard].health()
    }

    /// Every shard's health, in shard order.
    pub fn healths(&self) -> Vec<ShardHealth> {
        self.shards().iter().map(Shard::health).collect()
    }

    /// Number of shards currently `Healthy`.
    pub fn healthy_shards(&self) -> usize {
        self.shards()
            .iter()
            .filter(|s| s.health() == ShardHealth::Healthy)
            .count()
    }

    /// The pool's mutation epoch. Bumped under the touched shard's
    /// write lock on every acknowledged mutation and every shard
    /// health transition — anything that could change what a query
    /// would answer. Equal values from two reads bracketing an
    /// operation witness that the pool was quiescent in between;
    /// that is the key the network layer's query coalescing uses to
    /// share one extraction among concurrent identical queries.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Every shard's last-acknowledged occupancy, in shard order —
    /// read lock-free, so safe to poll from a rebalancing loop.
    /// Quarantined shards report the occupancy they last acknowledged
    /// (the population a recovery will restore), not zero.
    pub fn occupancies(&self) -> Vec<usize> {
        self.shards()
            .iter()
            .map(|s| s.occupancy.load(Ordering::Acquire))
            .collect()
    }

    /// The router's imbalance figure over the current
    /// [`occupancies`](Self::occupancies) ([`Router::skew`]; the
    /// default policy is max/mean — `1.0` is perfectly balanced, and
    /// an empty pool also reports `1.0`). This is what
    /// [`maybe_rebalance`](Self::maybe_rebalance) compares against its
    /// threshold.
    pub fn skew(&self) -> f64 {
        self.router.skew(&self.occupancies())
    }

    /// Alive points in shard `shard` (`0` while it is quarantined —
    /// quarantined shards are excluded from the serving population
    /// until they recover).
    pub fn shard_len(&self, shard: usize) -> usize {
        let shards = self.shards();
        let slot = &shards[shard];
        if slot.health() != ShardHealth::Healthy {
            return 0;
        }
        let len = slot.engine.read().len();
        len
    }

    /// Total alive points across the **healthy** shards — the
    /// population queries currently certify. Under concurrent writers
    /// this is a momentary sum (shards are read one at a time).
    /// Quarantined shards rejoin the count when they recover; their
    /// last-acknowledged occupancy is still visible to degraded
    /// answers' coverage accounting ([`Degradation::coverage`]).
    pub fn len(&self) -> usize {
        self.shards()
            .iter()
            .filter(|s| s.health() == ShardHealth::Healthy)
            .map(|s| s.engine.read().len())
            .sum()
    }

    /// `true` when every healthy shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The engine configuration every shard was built with.
    pub fn config(&self) -> &DynamicConfig {
        &self.config
    }

    /// Inserts a point, routing it through the pool's [`Router`].
    /// Takes one shard's write lock; other shards (and readers of
    /// other shards) proceed untouched.
    ///
    /// When the routed shard is quarantined, an in-line recovery is
    /// attempted first; [`DivError::ShardUnavailable`] means the shard
    /// could not be recovered (the rest of the pool keeps serving —
    /// there is no silent re-route, so placement stays deterministic).
    pub fn insert(&self, point: P) -> Result<ShardedId, DivError> {
        let shard = self.router.route(&point, self.num_shards());
        self.insert_to(shard, point)
    }

    /// Inserts into an explicit shard, bypassing the router (how
    /// `Task::serve_seeded` replays a partitioning).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn insert_to(&self, shard: usize, point: P) -> Result<ShardedId, DivError> {
        match self.mutate(shard, Op::Insert(point))? {
            MutOutcome::Inserted(id) => Ok(ShardedId { shard, id }),
            MutOutcome::Deleted(_) => unreachable!("insert ops produce insert outcomes"),
        }
    }

    /// Inserts many points through the router, returning their
    /// handles. Stops at the first unavailable shard.
    pub fn extend(&self, points: impl IntoIterator<Item = P>) -> Result<Vec<ShardedId>, DivError> {
        points.into_iter().map(|p| self.insert(p)).collect()
    }

    /// Deletes an alive point; `Ok(false)` when the handle was already
    /// gone (or its shard index is out of range). Like
    /// [`insert`](Self::insert), a quarantined shard is recovered
    /// in-line first or the delete fails with
    /// [`DivError::ShardUnavailable`] — in which case the point is
    /// still alive (the operation was not applied).
    ///
    /// Handles issued before a [`rebalance`](Self::rebalance) are
    /// [resolved](Self::resolve) through the remap table first, so
    /// pre-rebalance ids keep deleting the point they named.
    pub fn delete(&self, id: ShardedId) -> Result<bool, DivError> {
        loop {
            let generation = self.generation.load(Ordering::Acquire);
            let resolved = self.resolve(id);
            if resolved.shard >= self.num_shards() {
                return Ok(false);
            }
            let deleted = match self.mutate(resolved.shard, Op::Delete(resolved.id))? {
                MutOutcome::Deleted(deleted) => deleted,
                MutOutcome::Inserted(_) => unreachable!("delete ops produce delete outcomes"),
            };
            if deleted || self.generation.load(Ordering::Acquire) == generation {
                return Ok(deleted);
            }
            // A rebalance committed between resolving the handle and
            // applying the delete, so the miss may be an artifact of
            // the stale resolution. Re-resolve against the fresh remap
            // table and retry (a *successful* delete is never retried).
        }
    }

    /// Follows the rebalance remap table: the current [`ShardedId`] of
    /// the point `id` named when it was issued. Ids the table does not
    /// know — ids issued after the last rebalance, ids of points that
    /// died before one, out-of-range hand-built ids — pass through
    /// unchanged (and then simply miss, since rebuilt id spaces never
    /// reuse pre-rebalance ids). One lookup suffices however many
    /// rebalances have happened: each commit folds the new hop into
    /// the table instead of chaining.
    pub fn resolve(&self, id: ShardedId) -> ShardedId {
        let Ok(key) = id.try_encode() else {
            return id;
        };
        match self.remap.read().get(&key) {
            Some(&to) => ShardedId::decode(to),
            None => id,
        }
    }

    /// Quarantines a shard administratively — e.g. to drain it for
    /// maintenance or to fence a suspect replica. Queries degrade
    /// around it exactly as after a caught panic;
    /// [`recover`](Self::recover) (or the next update routed to it)
    /// brings it back with no data loss.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn quarantine(&self, shard: usize) {
        loop {
            let (shards, generation) = self.snapshot();
            let slot = &shards[shard];
            // Under the write lock so the transition cannot interleave
            // with a mutation's own health handling.
            let _guard = slot.engine.write();
            if self.generation.load(Ordering::Acquire) != generation {
                // A rebalance swapped the set while we waited for the
                // lock; fencing the superseded shard would be a no-op.
                continue;
            }
            slot.set_health(ShardHealth::Quarantined);
            self.bump_epoch();
            diversity_obs::count("serve.quarantines", 1);
            return;
        }
    }

    /// Recovers shard `shard` if it is quarantined: rebuilds the
    /// engine from the last checkpoint plus the acknowledged-operation
    /// log (no acknowledged write is lost), with bounded exponential
    /// backoff across transient faults. No-op on a healthy shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn recover(&self, shard: usize) -> Result<(), DivError> {
        loop {
            let (shards, generation) = self.snapshot();
            let slot = &shards[shard];
            if slot.health() == ShardHealth::Healthy {
                return Ok(());
            }
            let mut engine = slot.engine.write();
            if self.generation.load(Ordering::Acquire) != generation {
                drop(engine); // superseded set; re-check the fresh one
                continue;
            }
            if slot.health() == ShardHealth::Healthy {
                return Ok(()); // someone else recovered while we waited
            }
            return self.recover_locked(slot, shard, &mut engine);
        }
    }

    /// Recovers every non-healthy shard ([`recover`](Self::recover)),
    /// returning the first failure.
    pub fn recover_all(&self) -> Result<(), DivError> {
        for shard in 0..self.num_shards() {
            self.recover(shard)?;
        }
        Ok(())
    }

    /// Rebuilds a shard's engine from `checkpoint + log` while holding
    /// its write lock. `Healthy` on success; `Quarantined` (and a
    /// typed error) when transient faults exhaust the backoff budget
    /// or the recovery material itself is corrupt.
    fn recover_locked(
        &self,
        slot: &Shard<P, M>,
        shard: usize,
        engine: &mut DynamicDiversity<P, M>,
    ) -> Result<(), DivError> {
        slot.set_health(ShardHealth::Recovering);
        let started = Instant::now();
        for attempt in 1..=Self::RECOVERY_ATTEMPTS {
            if faults::should_fail(faults::sites::RECOVERY) {
                if attempt == Self::RECOVERY_ATTEMPTS {
                    slot.set_health(ShardHealth::Quarantined);
                    return Err(DivError::TransientFailure {
                        site: faults::sites::RECOVERY.into(),
                    });
                }
                // Bounded exponential backoff: 0.2 ms, 0.4 ms, 0.8 ms.
                std::thread::sleep(Duration::from_micros(200 << (attempt - 1)));
                continue;
            }
            let recovery = slot.recovery.lock();
            let mut rebuilt =
                match DynamicDiversity::resume(self.metric.clone(), recovery.base.clone()) {
                    Ok(rebuilt) => rebuilt,
                    Err(e) => {
                        slot.set_health(ShardHealth::Quarantined);
                        return Err(DivError::CorruptState {
                            reason: format!("shard {shard} recovery checkpoint: {}", e.reason),
                        });
                    }
                };
            // Replay every acknowledged mutation since the checkpoint;
            // id assignment is deterministic, so the rebuilt engine is
            // bit-identical to one that never failed.
            for op in &recovery.log {
                match op {
                    Op::Insert(p) => {
                        rebuilt.insert(p.clone());
                    }
                    Op::Delete(id) => {
                        rebuilt.delete(*id);
                    }
                }
            }
            let occupancy = rebuilt.len();
            *engine = rebuilt;
            drop(recovery);
            slot.occupancy.store(occupancy, Ordering::Release);
            slot.set_health(ShardHealth::Healthy);
            self.bump_epoch();
            diversity_obs::observe("serve.recovery_ns", started.elapsed().as_nanos() as u64);
            diversity_obs::count("serve.recoveries", 1);
            if diversity_obs::enabled() {
                diversity_obs::gauge_set(&self.gauge_names[shard], occupancy as i64);
            }
            return Ok(());
        }
        unreachable!("the attempt loop returns on success or exhaustion")
    }

    /// Applies one mutation to a shard with panic isolation: the
    /// engine call runs under `catch_unwind` (the
    /// [`faults::sites::SHARD_MUTATE`] injection point fires inside
    /// the guarded scope), so a panicking mutation quarantines the
    /// shard — while the write lock is still held, before the
    /// half-mutated engine could become visible — and triggers an
    /// immediate recovery + one retry of the operation.
    fn mutate(&self, shard: usize, op: Op<P>) -> Result<MutOutcome, DivError> {
        let mut attempt = 1;
        loop {
            let (shards, generation) = self.snapshot();
            let slot = &shards[shard];
            // A quarantined shard gets an in-line recovery before the
            // operation is applied (or refused).
            if slot.health() != ShardHealth::Healthy {
                self.recover(shard)
                    .map_err(|_| DivError::ShardUnavailable { shard })?;
            }
            let obs = diversity_obs::enabled();
            let t0 = Instant::now();
            let mut engine = slot.engine.write();
            let acquired = Instant::now();
            if self.generation.load(Ordering::Acquire) != generation {
                // A rebalance swapped the shard set while we waited
                // for the lock: applying the op to the superseded
                // engine would silently lose the write. Retry on the
                // fresh snapshot (does not consume a fault attempt).
                drop(engine);
                continue;
            }
            if slot.health() != ShardHealth::Healthy {
                // Quarantined while we waited for the lock; loop back
                // through recovery.
                drop(engine);
                continue;
            }
            faults::slow_point(faults::sites::LOCK_HOLD);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                faults::panic_point(faults::sites::SHARD_MUTATE);
                match &op {
                    Op::Insert(p) => MutOutcome::Inserted(engine.insert(p.clone())),
                    Op::Delete(id) => MutOutcome::Deleted(engine.delete(*id)),
                }
            }));
            match outcome {
                Ok(out) => {
                    // Acknowledge: log the op for recovery, publish
                    // occupancy — all before the lock drops, so
                    // recovery material and gauges stay in lock order.
                    {
                        let mut recovery = slot.recovery.lock();
                        recovery.log.push(match (&op, &out) {
                            (Op::Insert(p), _) => Op::Insert(p.clone()),
                            (Op::Delete(id), _) => Op::Delete(*id),
                        });
                    }
                    slot.occupancy.store(engine.len(), Ordering::Release);
                    self.bump_epoch();
                    if obs {
                        diversity_obs::gauge_set(&self.gauge_names[shard], engine.len() as i64);
                    }
                    drop(engine);
                    if obs {
                        diversity_obs::observe(
                            "serve.lock.write_wait_ns",
                            (acquired - t0).as_nanos() as u64,
                        );
                        diversity_obs::observe(
                            "serve.lock.write_hold_ns",
                            acquired.elapsed().as_nanos() as u64,
                        );
                    }
                    return Ok(out);
                }
                Err(_panic) => {
                    // The engine may be half-mutated; fence it before
                    // anyone else can observe it, then rebuild in
                    // place (still under the write lock).
                    slot.set_health(ShardHealth::Quarantined);
                    self.bump_epoch();
                    diversity_obs::count("serve.quarantines", 1);
                    let recovered = self.recover_locked(slot, shard, &mut engine);
                    drop(engine);
                    if recovered.is_err() || attempt == Self::MUTATE_ATTEMPTS {
                        return Err(DivError::ShardUnavailable { shard });
                    }
                    // Recovered: retry the operation once.
                    attempt += 1;
                }
            }
        }
    }

    /// The point behind an alive handle, cloned out under the shard's
    /// read lock. `None` while the owning shard is quarantined.
    /// Pre-rebalance handles are [resolved](Self::resolve) through the
    /// remap table first.
    pub fn point(&self, id: ShardedId) -> Option<P> {
        // Resolve while holding the outer read lock: a rebalance
        // commits its swap *and* its remap update under the outer
        // write lock, so the (shard set, resolution) pair read here can
        // never straddle a swap.
        let (shards, id) = {
            let guard = self.shards.read();
            (guard.clone(), self.resolve(id))
        };
        let slot = shards.get(id.shard)?;
        if slot.health() != ShardHealth::Healthy {
            return None;
        }
        let point = slot.engine.read().point(id.id).cloned();
        point
    }

    /// Snapshot of all alive `(handle, point)` pairs across the
    /// **healthy** shards, shard by shard — the population a query's
    /// certificate covers right now.
    pub fn alive(&self) -> Vec<(ShardedId, P)> {
        let mut out = Vec::new();
        let shards = self.shards();
        for (shard, slot) in shards.iter().enumerate() {
            if slot.health() != ShardHealth::Healthy {
                continue;
            }
            out.extend(
                slot.engine
                    .read()
                    .alive()
                    .into_iter()
                    .map(|(id, p)| (ShardedId { shard, id }, p)),
            );
        }
        out
    }

    /// Per-shard cumulative update-work counters (healthy shards;
    /// quarantined shards report the zero default until they recover —
    /// recovery rebuilds the engine, which restarts its counters).
    pub fn shard_stats(&self) -> Vec<UpdateStats> {
        self.shards()
            .iter()
            .map(|s| {
                if s.health() == ShardHealth::Healthy {
                    *s.engine.read().stats()
                } else {
                    UpdateStats::default()
                }
            })
            .collect()
    }

    /// Exhaustively validates every healthy shard's cover invariants
    /// (test support; `O(n²)` per shard).
    pub fn validate(&self) {
        for shard in self.shards().iter() {
            if shard.health() == ShardHealth::Healthy {
                shard.engine.read().validate();
            }
        }
    }

    /// Extracts core-sets from every shard able to answer (read locks,
    /// one shard at a time) with provenance rewritten to encoded
    /// [`ShardedId`]s. A shard drops out — into `skipped` — when it is
    /// quarantined, the deadline has passed (or its read lock could
    /// not be acquired in time), or its extraction panics (which also
    /// quarantines it).
    fn extract_shards(
        &self,
        problem: Problem,
        k: usize,
        k_prime: usize,
        deadline: Option<Duration>,
    ) -> Extraction<P> {
        let started = Instant::now();
        // One whole query runs against one snapshot: a rebalance
        // mid-extraction swaps the pool's set, but this query keeps
        // reading the generation it started on (the old shards stay
        // alive behind the `Arc` until the last in-flight reader is
        // done), so the merged certificate never mixes two partitions
        // of the same points.
        let shards = self.shards();
        let mut ex = Extraction {
            shards_total: shards.len(),
            artifacts: Vec::with_capacity(shards.len()),
            skipped: Vec::new(),
            total: 0,
            max_shard: 0,
            lock_wait_secs: 0.0,
            skipped_occupancy: 0,
        };
        let skip = |ex: &mut Extraction<P>, shard: usize, slot: &Shard<P, M>| {
            ex.skipped.push(shard);
            ex.skipped_occupancy += slot.occupancy.load(Ordering::Acquire);
        };
        for (shard, slot) in shards.iter().enumerate() {
            if slot.health() != ShardHealth::Healthy {
                skip(&mut ex, shard, slot);
                continue;
            }
            let t0 = Instant::now();
            let engine = match deadline {
                None => slot.engine.read(),
                Some(budget) => {
                    // A shard whose turn comes at or past the deadline
                    // is skipped outright.
                    if started.elapsed() >= budget {
                        skip(&mut ex, shard, slot);
                        continue;
                    }
                    // Bounded acquisition: a straggler holding the
                    // write lock must not stall the whole query.
                    let mut guard = slot.engine.try_read();
                    while guard.is_none() && started.elapsed() < budget {
                        std::thread::yield_now();
                        guard = slot.engine.try_read();
                    }
                    match guard {
                        Some(g) => g,
                        None => {
                            skip(&mut ex, shard, slot);
                            continue;
                        }
                    }
                }
            };
            let acquired = Instant::now();
            ex.lock_wait_secs += (acquired - t0).as_secs_f64();
            // Re-check under the lock: a mutation that panicked while
            // we waited has quarantined (and maybe not yet recovered)
            // this engine.
            if slot.health() != ShardHealth::Healthy {
                drop(engine);
                skip(&mut ex, shard, slot);
                continue;
            }
            let n_s = engine.len();
            let art = if engine.is_empty() {
                // A drained shard contributes the merge identity.
                Some(Coreset::empty(k_prime))
            } else {
                // Extraction is read-only, but a panic here (a bug, or
                // corruption that slipped past the health fence) must
                // cost this shard's contribution, not the process.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    engine.extract_coreset(problem, k, k_prime)
                }))
                .ok()
            };
            drop(engine); // provenance rewrite needs no lock
            if diversity_obs::enabled() {
                diversity_obs::observe(
                    "serve.lock.read_wait_ns",
                    (acquired - t0).as_nanos() as u64,
                );
                diversity_obs::observe(
                    "serve.lock.read_hold_ns",
                    acquired.elapsed().as_nanos() as u64,
                );
            }
            let Some(art) = art else {
                slot.set_health(ShardHealth::Quarantined);
                self.bump_epoch();
                diversity_obs::count("serve.quarantines", 1);
                skip(&mut ex, shard, slot);
                continue;
            };
            ex.total += n_s;
            ex.max_shard = ex.max_shard.max(n_s);
            ex.artifacts.push(art.map_sources(|raw| {
                ShardedId {
                    shard,
                    id: PointId::from_raw(raw),
                }
                .encode()
            }));
        }
        ex
    }

    /// The merged warm-path core-set a [`query`](Self::query) for
    /// `(problem, k, k_prime)` would solve on: per-shard extractions
    /// of every shard currently able to answer, composed by
    /// [`Coreset::merge`], radius = max of the shard radii, sources =
    /// encoded [`ShardedId`]s. With quarantined shards present this is
    /// the *surviving* core-set — exactly what a degraded answer's
    /// certificate is scoped to. Exposed for certificate audits
    /// (`coreset.certifies(&alive_points, ..)`) and tests.
    pub fn coreset(&self, problem: Problem, k: usize, k_prime: usize) -> Coreset<P> {
        let ex = self.extract_shards(problem, k, k_prime, None);
        Coreset::merge_all(ex.artifacts).unwrap_or_else(|| Coreset::empty(k_prime))
    }

    /// Answers a [`Task`] on the **warm path**: extraction-only reads
    /// of the maintained shard structures, composed through
    /// [`Coreset::merge`] and solved by the shared 2-round combiner —
    /// the same data path as `Task::run_sharded`, minus the per-query
    /// engine builds. Returns the standard [`Report`] with
    /// [`Backend::ShardedDynamic`], the composed radius certificate in
    /// `coreset_radius`, and indices/provenance in encoded
    /// [`ShardedId`] space ([`ShardedId::decode`] recovers the shard
    /// and engine handle).
    ///
    /// Budget resolution matches [`Task::run_dynamic`]
    /// ([`Task::dynamic_k_prime`]): `Auto` defers to the shards' own
    /// [`DynamicConfig`] sizing rather than sampling the data (the
    /// warm path never rescans points). Like the other dynamic-backed
    /// paths, no `(α+ε)` certificate is attached — the per-query
    /// composed radius is the honest accuracy witness.
    ///
    /// When shards are quarantined the answer **degrades** instead of
    /// failing: the surviving shards' artifacts merge, and the report
    /// carries [`Degradation`] scoping the certificate to the
    /// survivors (see the type-level docs). Only a pool with *no*
    /// answering shard errors, with [`DivError::PoolUnavailable`].
    pub fn query(&self, task: &Task) -> Result<Report<P>, DivError> {
        self.query_opts(task, None)
    }

    /// [`query`](Self::query) under a wall-clock budget: shards whose
    /// read lock cannot be acquired before `deadline` elapses (or
    /// whose turn comes after it) are skipped, degrading the answer
    /// rather than stalling it. The deadline bounds the *extraction*
    /// phase — lock acquisition and per-shard reads; the final
    /// combiner solve on the (small) merged core-set always runs to
    /// completion, so answers past the deadline are still certified.
    pub fn query_within(&self, task: &Task, deadline: Duration) -> Result<Report<P>, DivError> {
        self.query_opts(task, Some(deadline))
    }

    fn query_opts(&self, task: &Task, deadline: Option<Duration>) -> Result<Report<P>, DivError> {
        let k = task.k();
        if k == 0 {
            return Err(DivError::InvalidK { k, n: None });
        }
        let problem = task.problem();
        let k_prime = task.dynamic_k_prime(&self.config)?;

        // Admission: transient failures retry with bounded backoff
        // (0.1 ms, 0.2 ms) before surfacing as a typed error.
        for attempt in 1..=Self::QUERY_ATTEMPTS {
            if !faults::should_fail(faults::sites::QUERY) {
                break;
            }
            if attempt == Self::QUERY_ATTEMPTS {
                return Err(DivError::TransientFailure {
                    site: faults::sites::QUERY.into(),
                });
            }
            std::thread::sleep(Duration::from_micros(100 << (attempt - 1)));
        }

        let e2e = diversity_obs::span("serve.query.e2e_ns");
        let t0 = Instant::now();
        let ex = self.extract_shards(problem, k, k_prime, deadline);
        let extract_secs = t0.elapsed().as_secs_f64();
        if diversity_obs::enabled() {
            diversity_obs::observe("serve.extract_ns", (extract_secs * 1e9) as u64);
        }
        let shards_total = ex.shards_total;
        let shards_answered = shards_total - ex.skipped.len();
        if shards_answered == 0 {
            return Err(DivError::PoolUnavailable {
                healthy: 0,
                total: shards_total,
            });
        }
        if ex.total == 0 {
            // Nothing alive among the answering shards: an empty pool
            // when full coverage, otherwise an unanswerable query (the
            // points that exist are all behind skipped shards).
            return if ex.skipped.is_empty() {
                Err(DivError::EmptyInput)
            } else {
                Err(DivError::PoolUnavailable {
                    healthy: shards_answered,
                    total: shards_total,
                })
            };
        }
        if k > ex.total {
            return Err(DivError::InvalidK {
                k,
                n: Some(ex.total),
            });
        }
        let degradation = if ex.skipped.is_empty() {
            None
        } else {
            diversity_obs::count("serve.query.degraded", 1);
            let known = ex.total + ex.skipped_occupancy;
            Some(Degradation {
                shards_answered,
                shards_total,
                skipped_shards: ex.skipped.clone(),
                coverage: if known == 0 {
                    1.0
                } else {
                    ex.total as f64 / known as f64
                },
            })
        };

        let union = Coreset::merge_all(ex.artifacts).expect("at least one shard answered");
        // Keep (source, point) pairs to recover the selected points
        // after the solve without re-locking the shards — a concurrent
        // writer may have deleted a selected point by then, but it was
        // alive in the extraction this answer certifies.
        let lookup: Vec<(u64, P)> = union
            .sources()
            .iter()
            .copied()
            .zip(union.points().iter().cloned())
            .collect();
        let (solution, solve_input_size, coreset_radius, round_stats) = solve_union(
            problem,
            union,
            &self.metric,
            k,
            &self.runtime,
            "combine:solve",
        );

        let mut points = Vec::with_capacity(solution.indices.len());
        for &encoded in &solution.indices {
            let point = lookup
                .iter()
                .find(|(src, _)| *src == encoded as u64)
                .map(|(_, p)| p.clone())
                .ok_or_else(|| DivError::CorruptState {
                    reason: format!("combiner selected {encoded}, absent from the union's sources"),
                })?;
            points.push(point);
        }

        // End the e2e span before snapshotting so this very query is
        // already in the histogram the report carries.
        drop(e2e);
        let report = Report {
            problem,
            backend: Backend::ShardedDynamic,
            k,
            k_prime,
            coreset_size: solve_input_size,
            coreset_radius: Some(coreset_radius),
            indices: solution.indices,
            points,
            value: solution.value,
            timings: vec![
                StageTiming {
                    stage: "warm-extract".into(),
                    secs: extract_secs,
                },
                // Component of warm-extract spent *waiting* for shard
                // read locks — the contention share of warm latency.
                // Row names are pinned in `tests/serve_pool.rs`.
                StageTiming {
                    stage: "warm-lock-wait".into(),
                    secs: ex.lock_wait_secs,
                },
                StageTiming {
                    stage: round_stats.name.clone(),
                    secs: round_stats.wall.as_secs_f64(),
                },
            ],
            memory: vec![
                StageMemory {
                    stage: "warm-extract".into(),
                    reducers: shards_answered,
                    max_local_points: ex.max_shard,
                    total_points: ex.total,
                    emitted_points: solve_input_size,
                },
                StageMemory {
                    stage: round_stats.name.clone(),
                    reducers: round_stats.reducers,
                    max_local_points: round_stats.max_local_points,
                    total_points: round_stats.total_points,
                    emitted_points: round_stats.emitted_points,
                },
            ],
            certificate: None,
            degradation,
            telemetry: diversity_obs::snapshot(),
        };
        Ok(report)
    }

    /// Snapshots every shard into a serde-able [`PoolState`]. Shards
    /// are locked one at a time: the snapshot is per-shard consistent;
    /// take it at a quiescent point for a cross-shard-exact image.
    ///
    /// The checkpoint doubles as each shard's recovery baseline: the
    /// acknowledged-operation log is folded into it and truncated, so
    /// periodic checkpoints bound both recovery replay time and log
    /// memory. Quarantined shards are recovered first (their state is
    /// fully reconstructible); a shard that cannot be recovered fails
    /// the checkpoint with the recovery's typed error.
    pub fn checkpoint(&self) -> Result<PoolState<P>, DivError> {
        let _span = diversity_obs::span("serve.checkpoint_ns");
        'restart: loop {
            let (shards, generation) = self.snapshot();
            let mut states = Vec::with_capacity(shards.len());
            for (shard, slot) in shards.iter().enumerate() {
                self.recover(shard)?;
                let engine = slot.engine.read();
                if self.generation.load(Ordering::Acquire) != generation {
                    // A rebalance landed mid-walk: states imaged so far
                    // belong to the superseded partition and mixing
                    // generations could snapshot a point twice. Start
                    // over on the fresh set.
                    drop(engine);
                    continue 'restart;
                }
                let state = engine.state();
                // Refresh the recovery baseline under the engine lock so
                // no acknowledged op can slip between state and log
                // truncation.
                let mut recovery = slot.recovery.lock();
                recovery.base = state.clone();
                recovery.log.clear();
                drop(recovery);
                drop(engine);
                states.push(state);
            }
            let mut router = self.router.checkpoint();
            router.shards = states.len() as u64;
            return Ok(PoolState {
                shards: states,
                router,
                remap: self.remap_entries(),
            });
        }
    }

    /// The live remap table as sorted [`RemapEntry`] rows (what
    /// checkpoints persist).
    fn remap_entries(&self) -> Vec<RemapEntry> {
        let mut entries: Vec<RemapEntry> = self
            .remap
            .read()
            .iter()
            .map(|(&from, &to)| RemapEntry { from, to })
            .collect();
        entries.sort_by_key(|e| e.from);
        entries
    }

    /// [`checkpoint`](Self::checkpoint) with **quiesced writers**: all
    /// shard write locks are acquired (in shard order, so two
    /// concurrent consistent checkpoints cannot deadlock each other or
    /// the one-lock-at-a-time paths) before any shard is imaged, so
    /// the snapshot is an exact cross-shard image — no concurrent
    /// mutation can land between imaging shard `A` and shard `B`.
    /// Restoring it yields a pool bit-identical to this one at the
    /// moment of the snapshot, even when taken mid-churn.
    ///
    /// The cost is availability: writers to *every* shard block for
    /// the duration (readers too — the engines sit behind `RwLock`s).
    /// Use the plain [`checkpoint`](Self::checkpoint) when per-shard
    /// consistency is enough. Like `checkpoint`, quarantined shards
    /// are recovered first and each shard's recovery baseline is
    /// refreshed (log folded in and truncated).
    pub fn checkpoint_consistent(&self) -> Result<PoolState<P>, DivError> {
        let _span = diversity_obs::span("serve.checkpoint_consistent_ns");
        loop {
            let (shards, generation) = self.snapshot();
            // Recovery needs the write lock itself, so run it before
            // the global acquisition pass.
            self.recover_all()?;
            let mut guards = Vec::with_capacity(shards.len());
            for slot in shards.iter() {
                guards.push(slot.engine.write());
            }
            if self.generation.load(Ordering::Acquire) != generation {
                // A rebalance swapped the set while we were acquiring:
                // these locks fence the superseded shards. Retry on
                // the fresh set.
                drop(guards);
                continue;
            }
            // Health transitions happen under shard write locks, all of
            // which we now hold — but one may have slipped in between
            // recover_all and our acquisition. Recover in place.
            for (shard, guard) in guards.iter_mut().enumerate() {
                if shards[shard].health() != ShardHealth::Healthy {
                    self.recover_locked(&shards[shard], shard, &mut *guard)?;
                }
            }
            let mut states = Vec::with_capacity(shards.len());
            for (shard, guard) in guards.iter().enumerate() {
                let state = guard.state();
                let mut recovery = shards[shard].recovery.lock();
                recovery.base = state.clone();
                recovery.log.clear();
                drop(recovery);
                states.push(state);
            }
            diversity_obs::count("serve.checkpoints.consistent", 1);
            let mut router = self.router.checkpoint();
            router.shards = states.len() as u64;
            return Ok(PoolState {
                shards: states,
                router,
                remap: self.remap_entries(),
            });
        }
    }

    /// Rolling rebalance counters — committed rebalances plus the skew
    /// the most recent one saw before/after (zeroes before the first).
    /// This is what the network layer's `Stats` reply reports.
    pub fn rebalance_stats(&self) -> RebalanceStats {
        RebalanceStats {
            rebalances: self.rebalances.load(Ordering::Acquire),
            last_skew_before: f64::from_bits(self.last_skew_before.load(Ordering::Acquire)),
            last_skew_after: f64::from_bits(self.last_skew_after.load(Ordering::Acquire)),
        }
    }

    /// Rebalances the pool unconditionally (no threshold or pacing
    /// check — that is [`maybe_rebalance`](Self::maybe_rebalance)):
    /// quiesce, re-partition, swap. See `rebalance_locked` for the
    /// protocol and the soundness argument.
    pub fn rebalance(&self) -> Result<RebalanceReport, DivError> {
        let mut ctl = self.rebalance_ctl.lock();
        self.rebalance_locked(&mut ctl)
    }

    /// Rebalances iff [`skew`](Self::skew) has reached
    /// `config.threshold` **and** at least `config.min_interval_ms` has
    /// passed since the last committed rebalance. `Ok(None)` when
    /// either gate holds the pool back — the cheap, always-safe call a
    /// serving loop makes after every write burst. Concurrent callers
    /// serialize on the rebalance lock, so a churn storm triggers one
    /// rebalance per interval, not one per caller.
    pub fn maybe_rebalance(
        &self,
        config: &RebalanceConfig,
    ) -> Result<Option<RebalanceReport>, DivError> {
        let mut ctl = self.rebalance_ctl.lock();
        if self.skew() < config.threshold {
            return Ok(None);
        }
        if let Some(last) = ctl.last {
            if last.elapsed() < Duration::from_millis(config.min_interval_ms) {
                return Ok(None);
            }
        }
        self.rebalance_locked(&mut ctl).map(Some)
    }

    /// The live rebalance protocol, under the rebalance lock:
    ///
    /// 1. **Quiesce** — recover every shard, then take every shard
    ///    write lock in shard order (the `checkpoint_consistent`
    ///    discipline), fencing writers. In-flight *readers* that
    ///    already hold their snapshot keep extracting from the old
    ///    shards — the old set stays alive behind its `Arc` until the
    ///    last of them is done.
    /// 2. **Cut** — image every shard into a consistent [`PoolState`].
    /// 3. **Re-partition** — [`rebalance_state`]: greedy largest-first
    ///    reassignment, rebuilt engines, composed remap table. Runs
    ///    under `catch_unwind` with the [`faults::sites::REBALANCE`]
    ///    injection point inside, and nothing observable mutates until
    ///    step 5 — an injected panic (or any error) leaves the old pool
    ///    serving bit-identical answers: rebalance is **all-or-nothing**.
    /// 4. **Rebuild** — resume one engine per re-partitioned shard.
    /// 5. **Commit** — under the outer `shards` write lock: swap the
    ///    `Arc`, bump the swap generation (stale writers retry), fold
    ///    the remap table, bump the mutation epoch (a coalesced
    ///    follower can never be handed a pre-swap extraction), stamp
    ///    the pacing clock, publish telemetry. Pure moves and atomic
    ///    stores — this step cannot fail.
    ///
    /// ## Soundness (Definition 2)
    ///
    /// The paper states core-set composability for **arbitrary**
    /// partitions: the union of per-shard core-sets is a lawful
    /// core-set of the union of the shards, radius `max_i r_i`,
    /// regardless of which shard holds which point. The cut taken in
    /// step 2 is exact (all write locks held), the re-partition holds
    /// the same multiset of points, and the rebuilt engines are
    /// deterministic given the cut — so every quiescent query after the
    /// swap answers bit-identically to a never-rebalanced pool restored
    /// from the same cut, and its merged radius certificate certifies
    /// the same ground truth. Only placement (and therefore skew)
    /// changes.
    fn rebalance_locked(&self, ctl: &mut RebalanceCtl) -> Result<RebalanceReport, DivError> {
        let _span = diversity_obs::span("serve.rebalance_ns");
        let skew_before = self.skew();
        // Only a rebalance commit swaps the shard set, and we hold the
        // rebalance lock — this snapshot cannot be superseded beneath us.
        let shards = self.shards();
        self.recover_all()?;
        let mut guards = Vec::with_capacity(shards.len());
        for slot in shards.iter() {
            guards.push(slot.engine.write());
        }
        // Writers are fenced from here to the commit: that scope is the
        // pause the report charges to the rebalance.
        let pause_started = Instant::now();
        for (shard, guard) in guards.iter_mut().enumerate() {
            if shards[shard].health() != ShardHealth::Healthy {
                self.recover_locked(&shards[shard], shard, &mut *guard)?;
            }
        }
        let mut states = Vec::with_capacity(shards.len());
        for guard in guards.iter() {
            states.push(guard.state());
        }
        let mut router = self.router.checkpoint();
        router.shards = states.len() as u64;
        let cut = PoolState {
            shards: states,
            router,
            remap: self.remap_entries(),
        };
        let repartitioned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            faults::panic_point(faults::sites::REBALANCE);
            rebalance_state(&self.metric, &cut)
        }));
        let (next, fresh) = match repartitioned {
            Ok(result) => result?,
            Err(_panic) => {
                return Err(DivError::TransientFailure {
                    site: faults::sites::REBALANCE.into(),
                });
            }
        };
        let mut new_shards = Vec::with_capacity(next.shards.len());
        for (i, s) in next.shards.into_iter().enumerate() {
            let engine = DynamicDiversity::resume(self.metric.clone(), s.clone()).map_err(|e| {
                DivError::CorruptState {
                    reason: format!("rebalanced shard {i}: {}", e.reason),
                }
            })?;
            new_shards.push(Shard {
                occupancy: AtomicUsize::new(engine.len()),
                recovery: Mutex::new(RecoveryState {
                    base: s,
                    log: Vec::new(),
                }),
                engine: RwLock::new(engine),
                health: AtomicU8::new(ShardHealth::Healthy as u8),
            });
        }
        let occupancies: Vec<usize> = new_shards
            .iter()
            .map(|s| s.occupancy.load(Ordering::Relaxed))
            .collect();
        let skew_after = self.router.skew(&occupancies);

        // Commit. Everything below is moves and atomic stores — no
        // fallible operation may appear past this comment. The remap
        // fold happens under the outer write lock so resolution and
        // shard set can never be observed straddling the swap.
        {
            let mut live = self.shards.write();
            *live = Arc::new(new_shards);
            self.generation.fetch_add(1, Ordering::AcqRel);
            let mut table = self.remap.write();
            *table = next.remap.iter().map(|e| (e.from, e.to)).collect();
            drop(table);
            self.bump_epoch();
        }
        let pause = pause_started.elapsed();
        drop(guards); // the superseded set; last in-flight reader frees it
        ctl.last = Some(Instant::now());
        self.rebalances.fetch_add(1, Ordering::AcqRel);
        self.last_skew_before
            .store(skew_before.to_bits(), Ordering::Release);
        self.last_skew_after
            .store(skew_after.to_bits(), Ordering::Release);
        diversity_obs::count("serve.rebalances", 1);
        diversity_obs::count("serve.ids_remapped", fresh.len() as u64);
        if diversity_obs::enabled() {
            for (shard, occupancy) in occupancies.iter().enumerate() {
                diversity_obs::gauge_set(&self.gauge_names[shard], *occupancy as i64);
            }
        }
        Ok(RebalanceReport {
            skew_before,
            skew_after,
            ids_remapped: fresh.len(),
            pause,
        })
    }
}

/// What a mutation produced (see `ShardPool::mutate`).
enum MutOutcome {
    Inserted(PointId),
    Deleted(bool),
}
