//! # diversity-serve
//!
//! The **warm-path serving layer**: a long-lived pool of fully dynamic
//! shard engines that absorbs inserts/deletes continuously and answers
//! `Task`-shaped queries from the maintained state — the layer the
//! ROADMAP places below `Task::run_sharded`'s cold path.
//!
//! The pieces:
//!
//! * [`ShardPool`] — `N` [`diversity_dynamic::DynamicDiversity`]
//!   engines behind per-shard `RwLock`s. Updates take one shard's
//!   write lock; queries take read locks shard-by-shard, extract the
//!   maintained core-sets, compose them with
//!   [`Coreset::merge`](diversity_core::coreset::Coreset::merge), and
//!   finish with the same 2-round combiner every sharded run uses.
//!   Answers are the standard [`diversity::Report`] with the composed
//!   radius certificate.
//! * [`Router`] — where updates land ([`RoundRobin`], [`HashRouter`],
//!   [`FnRouter`]); placement never affects soundness.
//! * [`rebalance`] — live shard rebalancing on router skew:
//!   [`ShardPool::maybe_rebalance`] quiesces the pool when
//!   [`ShardPool::skew`] crosses a [`RebalanceConfig`] threshold
//!   (`DIVMAX_REBALANCE`), re-partitions the consistent cut
//!   ([`rebalance_state`] — sound for *arbitrary* partitions by the
//!   paper's Definition 2), and swaps the rebuilt shard set in
//!   atomically; pre-rebalance [`ShardedId`]s keep resolving through
//!   a [`RemapEntry`] table.
//! * [`PoolState`] / [`ShardPool::checkpoint`] /
//!   [`ShardPool::restore`] — serde snapshots of the whole pool
//!   (engine cover hierarchies included, via
//!   [`diversity_dynamic::EngineState`]); restored pools answer
//!   bit-identically.
//! * [`Serve`] — the extension trait that puts
//!   [`serve`](Serve::serve) on `diversity::Task`: the caller's opt-in
//!   to a persistent handle behind `Strategy::ShardedDynamic`.
//! * [`churn`] — the reusable churn-stress driver the `serve_churn`
//!   test (and any downstream soak test) is built on, plus its chaos
//!   variant [`chaos_round`] for runs under an installed fault plan.
//!
//! ## Fault tolerance
//!
//! Each shard carries a [`ShardHealth`] state machine. A panicking
//! mutation is caught under the shard's write lock (`catch_unwind`),
//! the shard is **quarantined**, and recovery rebuilds its engine from
//! the last checkpoint plus the log of acknowledged operations — so no
//! acknowledged write is ever lost and a recovered shard answers
//! bit-identically to one that never failed. While shards are
//! quarantined (or miss a [`ShardPool::query_within`] deadline),
//! queries **degrade** instead of failing: the surviving shards'
//! core-sets merge (dropping a shard from
//! [`Coreset::merge`](diversity_core::coreset::Coreset::merge) is
//! sound — the union of the survivors' artifacts is a valid core-set
//! of exactly the survivors' points) and the [`diversity::Report`]
//! carries a [`diversity::Degradation`] block scoping the certificate.
//! Deterministic fault injection lives in `diversity-faults`
//! (`DIVMAX_FAULTS`); the pool's injection points are named in
//! [`ShardPool`]'s docs.
//!
//! ## Cold vs warm
//!
//! ```text
//! cold  Task::run_sharded(parts)   build N engines → extract → merge → solve   (per query!)
//! warm  Task::serve(..) → pool     [engines live across queries]
//!         pool.insert/delete       touch one shard's write lock, O(structure) work
//!         pool.query(&task)        extract under read locks → merge → solve
//! ```
//!
//! The `ablation_serve` bench records the gap; the per-query engine
//! builds dominate the cold path, so the warm path's advantage grows
//! with the data while its own cost tracks only the core-set size.
//!
//! ## Quick start
//!
//! ```
//! use diversity::prelude::*;
//! use diversity_serve::Serve;
//!
//! let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
//! let pool = task.serve(Euclidean, 4)?;
//!
//! // Traffic: routed inserts, deletes by handle.
//! let ids = pool.extend((0..40).map(|i| VecPoint::from([i as f64 * 2.0, 0.0])))?;
//! pool.delete(ids[0])?;
//!
//! // Warm-path answer with the composed certificate.
//! let report = pool.query(&task)?;
//! assert_eq!(report.len(), 3);
//! assert!(report.coreset_radius.is_some());
//! assert!(report.degradation.is_none()); // every shard answered
//!
//! // Snapshot and restore: bit-identical answers.
//! let restored = diversity_serve::ShardPool::restore(Euclidean, pool.checkpoint()?)?;
//! assert_eq!(restored.query(&task)?.value, report.value);
//! # Ok::<(), diversity::DivError>(())
//! ```

pub mod churn;
pub mod pool;
pub mod rebalance;
pub mod router;
pub mod task_ext;
pub mod wire;

pub use churn::{
    assert_degradation_consistent, chaos_round, churn_round, env_ops, value_loss, ChaosOutcome,
    ChurnConfig, ChurnOutcome,
};
pub use pool::{PoolState, ShardHealth, ShardPool, ShardedId};
pub use rebalance::{
    rebalance_state, RebalanceConfig, RebalanceReport, RebalanceStats, RemapEntry,
};
pub use router::{occupancy_skew, FnRouter, HashRouter, RoundRobin, Router, RouterState};
pub use task_ext::Serve;
