//! Live shard rebalancing: the pure re-partition behind
//! [`ShardPool::rebalance`](crate::ShardPool::rebalance).
//!
//! ## Why re-partitioning a quiesced cut is sound
//!
//! The paper's composability result (Definition 2, with the covering
//! argument of Lemmas 3–4) states the core-set law for **arbitrary**
//! partitions of the data: however the points are split across shards,
//! the union of the per-shard core-sets is a lawful core-set of the
//! whole, with radius `max_i r_i`. Nothing in the certificate depends
//! on *which* shard holds *which* point. A consistent cut of the pool
//! (every shard imaged under every shard's write lock — no mutation
//! can interleave) is therefore free to be re-split any way at all:
//! the re-partitioned pool holds exactly the same multiset of points,
//! so every extraction, merge, and combiner solve over it certifies
//! the same ground truth. [`rebalance_state`] exploits this to undo
//! router skew — it reassigns the cut's points greedily
//! (largest-donor-first into the currently least-occupied target,
//! deterministic given the cut) and rebuilds one engine per shard.
//!
//! ## ID discipline
//!
//! Rebuilt engines assign fresh engine-local ids, so every alive
//! point's [`ShardedId`](crate::ShardedId) changes. Two guarantees
//! keep pre-rebalance handles safe:
//!
//! * **Remapping** — [`rebalance_state`] returns a [`RemapEntry`]
//!   table from each old encoded id to its new one; the pool folds it
//!   into its live remap table (composing with the table from earlier
//!   rebalances) so a handle issued *any* number of rebalances ago
//!   still resolves.
//! * **No reuse** — every rebuilt engine's id space is shifted past
//!   the largest `next_id` of the cut, so a fresh id can never collide
//!   with a handle issued before the rebalance. A stale handle to a
//!   point that died *before* the cut resolves to nothing (delete
//!   returns `false`, lookup `None`) instead of silently aliasing a
//!   different point.

use crate::pool::PoolState;
use diversity::DivError;
use diversity_dynamic::{DynamicConfig, DynamicDiversity};
use metric::Metric;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One entry of the rebalance remap table: a pre-rebalance encoded
/// [`ShardedId`](crate::ShardedId) and the encoded id the same point
/// carries now. Persisted inside [`PoolState`] so a restored pool
/// resolves old handles exactly like the live one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemapEntry {
    /// The encoded id a client may still hold.
    pub from: u64,
    /// The encoded id the point lives under now.
    pub to: u64,
}

/// When the pool acts on skew: the strict-parsed policy behind the
/// `DIVMAX_REBALANCE` environment knob
/// (`DIVMAX_REBALANCE=threshold=1.5,min_interval_ms=500`).
///
/// `threshold` is compared against [`crate::ShardPool::skew`]
/// (max/mean; `1.0` is perfectly balanced — and, since the skew
/// sentinel fix, so is an empty pool), so it must be a finite value
/// strictly above `1.0`. `min_interval_ms` (default `0`) bounds how
/// often [`maybe_rebalance`](crate::ShardPool::maybe_rebalance) will
/// act, so a churn storm that keeps skew high triggers one rebalance
/// per interval, not one per poll.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebalanceConfig {
    /// Rebalance when `skew() >= threshold`. Finite, `> 1.0`.
    pub threshold: f64,
    /// Minimum milliseconds between rebalances (`0` = every poll may
    /// act).
    pub min_interval_ms: u64,
}

impl RebalanceConfig {
    /// Strict-parses a `key=value,key=value` spec (the
    /// `DIVMAX_REBALANCE` format). `threshold` is required; duplicate
    /// or unknown keys reject the whole spec — a typo must not
    /// half-apply a policy.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut threshold: Option<f64> = None;
        let mut min_interval_ms: Option<u64> = None;
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err("empty key=value entry".into());
            }
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!("`{part}` is not a key=value pair"));
            };
            let key = key.trim();
            if seen.contains(&key) {
                return Err(format!("duplicate key `{key}`"));
            }
            match key {
                "threshold" => {
                    let trimmed = value.trim();
                    if trimmed.is_empty() || trimmed.starts_with('+') {
                        return Err(format!("threshold: not a number: `{trimmed}`"));
                    }
                    let v: f64 = trimmed
                        .parse()
                        .map_err(|_| format!("threshold: not a number: `{trimmed}`"))?;
                    if !v.is_finite() || v <= 1.0 {
                        return Err(format!(
                            "threshold {v} must be finite and > 1.0 (1.0 is perfectly balanced)"
                        ));
                    }
                    threshold = Some(v);
                }
                "min_interval_ms" => {
                    let v = diversity_obs::env::parse_u64(value)
                        .map_err(|why| format!("min_interval_ms: {why}"))?;
                    min_interval_ms = Some(v);
                }
                other => return Err(format!("unknown key `{other}`")),
            }
            seen.push(key);
        }
        let Some(threshold) = threshold else {
            return Err("missing required key `threshold`".into());
        };
        Ok(Self {
            threshold,
            min_interval_ms: min_interval_ms.unwrap_or(0),
        })
    }

    /// Reads `DIVMAX_REBALANCE`: `None` when unset **or** invalid
    /// (rejections are reported through
    /// [`diversity_obs::env::report_rejected`] — warn once, count
    /// always — and fall back to "no rebalancing", never to a guessed
    /// policy).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("DIVMAX_REBALANCE").ok()?;
        match Self::parse(&raw) {
            Ok(config) => Some(config),
            Err(why) => {
                diversity_obs::env::report_rejected(
                    "DIVMAX_REBALANCE",
                    &raw,
                    &why,
                    "no rebalancing",
                );
                None
            }
        }
    }
}

/// What one committed rebalance did — returned by
/// [`crate::ShardPool::rebalance`] and recorded by the
/// `ablation_rebalance` bench.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebalanceReport {
    /// [`crate::ShardPool::skew`] over the cut's occupancies.
    pub skew_before: f64,
    /// Skew of the freshly committed shard set.
    pub skew_after: f64,
    /// Alive points whose [`crate::ShardedId`] changed (the size of
    /// this pass's fresh remap).
    pub ids_remapped: usize,
    /// Wall time writers were fenced: from all shard write locks held
    /// to the swap commit.
    pub pause: std::time::Duration,
}

/// Rolling rebalance counters for monitoring (`Stats` over the wire):
/// how many rebalances have committed and the skew the latest one saw
/// before/after. Zeroes (`0`, `0.0`, `0.0`) mean "never rebalanced".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebalanceStats {
    /// Committed rebalances over this pool's lifetime.
    pub rebalances: u64,
    /// Skew the most recent rebalance started from.
    pub last_skew_before: f64,
    /// Skew the most recent rebalance ended at.
    pub last_skew_after: f64,
}

/// Re-partitions a consistent cut: the **pure** core of
/// [`crate::ShardPool::rebalance`], exposed so tests (and offline
/// tooling — the cut is just bytes) can build the never-rebalanced
/// twin a live rebalance must answer bit-identically to.
///
/// Deterministic given the cut: donor shards are visited in descending
/// occupancy (ties: lower index first), their alive points in
/// ascending engine id, and each point lands in the currently
/// least-occupied target shard (ties: lowest index) — greedy
/// largest-first, which leaves target occupancies within one point of
/// each other, i.e. skew as close to `1.0` as the population allows.
/// The shard *count* is preserved; only placement changes.
///
/// Returns the re-partitioned [`PoolState`] — router state carried
/// over verbatim, `remap` already composed with the cut's own table so
/// handles from *earlier* rebalances keep resolving — plus this pass's
/// fresh remap (one entry per alive point whose id changed), whose
/// length is what the `serve.ids_remapped` counter reports.
///
/// Soundness (Definition 2): the output holds exactly the same
/// multiset of points as the cut, so restoring it yields a pool whose
/// every extraction/merge/solve certifies the same ground truth — see
/// the module docs.
pub fn rebalance_state<P, M>(
    metric: &M,
    cut: &PoolState<P>,
) -> Result<(PoolState<P>, Vec<RemapEntry>), DivError>
where
    P: Clone + Send + Sync,
    M: Metric<P> + Clone,
{
    let shards = cut.shards.len();
    if shards == 0 {
        return Err(DivError::CorruptState {
            reason: "pool checkpoint holds no shards".into(),
        });
    }
    let config = DynamicConfig {
        epsilon: cut.shards[0].epsilon,
        dim: cut.shards[0].dim,
        max_depth: cut.shards[0].max_depth,
    };
    // Fresh ids must never collide with any id the cut could have
    // issued: shift every rebuilt engine's id space past the largest
    // allocator position in the cut.
    let base = cut.shards.iter().map(|s| s.next_id).max().unwrap_or(0);

    // Alive points per donor shard, ascending by engine id (the
    // checkpoint stores nodes in that order, but sort anyway — the
    // assignment order below is contract).
    let mut donors: Vec<(usize, Vec<(u64, P)>)> = Vec::with_capacity(shards);
    for (shard, s) in cut.shards.iter().enumerate() {
        if s.epsilon != config.epsilon || s.dim != config.dim || s.max_depth != config.max_depth {
            return Err(DivError::CorruptState {
                reason: format!("shard {shard} checkpointed under a different configuration"),
            });
        }
        let mut alive: Vec<(u64, P)> = s.nodes.iter().map(|n| (n.id, n.point.clone())).collect();
        alive.sort_by_key(|(id, _)| *id);
        donors.push((shard, alive));
    }
    // Largest donor first; ties broken toward the lower shard index.
    donors.sort_by(|(ia, a), (ib, b)| b.len().cmp(&a.len()).then(ia.cmp(ib)));

    // Greedy assignment into the currently least-occupied target.
    let mut assigned: Vec<Vec<(u64, P)>> = (0..shards).map(|_| Vec::new()).collect();
    for (donor, alive) in donors {
        for (local_id, point) in alive {
            let target = assigned
                .iter()
                .enumerate()
                .min_by_key(|(i, bucket)| (bucket.len(), *i))
                .map(|(i, _)| i)
                .expect("shards >= 1");
            let from = crate::ShardedId {
                shard: donor,
                id: diversity_dynamic::PointId::from_raw(local_id),
            }
            .try_encode()?;
            assigned[target].push((from, point));
        }
    }

    // Rebuild one engine per target, shift its id space past `base`,
    // and record old → new for every point.
    let mut states = Vec::with_capacity(shards);
    let mut fresh = Vec::new();
    for (target, bucket) in assigned.into_iter().enumerate() {
        let mut engine = DynamicDiversity::with_config(metric.clone(), config);
        for (from, point) in bucket {
            let local = engine.insert(point);
            let to = crate::ShardedId {
                shard: target,
                id: diversity_dynamic::PointId::from_raw(local.raw() + base),
            }
            .try_encode()?;
            fresh.push(RemapEntry { from, to });
        }
        let mut state = engine.state();
        for node in &mut state.nodes {
            node.id += base;
            if let Some(parent) = node.parent.as_mut() {
                *parent += base;
            }
            for child in &mut node.children {
                *child += base;
            }
        }
        if let Some(root) = state.root.as_mut() {
            *root += base;
        }
        state.next_id += base;
        states.push(state);
    }

    // Compose with the cut's own remap so handles from *earlier*
    // rebalances follow their points one more hop; entries whose
    // target died before this cut are dropped (they resolve to
    // nothing, which is correct — the point is gone).
    let this_pass: HashMap<u64, u64> = fresh.iter().map(|e| (e.from, e.to)).collect();
    let mut remap: Vec<RemapEntry> = fresh.clone();
    for old in &cut.remap {
        if let Some(&to) = this_pass.get(&old.to) {
            remap.push(RemapEntry { from: old.from, to });
        }
    }
    remap.sort_by_key(|e| e.from);

    Ok((
        PoolState {
            shards: states,
            router: cut.router.clone(),
            remap,
        },
        fresh,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_strictly() {
        assert_eq!(
            RebalanceConfig::parse("threshold=1.5,min_interval_ms=500"),
            Ok(RebalanceConfig {
                threshold: 1.5,
                min_interval_ms: 500,
            })
        );
        assert_eq!(
            RebalanceConfig::parse("threshold=2"),
            Ok(RebalanceConfig {
                threshold: 2.0,
                min_interval_ms: 0,
            })
        );
        // Whitespace around keys and values is tolerated.
        assert_eq!(
            RebalanceConfig::parse(" threshold = 1.25 , min_interval_ms = 7 "),
            Ok(RebalanceConfig {
                threshold: 1.25,
                min_interval_ms: 7,
            })
        );
    }

    #[test]
    fn spec_rejections() {
        for bad in [
            "",
            "threshold",
            "threshold=",
            "threshold=balanced",
            "threshold=+1.5",
            "threshold=1.0", // 1.0 is perfectly balanced — would always fire
            "threshold=0.5", // below balanced
            "threshold=inf", // not finite
            "threshold=NaN",
            "min_interval_ms=500",               // threshold is required
            "threshold=1.5,threshold=2.0",       // duplicate key
            "threshold=1.5,min_interval=5",      // unknown key
            "threshold=1.5,min_interval_ms=-1",  // negative interval
            "threshold=1.5,min_interval_ms=1.5", // fractional interval
            "threshold=1.5,,min_interval_ms=5",  // empty entry
        ] {
            assert!(
                RebalanceConfig::parse(bad).is_err(),
                "accepted garbage spec {bad:?}"
            );
        }
    }
}
