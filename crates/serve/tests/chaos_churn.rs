//! The chaos extension of the churn-stress harness: the same
//! concurrent writers-vs-readers schedule as `serve_churn`, run under
//! an installed seeded [`faults::FaultPlan`] — injected shard panics,
//! slow held locks, transient query/recovery failures, corrupted
//! checkpoint text — with the full quiescent ground-truth audits after
//! every round:
//!
//! * every fault stays **typed and bounded** (the [`chaos_round`]
//!   driver asserts the failure surface op by op);
//! * after the plan is uninstalled and [`ShardPool::recover_all`]
//!   runs, **every shard is `Healthy`** — every injected panic ended
//!   in a completed recovery;
//! * the recovered pool's answer sits inside the structure-reported
//!   accuracy envelope of a fresh `run_seq` on the surviving points,
//!   and the composed certificate `certifies` them — acknowledged
//!   writes survived every injected failure;
//! * checkpoint text corrupted through the
//!   [`faults::sites::CHECKPOINT_BYTES`] hook is **rejected** (parse or
//!   [`DivError::CorruptState`]), while the clean text restores to a
//!   bit-identical pool;
//! * a **degraded** answer (one shard administratively quarantined)
//!   carries a consistent [`Degradation`] block and a certificate that
//!   `certifies` ground truth on exactly the surviving points.
//!
//! `DIVMAX_FAULTS` overrides the built-in chaos mix (CI pins a seed);
//! `DIVMAX_OBS` exports the final telemetry snapshot, which must carry
//! the `fault.*` counters and the `serve.recovery_ns` histogram
//! (`divmax-stats --assert-keys` gates on them).

use diversity::obs;
use diversity::prelude::*;
use diversity_faults as faults;
use diversity_serve::{
    assert_degradation_consistent, chaos_round, value_loss, ChurnConfig, Serve, ShardHealth,
    ShardPool,
};
use std::sync::{Arc, Mutex, Once};

/// The process-global fault plan is shared by every test in this
/// binary; serialize the tests that install one.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Installs one process-wide [`obs::Registry`] for the whole binary
/// (the recorder is global; pools namespace their gauges).
fn shared_registry() -> Arc<obs::Registry> {
    static INSTALL: Once = Once::new();
    static mut SHARED: Option<Arc<obs::Registry>> = None;
    unsafe {
        INSTALL.call_once(|| {
            let reg = Arc::new(obs::Registry::new());
            obs::install(reg.clone());
            SHARED = Some(reg);
        });
        #[allow(static_mut_refs)]
        SHARED.clone().expect("installed above")
    }
}

/// Injected panics are expected by the hundreds; keep them off stderr
/// while still printing genuine (un-injected) panics.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Deterministic pseudo-random 2D point (splitmix-style integer hash).
fn gen_point(stream: u64, i: u64) -> VecPoint {
    let mut z = stream
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    let x = (z % 2_000) as f64 * 0.1;
    let y = ((z >> 32) % 2_000) as f64 * 0.1;
    VecPoint::from([x, y])
}

/// The built-in chaos mix: every fault kind the serving stack handles,
/// at rates sized so a few hundred operations see several of each.
/// `DIVMAX_FAULTS` (CI's pinned seed) takes precedence.
fn install_chaos_plan() -> Arc<faults::FaultPlan> {
    if faults::install_from_env() {
        return faults::plan().expect("just installed from env");
    }
    let plan = Arc::new(faults::FaultPlan::from_spec(faults::FaultSpec {
        seed: 42,
        panic: 0.03,
        slow: 0.01,
        slow_ms: 1,
        corrupt: 0.35,
        drop: 0.0,
        transient: 0.02,
    }));
    faults::install(plan.clone());
    plan
}

#[test]
fn chaos_churn_survives_and_stays_certified() {
    let _serial = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = shared_registry();
    quiet_injected_panics();

    let problem = Problem::RemoteEdge;
    let k = 5;
    let task = Task::new(problem, k).budget(Budget::KPrime(8 * k));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 4).expect("valid pool spec");
    let k_prime = task.dynamic_k_prime(pool.config()).expect("valid budget");
    let alpha = problem.alpha();

    // Seed with points no writer ever deletes, so the pool can only
    // fall below k if acknowledged writes were lost.
    for i in 0..160 {
        pool.insert(gen_point(u64::MAX, i)).expect("seed insert");
    }

    let cfg = ChurnConfig {
        writers: 3,
        readers: 2,
        inserts_per_writer: diversity_serve::env_ops(120),
        delete_every: 3,
        queries_per_reader: 6,
    };

    let mut total_faults = 0usize;
    for round in 0..3u64 {
        let plan = install_chaos_plan();
        let outcome = chaos_round(&pool, &task, &cfg, |w, i| {
            gen_point(round * 101 + w as u64, i as u64)
        });
        let uninstalled = faults::uninstall().expect("plan was installed");
        assert!(
            Arc::ptr_eq(&plan, &uninstalled),
            "our plan was the one driving"
        );
        total_faults += uninstalled.log().len();

        // ---- quiescent audits, after full recovery -----------------
        pool.recover_all()
            .expect("every quarantined shard recovers");
        assert!(
            pool.healths().iter().all(|h| *h == ShardHealth::Healthy),
            "round {round}: every injected panic must end Healthy, got {:?}",
            pool.healths()
        );
        pool.validate();

        // Durability: every handle acknowledged (and not deleted) is
        // alive — whatever panicked, quarantined, and recovered.
        let alive: std::collections::HashSet<_> =
            pool.alive().into_iter().map(|(id, _)| id).collect();
        for id in &outcome.survivors {
            assert!(
                alive.contains(id),
                "round {round}: acknowledged id {id} lost to a fault"
            );
        }

        // Accuracy + soundness against fresh ground truth on the
        // survivors, exactly as in the fault-free harness.
        let survivors: Vec<VecPoint> = pool.alive().into_iter().map(|(_, p)| p).collect();
        let warm = pool.query(&task).expect("recovered pool answers in full");
        assert!(
            warm.degradation.is_none(),
            "round {round}: a fully recovered pool must not degrade"
        );
        let fresh = task.run_seq(&survivors, &Euclidean).expect("ground truth");
        let radius = warm.coreset_radius.expect("warm answers certify");
        let loss = value_loss(problem, k, radius);
        assert!(
            alpha * warm.value + loss >= fresh.value - 1e-9,
            "round {round}: warm {} below the certified envelope of fresh {}",
            warm.value,
            fresh.value,
        );
        let merged = pool.coreset(problem, k, k_prime);
        assert!(
            merged.certifies(&survivors, &Euclidean, 1e-9),
            "round {round}: composed certificate must cover all survivors"
        );

        // Checkpoint text through the corruption hook: corrupted text
        // is rejected (never a half-restored pool), clean text restores
        // bit-identically.
        let clean = serde_json::to_string(&pool.checkpoint().expect("healthy checkpoint"))
            .expect("serialize pool");
        faults::install(Arc::new(faults::FaultPlan::from_spec(faults::FaultSpec {
            corrupt: 1.0,
            ..faults::FaultSpec::from_seed(round)
        })));
        let mut corrupted = clean.clone();
        assert!(
            faults::corrupt_text(faults::sites::CHECKPOINT_BYTES, &mut corrupted),
            "rate-1.0 corruption must fire"
        );
        faults::uninstall();
        match serde_json::from_str::<diversity_serve::PoolState<VecPoint>>(&corrupted) {
            Err(_) => {} // truncation broke the JSON: rejected at parse
            Ok(state) => {
                // Truncation that still parses must be caught by the
                // structural validation behind restore.
                let err = ShardPool::<VecPoint, _>::restore(Euclidean, state)
                    .expect_err("corrupt state must not restore");
                assert!(matches!(err, DivError::CorruptState { .. }), "got {err}");
            }
        }
        let restored: ShardPool<VecPoint, _> = ShardPool::restore(
            Euclidean,
            serde_json::from_str(&clean).expect("clean text parses"),
        )
        .expect("clean checkpoint restores");
        let replay = restored.query(&task).expect("restored query");
        assert_eq!(replay.indices, warm.indices, "round {round}");
        assert_eq!(
            replay.value.to_bits(),
            warm.value.to_bits(),
            "round {round}"
        );
    }
    assert!(
        total_faults > 0,
        "three chaos rounds at the configured rates must inject something"
    );

    // ---- degraded answers, audited against ground truth ------------
    // Administrative quarantine = the same code path a caught panic
    // takes; the degraded answer's certificate must certify exactly
    // the surviving (healthy-shard) points.
    pool.quarantine(1);
    let degraded = pool.query(&task).expect("three shards still answer");
    let d = degraded
        .degradation
        .as_ref()
        .expect("skips degrade the answer");
    assert_degradation_consistent(d, pool.num_shards());
    assert_eq!(d.skipped_shards, vec![1]);
    let survivors: Vec<VecPoint> = pool.alive().into_iter().map(|(_, p)| p).collect();
    let surviving_coreset = pool.coreset(problem, k, k_prime);
    assert_eq!(
        Some(surviving_coreset.radius()),
        degraded.coreset_radius,
        "the degraded certificate is the surviving merge's radius"
    );
    assert!(
        surviving_coreset.certifies(&survivors, &Euclidean, 1e-9),
        "degraded certificate must certify ground truth on the survivors"
    );
    let fresh = task.run_seq(&survivors, &Euclidean).expect("ground truth");
    let loss = value_loss(problem, k, degraded.coreset_radius.expect("certified"));
    assert!(
        alpha * degraded.value + loss >= fresh.value - 1e-9,
        "degraded answers keep the certified envelope over the survivors"
    );
    pool.recover(1).expect("administrative quarantine recovers");
    assert_eq!(pool.shard_health(1), ShardHealth::Healthy);

    // ---- guaranteed fault/recovery telemetry ------------------------
    // A rate-1.0 panic plan forces the full panic → quarantine →
    // recovery path regardless of the seeded mix above, so the
    // exported snapshot always carries the keys CI gates on.
    faults::install(Arc::new(faults::FaultPlan::from_spec(faults::FaultSpec {
        panic: 1.0,
        ..faults::FaultSpec::from_seed(7)
    })));
    let refused = pool.insert(gen_point(3, 3));
    assert!(
        matches!(refused, Err(DivError::ShardUnavailable { .. })),
        "under panic=1.0 both attempts panic: {refused:?}"
    );
    faults::uninstall();
    pool.recover_all().expect("recovers once faults stop");
    assert!(pool.healths().iter().all(|h| *h == ShardHealth::Healthy));
    pool.insert(gen_point(3, 4)).expect("healthy again");

    // ---- live rebalance under the pinned fault plan -----------------
    // Skew the pool hard onto shard 0, then rebalance while a panic
    // injector is live: every failed attempt is a typed
    // `TransientFailure` that leaves the old pool serving unchanged
    // (all-or-nothing), and the eventual success strictly lowers the
    // skew while keeping the answer inside the certified envelope. The
    // exported snapshot then carries the `serve.rebalances` /
    // `serve.ids_remapped` counters CI gates on.
    let doubling = pool.len() as u64;
    for i in 0..doubling {
        pool.insert_to(0, gen_point(5, i)).expect("skew insert");
    }
    let skew_before = pool.skew();
    assert!(
        skew_before > 1.5,
        "doubling the pool onto shard 0 must drive the trigger, got {skew_before}"
    );
    let len_before = pool.len();
    faults::install(Arc::new(faults::FaultPlan::from_spec(faults::FaultSpec {
        panic: 0.5,
        ..faults::FaultSpec::from_seed(20170807)
    })));
    let mut refusals = 0usize;
    let report = loop {
        match pool.rebalance() {
            Ok(report) => break report,
            Err(DivError::TransientFailure { site }) => {
                assert_eq!(site, "serve.rebalance");
                assert_eq!(
                    pool.len(),
                    len_before,
                    "a failed swap must leave the old pool intact"
                );
                assert_eq!(pool.skew(), skew_before, "and its skew untouched");
                refusals += 1;
                assert!(refusals < 200, "panic=0.5 cannot refuse forever");
            }
            Err(other) => panic!("rebalance under faults fails typed, got {other}"),
        }
    };
    faults::uninstall();
    assert!(
        report.skew_after < skew_before,
        "a committed rebalance strictly lowers the skew ({} -> {})",
        report.skew_before,
        report.skew_after
    );
    assert!(report.ids_remapped > 0, "live ids must be remapped");
    assert_eq!(
        pool.len(),
        len_before,
        "rebalancing moves points, never loses them"
    );
    let survivors: Vec<VecPoint> = pool.alive().into_iter().map(|(_, p)| p).collect();
    let warm = pool.query(&task).expect("rebalanced pool answers in full");
    let fresh = task.run_seq(&survivors, &Euclidean).expect("ground truth");
    let loss = value_loss(problem, k, warm.coreset_radius.expect("certified"));
    assert!(
        alpha * warm.value + loss >= fresh.value - 1e-9,
        "rebalanced answers keep the certified envelope"
    );

    let snap = registry.snapshot_now();
    assert!(snap.counter("fault.injected").unwrap_or(0) > 0);
    assert!(snap.counter("fault.panic").unwrap_or(0) > 0);
    assert!(snap.counter("serve.quarantines").unwrap_or(0) > 0);
    assert!(snap.counter("serve.recoveries").unwrap_or(0) > 0);
    let recovery = snap
        .histogram("serve.recovery_ns")
        .expect("recoveries were timed");
    assert!(recovery.count > 0 && recovery.p50() >= recovery.min);
    assert!(snap.counter("serve.rebalances").unwrap_or(0) > 0);
    assert!(snap.counter("serve.ids_remapped").unwrap_or(0) > 0);
    let rebalance = snap
        .histogram("serve.rebalance_ns")
        .expect("rebalances were timed");
    assert!(rebalance.count > 0);

    // Export for CI's `divmax-stats --assert-keys` gate.
    obs::export_to_env_path(&snap).expect("JSONL export must not fail");
}

/// The determinism contract (ISSUE acceptance): the same seed over the
/// same single-threaded schedule reproduces the exact fault log and
/// the exact final state — twice through insert/delete/query churn,
/// fresh pool and fresh same-seed plan each time, everything compares
/// equal.
#[test]
fn seeded_chaos_is_deterministic() {
    let _serial = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    shared_registry();
    quiet_injected_panics();

    let task = Task::new(Problem::RemoteClique, 4).budget(Budget::KPrime(24));
    let spec = faults::FaultSpec {
        seed: 1234,
        panic: 0.05,
        slow: 0.0,
        slow_ms: 0,
        corrupt: 0.0,
        drop: 0.0,
        transient: 0.05,
    };

    let run = || {
        let plan = Arc::new(faults::FaultPlan::from_spec(spec));
        let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 3).expect("pool");
        for i in 0..40 {
            pool.insert(gen_point(9, i)).expect("fault-free seeding");
        }
        faults::install(plan.clone());
        let mut mine = Vec::new();
        let mut next_delete = 0usize;
        let mut outcomes: Vec<String> = Vec::new();
        for i in 0..250u64 {
            match pool.insert(gen_point(11, i)) {
                Ok(id) => mine.push(id),
                Err(e) => outcomes.push(format!("insert {i}: {e}")),
            }
            if i % 3 == 2 && next_delete < mine.len() {
                match pool.delete(mine[next_delete]) {
                    Ok(gone) => {
                        assert!(gone, "acknowledged id lost");
                        next_delete += 1;
                    }
                    Err(e) => outcomes.push(format!("delete {i}: {e}")),
                }
            }
            if i % 10 == 9 {
                match pool.query(&task) {
                    Ok(r) => outcomes.push(format!(
                        "query {i}: value={:016x} degraded={}",
                        r.value.to_bits(),
                        r.degradation.is_some(),
                    )),
                    Err(e) => outcomes.push(format!("query {i}: {e}")),
                }
            }
        }
        faults::uninstall();
        pool.recover_all().expect("recovery drains the quarantine");
        let final_value = pool.query(&task).expect("recovered pool answers");
        outcomes.push(format!(
            "final: len={} value={:016x}",
            pool.len(),
            final_value.value.to_bits()
        ));
        (plan.log(), outcomes)
    };

    let (log_a, outcomes_a) = run();
    let (log_b, outcomes_b) = run();
    assert!(!log_a.is_empty(), "the seeded mix must inject something");
    assert_eq!(log_a, log_b, "same seed, same schedule ⇒ same fault log");
    assert_eq!(
        outcomes_a, outcomes_b,
        "same fault log ⇒ same rejections, same degradations, same bits"
    );
    assert!(
        log_a
            .iter()
            .any(|e| e.kind == faults::FaultKind::ShardPanic),
        "panic rate 0.05 over ~250 mutations must fire"
    );
}
