//! The churn-stress harness: concurrent writers (inserts + deletes)
//! against concurrent readers (warm-path queries) on one [`ShardPool`],
//! with full accuracy/soundness/checkpoint audits at every quiescent
//! point.
//!
//! Per round (built on the reusable [`diversity_serve::churn`] driver):
//!
//! * ≥ 2 writer threads churn the pool while ≥ 2 reader threads issue
//!   queries — every concurrent answer must be well-formed (exactly
//!   `k` points, finite value, composed certificate present);
//! * at the quiescent join, the pool's answer must be within the
//!   **structure-reported** bound of a fresh `run_seq` on the
//!   surviving points: `α · value + loss(coreset_radius) ≥ seq value`,
//!   where the loss term is exactly what the reported radius certifies
//!   through the proxy-function lemmas;
//! * the composed certificate must hold against ground truth: every
//!   survivor within the reported radius of the merged core-set;
//! * checkpoint → serde round-trip → restore → query must be
//!   **bit-identical** to the live pool.
//!
//! `SERVE_CHURN_OPS` bounds the per-writer insert count (CI smoke sets
//! it low; local soak runs can raise it).

use diversity::obs;
use diversity::prelude::*;
use diversity_serve::{churn_round, env_ops, value_loss, ChurnConfig, Serve, ShardPool};
use std::sync::{Arc, Once};

/// Installs one process-wide [`obs::Registry`] for the whole test
/// binary (tests run in parallel and the recorder is global, so it is
/// installed once and never uninstalled). Pools namespace their gauges
/// (`serve.pool{id}.…`), so concurrent tests never read each other's
/// occupancy.
fn shared_registry() -> Arc<obs::Registry> {
    static INSTALL: Once = Once::new();
    static mut SHARED: Option<Arc<obs::Registry>> = None;
    unsafe {
        INSTALL.call_once(|| {
            let reg = Arc::new(obs::Registry::new());
            obs::install(reg.clone());
            SHARED = Some(reg);
        });
        #[allow(static_mut_refs)]
        SHARED.clone().expect("installed above")
    }
}

/// Deterministic pseudo-random 2D point (splitmix-style integer hash).
fn gen_point(stream: u64, i: u64) -> VecPoint {
    let mut z = stream
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    let x = (z % 2_000) as f64 * 0.1;
    let y = ((z >> 32) % 2_000) as f64 * 0.1;
    VecPoint::from([x, y])
}

fn churn_stress(problem: Problem, k: usize) {
    let registry = shared_registry();
    let task = Task::new(problem, k).budget(Budget::KPrime(8 * k));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 4).expect("valid pool spec");

    // Seed with points no writer ever deletes: the pool can never
    // shrink below k, so every concurrent read must succeed.
    for i in 0..160 {
        pool.insert(gen_point(u64::MAX, i)).expect("seed insert");
    }

    let cfg = ChurnConfig {
        writers: 3,
        readers: 2,
        inserts_per_writer: env_ops(120),
        delete_every: 3,
        queries_per_reader: 4,
    };
    let k_prime = task.dynamic_k_prime(pool.config()).expect("valid budget");
    let alpha = problem.alpha();

    let mut round_survivors: Vec<Vec<diversity_serve::ShardedId>> = Vec::new();
    for round in 0..3u64 {
        // Give later rounds fresh coordinates, and delete a slice of a
        // *previous* round's survivors concurrently with this round's
        // writers (cross-round churn, not just own-round).
        if let Some(old) = round_survivors.last() {
            for id in old.iter().step_by(4) {
                assert!(
                    pool.delete(*id).expect("fault-free delete"),
                    "quiescent survivor must be deletable"
                );
            }
        }
        let outcome = churn_round(&pool, &task, &cfg, |w, i| {
            gen_point(round * 101 + w as u64, i as u64)
        });

        // The round really was churn, and the readers really read.
        assert!(outcome.deleted > 0, "writers must interleave deletions");
        assert_eq!(
            outcome.reports.len(),
            cfg.readers * cfg.queries_per_reader,
            "every concurrent read must have succeeded"
        );

        // ---- quiescent audits ---------------------------------------
        pool.validate();
        let survivors: Vec<VecPoint> = pool.alive().into_iter().map(|(_, p)| p).collect();
        assert_eq!(survivors.len(), pool.len());

        // Telemetry audit: at every quiescent point, this pool's
        // per-shard occupancy gauges sum to its live point count.
        let snap = registry.snapshot_now();
        assert_eq!(
            snap.gauge_prefix_sum(&pool.gauge_prefix()),
            pool.len() as i64,
            "{problem} round {round}: occupancy gauges must sum to pool.len()"
        );

        let warm = pool.query(&task).expect("quiescent query");
        // The report carries the cumulative snapshot; its warm-query
        // histogram has seen every concurrent read plus this one, and
        // its quantiles are well-formed.
        let telemetry = warm.telemetry.as_ref().expect("recorder installed");
        let e2e = telemetry
            .histogram("serve.query.e2e_ns")
            .expect("warm queries recorded");
        assert!(e2e.count > round * (cfg.readers * cfg.queries_per_reader) as u64);
        assert!(e2e.p50() >= e2e.min && e2e.p50() <= e2e.p99());
        assert!(e2e.p99() <= e2e.max);
        assert!(
            telemetry.histogram("serve.lock.write_hold_ns").is_some(),
            "churn writers must have recorded lock holds"
        );
        let fresh = task.run_seq(&survivors, &Euclidean).expect("ground truth");

        // Accuracy against the structure-reported bound: the composed
        // radius certifies the value loss of serving from core-sets,
        // and the combiner's solver is the same α-approximation run_seq
        // uses — so α·warm + loss(radius) must reach the fresh value.
        let radius = warm.coreset_radius.expect("warm answers certify");
        let loss = value_loss(problem, k, radius);
        assert!(
            alpha * warm.value + loss >= fresh.value - 1e-9,
            "{problem} round {round}: warm {} below the certified envelope \
             of fresh {} (radius {radius}, loss {loss})",
            warm.value,
            fresh.value,
        );

        // Certificate soundness against ground truth: every surviving
        // point within the reported radius of the merged core-set.
        let merged = pool.coreset(problem, k, k_prime);
        assert_eq!(merged.radius(), radius, "query reports the merged radius");
        assert!(
            merged.certifies(&survivors, &Euclidean, 1e-9),
            "{problem} round {round}: composed certificate must cover all survivors"
        );

        // Checkpoint → wire → restore → query: bit-identical.
        let json = serde_json::to_string(&pool.checkpoint().expect("healthy checkpoint"))
            .expect("serialize pool");
        let restored: ShardPool<VecPoint, _> =
            ShardPool::restore(Euclidean, serde_json::from_str(&json).expect("deserialize"))
                .expect("own checkpoint restores");
        assert_eq!(restored.len(), pool.len());
        let replay = restored.query(&task).expect("restored query");
        assert_eq!(replay.indices, warm.indices, "selection must match exactly");
        assert_eq!(
            replay.value.to_bits(),
            warm.value.to_bits(),
            "value must be bit-identical"
        );
        assert_eq!(replay.coreset_size, warm.coreset_size);
        assert_eq!(
            replay.coreset_radius.map(f64::to_bits),
            warm.coreset_radius.map(f64::to_bits)
        );
        assert_eq!(
            restored.coreset(problem, k, k_prime),
            merged,
            "the restored pool extracts the very same composed core-set"
        );

        round_survivors.push(outcome.survivors);
    }

    // Export the final snapshot when `DIVMAX_OBS` is set (CI's JSONL
    // smoke run points it at a file and asserts it parses with the
    // expected keys via `divmax-stats`).
    obs::export_to_env_path(&registry.snapshot_now()).expect("JSONL export must not fail");
}

#[test]
fn churn_stress_remote_edge() {
    churn_stress(Problem::RemoteEdge, 5);
}

#[test]
fn churn_stress_remote_clique() {
    churn_stress(Problem::RemoteClique, 4);
}

/// Writers can drain entire shards; the pool keeps answering (drained
/// shards contribute the merge identity) and the certificate stays
/// sound for exactly the points that remain.
#[test]
fn draining_a_shard_is_not_an_error() {
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 3).expect("pool");
    // Round-robin: ids [0], [3], [6], ... land in shard 0.
    let ids = pool
        .extend((0..30).map(|i| gen_point(7, i)))
        .expect("extend");
    for id in ids.iter().filter(|id| id.shard == 0) {
        assert!(pool.delete(*id).expect("fault-free delete"));
    }
    assert_eq!(pool.shard_len(0), 0, "shard 0 fully drained");
    let report = pool.query(&task).expect("two live shards remain");
    assert_eq!(report.len(), 3);
    let survivors: Vec<VecPoint> = pool.alive().into_iter().map(|(_, p)| p).collect();
    let merged = pool.coreset(Problem::RemoteEdge, 3, 12);
    assert!(merged.certifies(&survivors, &Euclidean, 1e-9));

    // Drain everything: the typed error, not a panic.
    for (id, _) in pool.alive() {
        assert!(pool.delete(id).expect("fault-free delete"));
    }
    assert_eq!(pool.query(&task).unwrap_err(), DivError::EmptyInput);
}
