//! Snapshot-consistent cross-shard checkpoints under churn:
//! [`ShardPool::checkpoint_consistent`] quiesces every shard at once
//! (all write locks held together), so a snapshot taken **while
//! writers are running** is a single point in the pool's linearized
//! history — no shard ahead of another, no torn operation, and the
//! persisted bytes restore bit-identically.

use diversity::prelude::*;
use diversity::wire::{from_bytes, to_bytes};
use diversity_serve::{PoolState, Serve, ShardPool};
use std::sync::atomic::{AtomicBool, Ordering};

/// Deterministic pseudo-random 2D point (splitmix-style integer hash).
fn gen_point(stream: u64, i: u64) -> VecPoint {
    let mut z = stream
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    let x = (z % 2_000) as f64 * 0.1;
    let y = ((z >> 32) % 2_000) as f64 * 0.1;
    VecPoint::from([x, y])
}

#[test]
fn mid_churn_consistent_snapshot_restores_bit_identically() {
    let task = Task::new(Problem::RemoteEdge, 5).budget(Budget::KPrime(40));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 4).expect("valid pool spec");
    for i in 0..120 {
        pool.insert(gen_point(u64::MAX, i)).expect("seed insert");
    }

    let stop = AtomicBool::new(false);
    let snapshots: Vec<PoolState<VecPoint>> = std::thread::scope(|scope| {
        // Three writers churn (inserts, plus deletes of their own
        // acked ids) for the whole duration of the snapshot loop.
        for w in 0..3u64 {
            let pool = &pool;
            let stop = &stop;
            scope.spawn(move || {
                let mut own: Vec<diversity_serve::ShardedId> = Vec::new();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let id = pool.insert(gen_point(w, i)).expect("churn insert");
                    own.push(id);
                    if i % 3 == 2 {
                        let victim = own.remove(0);
                        pool.delete(victim).expect("churn delete");
                    }
                    i += 1;
                }
            });
        }

        // Main thread: repeated consistent snapshots mid-churn.
        let taken = (0..5)
            .map(|_| {
                // Let real churn accumulate between cuts.
                std::thread::sleep(std::time::Duration::from_millis(10));
                pool.checkpoint_consistent()
                    .expect("healthy pool checkpoints")
            })
            .collect();
        stop.store(true, Ordering::Relaxed);
        taken
    });

    for (round, state) in snapshots.into_iter().enumerate() {
        // The binary persistence round-trip is exact.
        let bytes = to_bytes(&state);
        let state: PoolState<VecPoint> = from_bytes(&bytes).expect("own bytes decode");
        assert_eq!(to_bytes(&state), bytes, "round {round}: re-encode drifted");

        // A restored pool is internally consistent and serves.
        let restored = ShardPool::restore(Euclidean, state).expect("snapshot restores");
        restored.validate();
        let report = restored.query(&task).expect("restored pool answers");
        assert_eq!(report.len(), 5);
        assert!(report.value.is_finite() && report.value > 0.0);
        assert!(report.coreset_radius.is_some());
        assert!(
            report.degradation.is_none(),
            "round {round}: a consistent snapshot captures only healthy shards"
        );

        // Bit-identical: restoring the same bytes twice gives the same
        // engines, answers, and re-checkpointed state.
        let twin = ShardPool::restore(
            Euclidean,
            from_bytes::<PoolState<VecPoint>>(&bytes).expect("decode again"),
        )
        .expect("snapshot restores twice");
        let twin_report = twin.query(&task).expect("twin answers");
        assert_eq!(twin_report.indices, report.indices);
        assert_eq!(twin_report.value.to_bits(), report.value.to_bits());
        assert_eq!(
            to_bytes(&twin.checkpoint().expect("twin checkpoints")),
            to_bytes(&restored.checkpoint().expect("restored checkpoints")),
            "round {round}: re-checkpoints of the same snapshot must be byte-equal"
        );

        // The seed points (never deleted by any writer) are all in the
        // cut — acknowledged-before-snapshot writes are never torn out.
        let alive = restored.alive();
        let seeds_alive = alive
            .iter()
            .filter(|(_, p)| (0..120).any(|i| p.coords() == gen_point(u64::MAX, i).coords()))
            .count();
        assert_eq!(
            seeds_alive, 120,
            "round {round}: seed points lost in the cut"
        );
    }

    // Quiescent closing audit: with the writers joined, a consistent
    // snapshot and the plain checkpoint agree on the live set and the
    // answer.
    pool.validate();
    let quiet = pool.checkpoint_consistent().expect("quiescent snapshot");
    let plain = pool.checkpoint().expect("plain checkpoint");
    let from_quiet = ShardPool::restore(Euclidean, quiet).expect("restore quiet");
    let from_plain = ShardPool::restore(Euclidean, plain).expect("restore plain");
    assert_eq!(from_quiet.len(), pool.len());
    assert_eq!(from_plain.len(), pool.len());
    let a = from_quiet.query(&task).expect("query");
    let b = from_plain.query(&task).expect("query");
    let live = pool.query(&task).expect("query");
    assert_eq!(a.indices, live.indices);
    assert_eq!(b.indices, live.indices);
    assert_eq!(a.value.to_bits(), live.value.to_bits());
    assert_eq!(b.value.to_bits(), live.value.to_bits());
}

#[test]
fn consistent_checkpoint_recovers_quarantined_shards_first() {
    let task = Task::new(Problem::RemoteEdge, 3).budget(Budget::KPrime(12));
    let pool: ShardPool<VecPoint, _> = task.serve(Euclidean, 3).expect("valid pool spec");
    for i in 0..60 {
        pool.insert(gen_point(9, i)).expect("insert");
    }
    pool.quarantine(1);

    // The snapshot must not capture (or skip) the quarantined shard:
    // it recovers it under the held write lock, then images it.
    let state = pool
        .checkpoint_consistent()
        .expect("snapshot recovers in-line");
    assert!(pool
        .healths()
        .iter()
        .all(|h| *h == diversity_serve::ShardHealth::Healthy));
    let restored = ShardPool::restore(Euclidean, state).expect("restore");
    assert_eq!(restored.len(), pool.len());
    let live = pool.query(&task).expect("query");
    let replay = restored.query(&task).expect("query");
    assert_eq!(replay.indices, live.indices);
    assert_eq!(replay.value.to_bits(), live.value.to_bits());
}
