//! The compact binary codec: the network frame payload format that
//! doubles as the checkpoint encoding.
//!
//! The JSON serde layer (`vendor/serde`) is the debuggable,
//! golden-pinned interchange format; this module is the *dense* one —
//! the encoding `divmax-serve` frames carry and checkpoints can opt
//! into (roughly half the bytes of the JSON image; the `ablation_net`
//! bench records both counts). Design:
//!
//! * **Integers** are LEB128 varints (unsigned); signed integers are
//!   zigzag-folded first, so small magnitudes of either sign stay
//!   short.
//! * **Floats** are the 8 little-endian bytes of [`f64::to_bits`] —
//!   exact for every value including non-finite ones (which the JSON
//!   layer must tag as strings).
//! * **Strings / sequences** are a varint length followed by the
//!   elements; decoders bound their pre-allocations by the bytes
//!   actually remaining, so a hostile length cannot balloon memory.
//! * **Options and enums** are a one-byte tag. Unknown tags are typed
//!   [`WireError`]s, never panics — the unwrap-audit discipline of the
//!   serving layer extends down to the codec.
//!
//! There is no self-description: both ends must agree on the type, and
//! the protocol layer (`diversity-net`) versions the whole frame. The
//! format is pinned by golden tests in `tests/wire_bin.rs` — any byte
//! change is a protocol version bump.
//!
//! [`to_bytes`] / [`from_bytes`] are the entry points; `from_bytes`
//! rejects trailing garbage, so a frame carries exactly one value.

use crate::error::DivError;
use crate::report::{Backend, Certificate, Degradation, Report, StageMemory, StageTiming};
use crate::task::{Budget, Projection, Task};
use diversity_core::coreset::Coreset;
use diversity_core::Problem;
use diversity_dynamic::{EngineState, NodeState};
use diversity_obs::{
    Bucket, CounterEntry, GaugeEntry, HistogramEntry, HistogramSnapshot, Snapshot,
};
use metric::VecPoint;

/// A typed decode failure: where it happened and what was wrong.
/// Decoding never panics — torn, truncated, bit-flipped, or hostile
/// bytes all land here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended inside a value.
    UnexpectedEof {
        /// Byte offset the read started at.
        offset: usize,
    },
    /// A one-byte tag (enum discriminant, `Option`/`bool` marker) held
    /// a value the type does not define.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// A varint ran past 10 bytes or overflowed 64 bits.
    VarintOverflow {
        /// Byte offset the varint started at.
        offset: usize,
    },
    /// A declared length exceeds what the remaining bytes could hold.
    LengthOverflow {
        /// The sequence being decoded.
        what: &'static str,
        /// The declared element count.
        len: u64,
        /// Byte offset of the length.
        offset: usize,
    },
    /// Structurally well-formed bytes that decode to an invalid value
    /// (non-UTF-8 string, a core-set violating its invariants, …).
    Invalid {
        /// The type being decoded.
        what: &'static str,
        /// Human-readable defect.
        reason: String,
    },
    /// [`from_bytes`] decoded a value but bytes remained.
    TrailingBytes {
        /// Bytes left unconsumed.
        remaining: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            WireError::BadTag { what, tag, offset } => {
                write!(f, "invalid tag {tag:#04x} for {what} at byte {offset}")
            }
            WireError::VarintOverflow { offset } => {
                write!(f, "varint overflow at byte {offset}")
            }
            WireError::LengthOverflow { what, len, offset } => {
                write!(
                    f,
                    "declared length {len} for {what} at byte {offset} exceeds the input"
                )
            }
            WireError::Invalid { what, reason } => write!(f, "invalid {what}: {reason}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor over a byte buffer being decoded.
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to consume.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// One raw byte.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(WireError::UnexpectedEof { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Exactly `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { offset: self.pos });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// An LEB128 varint.
    pub fn read_varint(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8().map_err(|_| {
                // Report the varint's own start, the more useful anchor.
                WireError::UnexpectedEof { offset: start }
            })?;
            let bits = (byte & 0x7f) as u64;
            if shift >= 63 && (byte > 1 || shift > 63) {
                return Err(WireError::VarintOverflow { offset: start });
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// A zigzag-folded signed varint.
    pub fn read_signed(&mut self) -> Result<i64, WireError> {
        let z = self.read_varint()?;
        Ok((z >> 1) as i64 ^ -((z & 1) as i64))
    }

    /// 8 little-endian bytes of [`f64::to_bits`].
    pub fn read_f64(&mut self) -> Result<f64, WireError> {
        let bytes = self.read_bytes(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("read_bytes returned 8 bytes"),
        )))
    }

    /// A sequence length for `what`: a varint, checked against the
    /// bytes actually remaining (each element costs at least one byte),
    /// so a hostile length fails here instead of in an allocation.
    pub fn read_len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let offset = self.pos;
        let len = self.read_varint()?;
        if len > self.remaining() as u64 {
            return Err(WireError::LengthOverflow { what, len, offset });
        }
        Ok(len as usize)
    }
}

/// Appends an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-folded signed varint.
pub fn put_signed(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends the 8 little-endian bytes of [`f64::to_bits`].
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Types that can append their binary encoding to a buffer.
pub trait BinWrite {
    /// Appends `self`'s encoding to `out`.
    fn write_bin(&self, out: &mut Vec<u8>);
}

/// Types that can decode themselves from a [`BinReader`].
pub trait BinRead: Sized {
    /// Decodes one value, advancing the reader.
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError>;
}

/// Encodes one value into a fresh buffer.
pub fn to_bytes<T: BinWrite>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.write_bin(&mut out);
    out
}

/// Decodes exactly one value from `buf`; trailing bytes are an error
/// (a frame carries one value, nothing more).
pub fn from_bytes<T: BinRead>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = BinReader::new(buf);
    let value = T::read_bin(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

// ---- primitives -----------------------------------------------------

impl BinWrite for u64 {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
}

impl BinRead for u64 {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        r.read_varint()
    }
}

impl BinWrite for usize {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }
}

impl BinRead for usize {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let offset = r.pos();
        let v = r.read_varint()?;
        usize::try_from(v).map_err(|_| WireError::VarintOverflow { offset })
    }
}

impl BinWrite for u32 {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }
}

impl BinRead for u32 {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let offset = r.pos();
        let v = r.read_varint()?;
        u32::try_from(v).map_err(|_| WireError::VarintOverflow { offset })
    }
}

impl BinWrite for i64 {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_signed(out, *self);
    }
}

impl BinRead for i64 {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        r.read_signed()
    }
}

impl BinWrite for i32 {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_signed(out, *self as i64);
    }
}

impl BinRead for i32 {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let offset = r.pos();
        let v = r.read_signed()?;
        i32::try_from(v).map_err(|_| WireError::VarintOverflow { offset })
    }
}

impl BinWrite for f64 {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }
}

impl BinRead for f64 {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        r.read_f64()
    }
}

impl BinWrite for bool {
    fn write_bin(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl BinRead for bool {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let offset = r.pos();
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                what: "bool",
                tag,
                offset,
            }),
        }
    }
}

impl BinWrite for String {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
}

impl BinRead for String {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let len = r.read_len("string")?;
        let bytes = r.read_bytes(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|e| WireError::Invalid {
                what: "string",
                reason: e.to_string(),
            })
    }
}

impl<T: BinWrite> BinWrite for Option<T> {
    fn write_bin(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write_bin(out);
            }
        }
    }
}

impl<T: BinRead> BinRead for Option<T> {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let offset = r.pos();
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::read_bin(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
                offset,
            }),
        }
    }
}

impl<T: BinWrite> BinWrite for Vec<T> {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for item in self {
            item.write_bin(out);
        }
    }
}

impl<T: BinRead> BinRead for Vec<T> {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let len = r.read_len("sequence")?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::read_bin(r)?);
        }
        Ok(out)
    }
}

// ---- fieldless enum helper -----------------------------------------

macro_rules! bin_fieldless_enum {
    ($ty:ty, $name:literal, { $($variant:path => $tag:literal),+ $(,)? }) => {
        impl BinWrite for $ty {
            fn write_bin(&self, out: &mut Vec<u8>) {
                out.push(match self {
                    $($variant => $tag,)+
                });
            }
        }

        impl BinRead for $ty {
            fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
                let offset = r.pos();
                match r.read_u8()? {
                    $($tag => Ok($variant),)+
                    tag => Err(WireError::BadTag { what: $name, tag, offset }),
                }
            }
        }
    };
}

bin_fieldless_enum!(Problem, "Problem", {
    Problem::RemoteEdge => 0,
    Problem::RemoteClique => 1,
    Problem::RemoteStar => 2,
    Problem::RemoteBipartition => 3,
    Problem::RemoteTree => 4,
    Problem::RemoteCycle => 5,
});

bin_fieldless_enum!(Backend, "Backend", {
    Backend::Sequential => 0,
    Backend::Streaming => 1,
    Backend::MapReduce => 2,
    Backend::Dynamic => 3,
    Backend::ShardedDynamic => 4,
});

// ---- struct helper --------------------------------------------------

macro_rules! bin_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl BinWrite for $ty {
            fn write_bin(&self, out: &mut Vec<u8>) {
                $(self.$field.write_bin(out);)+
            }
        }

        impl BinRead for $ty {
            fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
                Ok($ty {
                    $($field: BinRead::read_bin(r)?,)+
                })
            }
        }
    };
}

bin_struct!(StageTiming { stage, secs });
bin_struct!(StageMemory {
    stage,
    reducers,
    max_local_points,
    total_points,
    emitted_points,
});
bin_struct!(Certificate { alpha, eps, factor });
bin_struct!(Degradation {
    shards_answered,
    shards_total,
    skipped_shards,
    coverage,
});
bin_struct!(CounterEntry { name, value });
bin_struct!(GaugeEntry { name, value });
bin_struct!(HistogramEntry { name, hist });
bin_struct!(Bucket { index, low, count });
bin_struct!(HistogramSnapshot {
    count,
    sum,
    min,
    max,
    buckets,
});
bin_struct!(Snapshot {
    counters,
    gauges,
    histograms,
});

// ---- data-carrying enums -------------------------------------------

impl BinWrite for Budget {
    fn write_bin(&self, out: &mut Vec<u8>) {
        match self {
            Budget::Auto { eps, cap } => {
                out.push(0);
                eps.write_bin(out);
                cap.write_bin(out);
            }
            Budget::KPrime(k_prime) => {
                out.push(1);
                k_prime.write_bin(out);
            }
            Budget::Eps { eps, dim } => {
                out.push(2);
                eps.write_bin(out);
                dim.write_bin(out);
            }
        }
    }
}

impl BinRead for Budget {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let offset = r.pos();
        match r.read_u8()? {
            0 => Ok(Budget::Auto {
                eps: BinRead::read_bin(r)?,
                cap: BinRead::read_bin(r)?,
            }),
            1 => Ok(Budget::KPrime(BinRead::read_bin(r)?)),
            2 => Ok(Budget::Eps {
                eps: BinRead::read_bin(r)?,
                dim: BinRead::read_bin(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "Budget",
                tag,
                offset,
            }),
        }
    }
}

impl BinWrite for DivError {
    fn write_bin(&self, out: &mut Vec<u8>) {
        match self {
            DivError::EmptyInput => out.push(0),
            DivError::EmptyStream => out.push(1),
            DivError::InvalidK { k, n } => {
                out.push(2);
                k.write_bin(out);
                n.write_bin(out);
            }
            DivError::BudgetTooSmall { k_prime, k } => {
                out.push(3);
                k_prime.write_bin(out);
                k.write_bin(out);
            }
            DivError::InvalidEps { eps } => {
                out.push(4);
                eps.write_bin(out);
            }
            DivError::UnsupportedStrategy { problem, .. } => {
                // Strategy is not itself wire-encoded (the serving
                // layer never transports one); collapse to the problem
                // plus the displayed message.
                out.push(5);
                problem.write_bin(out);
                self.to_string().write_bin(out);
            }
            DivError::InvalidMemoryLimit => out.push(6),
            DivError::MalformedPartitions { reason } => {
                out.push(7);
                reason.write_bin(out);
            }
            DivError::InvalidShards => out.push(8),
            DivError::CorruptState { reason } => {
                out.push(9);
                reason.write_bin(out);
            }
            DivError::ShardUnavailable { shard } => {
                out.push(10);
                shard.write_bin(out);
            }
            DivError::PoolUnavailable { healthy, total } => {
                out.push(11);
                healthy.write_bin(out);
                total.write_bin(out);
            }
            DivError::TransientFailure { site } => {
                out.push(12);
                site.write_bin(out);
            }
            DivError::ProjectionMissing => out.push(13),
        }
    }
}

impl BinRead for DivError {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let offset = r.pos();
        match r.read_u8()? {
            0 => Ok(DivError::EmptyInput),
            1 => Ok(DivError::EmptyStream),
            2 => Ok(DivError::InvalidK {
                k: BinRead::read_bin(r)?,
                n: BinRead::read_bin(r)?,
            }),
            3 => Ok(DivError::BudgetTooSmall {
                k_prime: BinRead::read_bin(r)?,
                k: BinRead::read_bin(r)?,
            }),
            4 => Ok(DivError::InvalidEps {
                eps: BinRead::read_bin(r)?,
            }),
            5 => {
                // The strategy itself was collapsed to a message on
                // encode; resurface it as the closest structured form.
                let problem: Problem = BinRead::read_bin(r)?;
                let message: String = BinRead::read_bin(r)?;
                let _ = message;
                Ok(DivError::UnsupportedStrategy {
                    problem,
                    strategy: crate::task::Strategy::ThreeRound,
                })
            }
            6 => Ok(DivError::InvalidMemoryLimit),
            7 => Ok(DivError::MalformedPartitions {
                reason: BinRead::read_bin(r)?,
            }),
            8 => Ok(DivError::InvalidShards),
            9 => Ok(DivError::CorruptState {
                reason: BinRead::read_bin(r)?,
            }),
            10 => Ok(DivError::ShardUnavailable {
                shard: BinRead::read_bin(r)?,
            }),
            11 => Ok(DivError::PoolUnavailable {
                healthy: BinRead::read_bin(r)?,
                total: BinRead::read_bin(r)?,
            }),
            12 => Ok(DivError::TransientFailure {
                site: BinRead::read_bin(r)?,
            }),
            13 => Ok(DivError::ProjectionMissing),
            tag => Err(WireError::BadTag {
                what: "DivError",
                tag,
                offset,
            }),
        }
    }
}

// ---- domain types ---------------------------------------------------

impl BinWrite for Projection {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_f64(out, self.eps);
        self.seed.write_bin(out);
    }
}

impl BinRead for Projection {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        Ok(Projection {
            eps: BinRead::read_bin(r)?,
            seed: BinRead::read_bin(r)?,
        })
    }
}

impl BinWrite for Task {
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.problem().write_bin(out);
        self.k().write_bin(out);
        self.budget_spec().write_bin(out);
        self.thread_cap().write_bin(out);
        self.projection_spec().write_bin(out);
    }
}

impl BinRead for Task {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let problem: Problem = BinRead::read_bin(r)?;
        let k: usize = BinRead::read_bin(r)?;
        let budget: Budget = BinRead::read_bin(r)?;
        let threads: Option<usize> = BinRead::read_bin(r)?;
        let projection: Option<Projection> = BinRead::read_bin(r)?;
        // The builder normalizes threads(0) back to None, matching the
        // accessor the encoder read.
        let task = Task::new(problem, k)
            .budget(budget)
            .threads(threads.unwrap_or(0));
        Ok(match projection {
            Some(p) => task.project(p.eps, p.seed),
            None => task,
        })
    }
}

impl BinWrite for VecPoint {
    fn write_bin(&self, out: &mut Vec<u8>) {
        put_varint(out, self.coords().len() as u64);
        for &c in self.coords() {
            put_f64(out, c);
        }
    }
}

impl BinRead for VecPoint {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let len = r.read_len("VecPoint coords")?;
        let mut coords = Vec::with_capacity(len);
        for _ in 0..len {
            coords.push(r.read_f64()?);
        }
        Ok(VecPoint::new(coords))
    }
}

impl<P: BinWrite> BinWrite for Report<P> {
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.problem.write_bin(out);
        self.backend.write_bin(out);
        self.k.write_bin(out);
        self.k_prime.write_bin(out);
        self.coreset_size.write_bin(out);
        self.coreset_radius.write_bin(out);
        self.indices.write_bin(out);
        self.points.write_bin(out);
        self.value.write_bin(out);
        self.timings.write_bin(out);
        self.memory.write_bin(out);
        self.certificate.write_bin(out);
        self.degradation.write_bin(out);
        self.telemetry.write_bin(out);
    }
}

impl<P: BinRead> BinRead for Report<P> {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        Ok(Report {
            problem: BinRead::read_bin(r)?,
            backend: BinRead::read_bin(r)?,
            k: BinRead::read_bin(r)?,
            k_prime: BinRead::read_bin(r)?,
            coreset_size: BinRead::read_bin(r)?,
            coreset_radius: BinRead::read_bin(r)?,
            indices: BinRead::read_bin(r)?,
            points: BinRead::read_bin(r)?,
            value: BinRead::read_bin(r)?,
            timings: BinRead::read_bin(r)?,
            memory: BinRead::read_bin(r)?,
            certificate: BinRead::read_bin(r)?,
            degradation: BinRead::read_bin(r)?,
            telemetry: BinRead::read_bin(r)?,
        })
    }
}

impl<P: BinWrite> BinWrite for Coreset<P> {
    fn write_bin(&self, out: &mut Vec<u8>) {
        // One shared length for the three parallel arrays: the equal-
        // length invariant is structural on the wire, not re-checked.
        put_varint(out, self.points().len() as u64);
        for p in self.points() {
            p.write_bin(out);
        }
        for &s in self.sources() {
            put_varint(out, s);
        }
        for &w in self.weights() {
            put_varint(out, w as u64);
        }
        self.k_prime().write_bin(out);
        put_f64(out, self.radius());
    }
}

impl<P: BinRead> BinRead for Coreset<P> {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        let len = r.read_len("Coreset")?;
        let mut points = Vec::with_capacity(len);
        for _ in 0..len {
            points.push(P::read_bin(r)?);
        }
        let mut sources = Vec::with_capacity(len);
        for _ in 0..len {
            sources.push(r.read_varint()?);
        }
        let mut weights = Vec::with_capacity(len);
        for _ in 0..len {
            weights.push(usize::read_bin(r)?);
        }
        let k_prime = usize::read_bin(r)?;
        let radius = r.read_f64()?;
        // `Coreset::new` panics on invariant violations; pre-validate
        // so corrupt bytes surface as typed errors instead.
        if let Some(&w) = weights.iter().find(|&&w| w == 0) {
            return Err(WireError::Invalid {
                what: "Coreset",
                reason: format!("weight {w} below the >= 1 invariant"),
            });
        }
        if !(radius.is_finite() && radius >= 0.0) {
            return Err(WireError::Invalid {
                what: "Coreset",
                reason: format!("radius {radius} is not finite and non-negative"),
            });
        }
        Ok(Coreset::new(points, sources, weights, k_prime, radius))
    }
}

impl<P: BinWrite> BinWrite for NodeState<P> {
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.id.write_bin(out);
        self.point.write_bin(out);
        self.level.write_bin(out);
        self.parent.write_bin(out);
        self.children.write_bin(out);
        self.bucketed.write_bin(out);
    }
}

impl<P: BinRead> BinRead for NodeState<P> {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        Ok(NodeState {
            id: BinRead::read_bin(r)?,
            point: BinRead::read_bin(r)?,
            level: BinRead::read_bin(r)?,
            parent: BinRead::read_bin(r)?,
            children: BinRead::read_bin(r)?,
            bucketed: BinRead::read_bin(r)?,
        })
    }
}

impl<P: BinWrite> BinWrite for EngineState<P> {
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.nodes.write_bin(out);
        self.root.write_bin(out);
        self.top_level.write_bin(out);
        self.next_id.write_bin(out);
        self.epsilon.write_bin(out);
        self.dim.write_bin(out);
        self.max_depth.write_bin(out);
    }
}

impl<P: BinRead> BinRead for EngineState<P> {
    fn read_bin(r: &mut BinReader<'_>) -> Result<Self, WireError> {
        Ok(EngineState {
            nodes: BinRead::read_bin(r)?,
            root: BinRead::read_bin(r)?,
            top_level: BinRead::read_bin(r)?,
            next_id: BinRead::read_bin(r)?,
            epsilon: BinRead::read_bin(r)?,
            dim: BinRead::read_bin(r)?,
            max_depth: BinRead::read_bin(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = BinReader::new(&out);
            assert_eq!(r.read_varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn signed_roundtrip_both_signs() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut out = Vec::new();
            put_signed(&mut out, v);
            let mut r = BinReader::new(&out);
            assert_eq!(r.read_signed().unwrap(), v);
        }
    }

    #[test]
    fn truncated_varint_is_typed() {
        let err = BinReader::new(&[0x80, 0x80]).read_varint().unwrap_err();
        assert_eq!(err, WireError::UnexpectedEof { offset: 0 });
    }

    #[test]
    fn overlong_varint_is_typed() {
        let err = BinReader::new(&[0xff; 11]).read_varint().unwrap_err();
        assert_eq!(err, WireError::VarintOverflow { offset: 0 });
    }

    #[test]
    fn non_finite_floats_are_exact() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0] {
            let bytes = to_bytes(&v);
            let back: f64 = from_bytes(&bytes).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn hostile_length_fails_before_allocating() {
        // Declares u64::MAX elements with 1 byte of backing data.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, u64::MAX);
        bytes.push(0);
        let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
        assert!(matches!(
            err,
            WireError::LengthOverflow { len: u64::MAX, .. }
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        assert_eq!(
            from_bytes::<u64>(&bytes).unwrap_err(),
            WireError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn task_roundtrips_through_the_builder() {
        let tasks = [
            Task::new(Problem::RemoteEdge, 3),
            Task::new(Problem::RemoteCycle, 9)
                .budget(Budget::KPrime(40))
                .threads(4),
            Task::new(Problem::RemoteClique, 2).budget(Budget::Eps { eps: 0.25, dim: 3 }),
            Task::new(Problem::RemoteStar, 5).budget(Budget::Auto {
                eps: 0.5,
                cap: Some(64),
            }),
        ];
        for task in tasks {
            let back: Task = from_bytes(&to_bytes(&task)).unwrap();
            assert_eq!(back, task);
        }
    }

    #[test]
    fn div_errors_roundtrip() {
        let errors = [
            DivError::EmptyInput,
            DivError::InvalidK { k: 5, n: Some(3) },
            DivError::InvalidK { k: 0, n: None },
            DivError::BudgetTooSmall { k_prime: 2, k: 6 },
            DivError::InvalidEps { eps: 1.5 },
            DivError::InvalidMemoryLimit,
            DivError::MalformedPartitions {
                reason: "dup".into(),
            },
            DivError::InvalidShards,
            DivError::CorruptState {
                reason: "bit flip".into(),
            },
            DivError::ShardUnavailable { shard: 3 },
            DivError::PoolUnavailable {
                healthy: 1,
                total: 4,
            },
            DivError::TransientFailure {
                site: "serve.query".into(),
            },
        ];
        for err in errors {
            let back: DivError = from_bytes(&to_bytes(&err)).unwrap();
            assert_eq!(back, err);
        }
    }

    #[test]
    fn corrupt_coreset_weights_are_typed_not_panics() {
        let coreset = Coreset::new(
            vec![VecPoint::from([0.0]), VecPoint::from([2.0])],
            vec![0, 1],
            vec![1, 3],
            4,
            0.5,
        );
        let mut bytes = to_bytes(&coreset);
        // The weights sit between the sources and k'; zero the last
        // weight varint (value 3 at the known offset from the end:
        // k_prime byte + 8 radius bytes + itself).
        let weight_pos = bytes.len() - 8 - 1 - 1;
        assert_eq!(bytes[weight_pos], 3);
        bytes[weight_pos] = 0;
        let err = from_bytes::<Coreset<VecPoint>>(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Invalid {
                    what: "Coreset",
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn corrupt_coreset_radius_is_typed_not_panics() {
        let coreset = Coreset::new(vec![VecPoint::from([0.0])], vec![0], vec![1], 2, 1.0);
        let mut bytes = to_bytes(&coreset);
        let radius_pos = bytes.len() - 8;
        bytes[radius_pos..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let err = from_bytes::<Coreset<VecPoint>>(&bytes).unwrap_err();
        assert!(matches!(
            err,
            WireError::Invalid {
                what: "Coreset",
                ..
            }
        ));
    }
}
